/**
 * @file
 * The per-node signal/hash store: the application-visible face of the
 * NVM partitions (Section 3.3). Windows stream in per electrode with
 * their hash and detection flag; retrieval runs over the
 * electrode-major reorganised layout, whose read/write costs come
 * from the storage controller model. Oldest data is overwritten when
 * a partition fills, as on the device.
 */

#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "scalo/hw/nvm.hpp"
#include "scalo/lsh/signature.hpp"
#include "scalo/util/types.hpp"

namespace scalo::app {

/** One stored analysis window with its metadata. */
struct StoredWindow
{
    std::uint64_t timestampUs = 0;
    ElectrodeId electrode = 0;
    std::vector<double> samples;
    lsh::Signature hash;
    /** Flagged by the local seizure detector at capture time. */
    bool seizureFlagged = false;
};

/** Ring-buffer signal store over the Signals + Hashes partitions. */
class SignalStore
{
  public:
    /**
     * @param capacity_windows ring capacity (oldest overwritten)
     * @param reorganise_layout electrode-major chunk layout on/off
     */
    explicit SignalStore(std::size_t capacity_windows = 8'192,
                         bool reorganise_layout = true);

    /** Append one window (write-buffered through the SC). */
    void append(StoredWindow window);

    /** Windows captured in [t0, t1] (us), oldest first. */
    std::vector<const StoredWindow *>
    range(std::uint64_t t0_us, std::uint64_t t1_us) const;

    /** Stored windows currently retained. */
    std::size_t size() const { return windows.size(); }

    /** Total bytes retained (samples at 16 bit + hash + metadata). */
    std::size_t bytesStored() const;

    /** Windows dropped to the ring so far. */
    std::uint64_t overwritten() const { return dropped; }

    /**
     * Modeled time (ms) to retrieve @p window_count windows through
     * the SC (0.035 ms per contiguous chunk of up to 16 windows when
     * reorganised; 10x slower raw).
     */
    double readCostMs(std::size_t window_count) const;

    /** Modeled time (ms) spent persisting everything appended. */
    double totalWriteCostMs() const { return writeCostMs; }

    const hw::StorageController &controller() const { return sc; }

  private:
    std::size_t capacity;
    std::deque<StoredWindow> windows;
    hw::StorageController sc;
    std::uint64_t dropped = 0;
    double writeCostMs = 0.0;
};

} // namespace scalo::app
