/**
 * @file
 * The per-node signal/hash store: the application-visible face of the
 * NVM partitions (Section 3.3). Windows stream in per electrode with
 * their hash and detection flag; retrieval runs over the
 * electrode-major reorganised layout, whose read/write costs come
 * from the storage controller model. Oldest data is overwritten when
 * a partition fills, as on the device.
 *
 * Alongside the raw ring, the store keeps an LSH bucket index over
 * the Hashes partition: each signature band's low bits select a
 * bucket holding the slots of every retained window with that band
 * prefix. Template queries probe the union of the probe's buckets
 * instead of scanning the whole range, and the read-cost model then
 * charges only the windows actually touched. The index follows
 * ring-buffer overwrites: a window's slots are unlinked the moment
 * the ring drops it.
 */

#pragma once

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "scalo/hw/nvm.hpp"
#include "scalo/lsh/signature.hpp"
#include "scalo/util/types.hpp"

namespace scalo::signal {
class WindowBatch;
}

namespace scalo::app {

/** One stored analysis window with its metadata. */
struct StoredWindow
{
    std::uint64_t timestampUs = 0;
    ElectrodeId electrode = 0;
    std::vector<double> samples;
    lsh::Signature hash;
    /** Flagged by the local seizure detector at capture time. */
    bool seizureFlagged = false;
};

/** Ring-buffer signal store over the Signals + Hashes partitions. */
class SignalStore
{
  public:
    /**
     * @param capacity_windows ring capacity (oldest overwritten)
     * @param reorganise_layout electrode-major chunk layout on/off
     */
    explicit SignalStore(std::size_t capacity_windows = 8'192,
                         bool reorganise_layout = true);

    /** Append one window (write-buffered through the SC). */
    void append(StoredWindow window);

    /**
     * Windows captured in [t0, t1] (us) in stable timestamp order:
     * sorted by timestamp, ties broken by ingest order. (The raw
     * deque is insertion-ordered, which diverges from timestamp
     * order once ring overwrites interleave electrodes.)
     */
    std::vector<const StoredWindow *>
    range(std::uint64_t t0_us, std::uint64_t t1_us) const;

    /**
     * Bucket-index probe: every retained window in [t0, t1] whose
     * signature shares at least one band prefix with @p probe — a
     * superset of the windows an exact any-band hash-match scan
     * would return (a strict superset only when bands are wider
     * than the bucket prefix). Same stable timestamp order as
     * range(). Windows ingested without a signature are never
     * indexed and never returned here.
     */
    std::vector<const StoredWindow *>
    candidates(const lsh::Signature &probe, std::uint64_t t0_us,
               std::uint64_t t1_us) const;

    /**
     * Copy @p windows into @p out as one SoA batch: the candidate
     * gather that feeds the wide verification kernels
     * (signal::euclideanDistanceBatch over a shared WindowBatch).
     * Row i of @p out is windows[i]->samples, zero-padded per the
     * WindowBatch layout contract. All windows must share one size;
     * an empty list yields an empty batch.
     */
    static void gather(const std::vector<const StoredWindow *> &windows,
                       signal::WindowBatch &out);

    /** Stored windows currently retained. */
    std::size_t size() const { return windows.size(); }

    /** Total bytes retained (samples at 16 bit + hash + metadata). */
    std::size_t bytesStored() const;

    /** Windows dropped to the ring so far. */
    std::uint64_t overwritten() const { return dropped; }

    /** Retained windows currently linked into the bucket index. */
    std::size_t indexedWindows() const { return indexed; }

    /** Bits of each band used as the bucket key. */
    static constexpr unsigned kBucketBits = 8;

    /**
     * Modeled time to retrieve @p window_count windows through
     * the SC (0.035 ms per contiguous chunk of up to 16 windows when
     * reorganised; 10x slower raw).
     */
    units::Millis readCost(std::size_t window_count) const;

    /** Modeled time spent persisting everything appended. */
    units::Millis totalWriteCost() const { return writeCost; }

    const hw::StorageController &controller() const { return sc; }

  private:
    /** Bucket key for band @p band of @p signature. */
    static std::uint32_t bucketKey(const lsh::Signature &signature,
                                   unsigned band);

    void indexWindow(const StoredWindow &window, std::uint64_t slot);
    void unindexWindow(const StoredWindow &window,
                       std::uint64_t slot);

    std::size_t capacity;
    std::deque<StoredWindow> windows;
    hw::StorageController sc;
    std::uint64_t dropped = 0;
    units::Millis writeCost{0.0};

    /**
     * band/prefix key -> ascending slots of retained windows whose
     * signature lands in that bucket. Slots are monotonically
     * increasing ingest sequence numbers; windows[slot - baseSlot]
     * is the owning window.
     */
    std::unordered_map<std::uint32_t, std::deque<std::uint64_t>>
        buckets;
    std::uint64_t baseSlot = 0;
    std::size_t indexed = 0;
};

} // namespace scalo::app
