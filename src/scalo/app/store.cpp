#include "scalo/app/store.hpp"

#include <cmath>

#include "scalo/util/logging.hpp"

namespace scalo::app {

SignalStore::SignalStore(std::size_t capacity_windows,
                         bool reorganise_layout)
    : capacity(capacity_windows), sc(reorganise_layout)
{
    SCALO_ASSERT(capacity >= 1, "capacity must be >= 1");
}

void
SignalStore::append(StoredWindow window)
{
    const std::size_t bytes = window.samples.size() * 2 +
                              window.hash.sizeBytes() + 16;
    sc.append(hw::Partition::Signals, window.samples.size() * 2);
    sc.append(hw::Partition::Hashes, window.hash.sizeBytes());
    // The SC reorganises one electrode chunk per ~16 windows; amortise
    // its write cost accordingly.
    writeCostMs += sc.chunkWriteMs() / 16.0;
    (void)bytes;

    windows.push_back(std::move(window));
    while (windows.size() > capacity) {
        windows.pop_front();
        ++dropped;
    }
}

std::vector<const StoredWindow *>
SignalStore::range(std::uint64_t t0_us, std::uint64_t t1_us) const
{
    std::vector<const StoredWindow *> out;
    for (const StoredWindow &window : windows)
        if (window.timestampUs >= t0_us &&
            window.timestampUs <= t1_us)
            out.push_back(&window);
    return out;
}

std::size_t
SignalStore::bytesStored() const
{
    std::size_t total = 0;
    for (const StoredWindow &window : windows)
        total += window.samples.size() * 2 + window.hash.sizeBytes() +
                 16;
    return total;
}

double
SignalStore::readCostMs(std::size_t window_count) const
{
    const double chunks =
        std::ceil(static_cast<double>(window_count) / 16.0);
    return chunks * sc.chunkReadMs();
}

} // namespace scalo::app
