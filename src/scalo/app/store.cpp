#include "scalo/app/store.hpp"

#include <algorithm>
#include <cmath>

#include "scalo/signal/window_batch.hpp"
#include "scalo/util/logging.hpp"

namespace scalo::app {

void
SignalStore::gather(const std::vector<const StoredWindow *> &windows,
                    signal::WindowBatch &out)
{
    const std::size_t window_size =
        windows.empty() ? 0 : windows.front()->samples.size();
    out.reserve(windows.size(), window_size);
    for (const StoredWindow *window : windows)
        out.append(window->samples);
}

SignalStore::SignalStore(std::size_t capacity_windows,
                         bool reorganise_layout)
    : capacity(capacity_windows), sc(reorganise_layout)
{
    SCALO_ASSERT(capacity >= 1, "capacity must be >= 1");
}

std::uint32_t
SignalStore::bucketKey(const lsh::Signature &signature, unsigned band)
{
    const std::uint32_t prefix = static_cast<std::uint32_t>(
        signature.band(band) & ((1ULL << kBucketBits) - 1));
    return (band << kBucketBits) | prefix;
}

void
SignalStore::indexWindow(const StoredWindow &window,
                         std::uint64_t slot)
{
    if (window.hash.bandCount() == 0)
        return;
    for (unsigned b = 0; b < window.hash.bandCount(); ++b)
        buckets[bucketKey(window.hash, b)].push_back(slot);
    ++indexed;
}

void
SignalStore::unindexWindow(const StoredWindow &window,
                           std::uint64_t slot)
{
    if (window.hash.bandCount() == 0)
        return;
    for (unsigned b = 0; b < window.hash.bandCount(); ++b) {
        const auto it = buckets.find(bucketKey(window.hash, b));
        SCALO_ASSERT(it != buckets.end() &&
                         !it->second.empty() &&
                         it->second.front() == slot,
                     "bucket index out of step with the ring");
        it->second.pop_front();
        if (it->second.empty())
            buckets.erase(it);
    }
    --indexed;
}

void
SignalStore::append(StoredWindow window)
{
    const std::size_t bytes = window.samples.size() * 2 +
                              window.hash.sizeBytes() + 16;
    sc.append(hw::Partition::Signals, window.samples.size() * 2);
    sc.append(hw::Partition::Hashes, window.hash.sizeBytes());
    // The SC reorganises one electrode chunk per ~16 windows; amortise
    // its write cost accordingly.
    writeCost += sc.chunkWrite() / 16.0;
    (void)bytes;

    windows.push_back(std::move(window));
    indexWindow(windows.back(), baseSlot + windows.size() - 1);
    while (windows.size() > capacity) {
        unindexWindow(windows.front(), baseSlot);
        windows.pop_front();
        ++baseSlot;
        ++dropped;
    }
}

namespace {

/** Stable timestamp order: by timestamp, ingest order on ties. */
void
sortByTimestamp(std::vector<const StoredWindow *> &out)
{
    std::stable_sort(out.begin(), out.end(),
                     [](const StoredWindow *a, const StoredWindow *b) {
                         return a->timestampUs < b->timestampUs;
                     });
}

} // namespace

std::vector<const StoredWindow *>
SignalStore::range(std::uint64_t t0_us, std::uint64_t t1_us) const
{
    std::vector<const StoredWindow *> out;
    for (const StoredWindow &window : windows)
        if (window.timestampUs >= t0_us &&
            window.timestampUs <= t1_us)
            out.push_back(&window);
    sortByTimestamp(out);
    return out;
}

std::vector<const StoredWindow *>
SignalStore::candidates(const lsh::Signature &probe,
                        std::uint64_t t0_us,
                        std::uint64_t t1_us) const
{
    // Union of the probe's buckets, deduplicated across bands (a
    // window can share more than one band prefix with the probe).
    std::vector<std::uint64_t> slots;
    for (unsigned b = 0; b < probe.bandCount(); ++b) {
        const auto it = buckets.find(bucketKey(probe, b));
        if (it == buckets.end())
            continue;
        slots.insert(slots.end(), it->second.begin(),
                     it->second.end());
    }
    std::sort(slots.begin(), slots.end());
    slots.erase(std::unique(slots.begin(), slots.end()),
                slots.end());

    std::vector<const StoredWindow *> out;
    out.reserve(slots.size());
    for (const std::uint64_t slot : slots) {
        const StoredWindow &window = windows[slot - baseSlot];
        if (window.timestampUs >= t0_us &&
            window.timestampUs <= t1_us)
            out.push_back(&window);
    }
    sortByTimestamp(out);
    return out;
}

std::size_t
SignalStore::bytesStored() const
{
    std::size_t total = 0;
    for (const StoredWindow &window : windows)
        total += window.samples.size() * 2 + window.hash.sizeBytes() +
                 16;
    return total;
}

units::Millis
SignalStore::readCost(std::size_t window_count) const
{
    const double chunks =
        std::ceil(static_cast<double>(window_count) / 16.0);
    return chunks * sc.chunkRead();
}

} // namespace scalo::app
