/**
 * @file
 * Seizure detection and propagation analysis (Figures 1a, 3a, 5).
 *
 * Detection is local to each node: band-power features (FFT + BBF) and
 * cross-electrode correlation feed a linear SVM [118]. Propagation is
 * distributed: on a local detection, the node broadcasts the window
 * hashes; receivers check them against their recent local hashes
 * (CCHECK) and confirm candidate matches with exact DTW before
 * stimulation is commanded.
 */

#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "scalo/data/ieeg_synth.hpp"
#include "scalo/lsh/collision.hpp"
#include "scalo/lsh/hasher.hpp"
#include "scalo/ml/svm.hpp"
#include "scalo/util/types.hpp"

namespace scalo::app {

/** Per-window feature extraction for seizure detection. */
std::vector<double>
seizureFeatures(const std::vector<Window> &electrode_windows,
                double sample_rate_hz);

/** Local (per-node) seizure detector: features + linear SVM. */
class SeizureDetector
{
  public:
    SeizureDetector() = default;

    /**
     * Train a detector from an annotated dataset, using node 0's
     * electrodes (detectors are per-node but share structure).
     *
     * @param dataset      annotated recording
     * @param window_samples analysis window length
     */
    static SeizureDetector train(const data::IeegDataset &dataset,
                                 std::size_t window_samples =
                                     constants::kWindowSamples);

    /** Classify one multi-electrode window. @return true = seizure */
    bool detect(const std::vector<Window> &electrode_windows,
                double sample_rate_hz) const;

    /** Raw SVM decision value (margin). */
    double decision(const std::vector<Window> &electrode_windows,
                    double sample_rate_hz) const;

    /** Detection quality on a labelled window set. */
    struct Quality
    {
        double truePositiveRate = 0.0;
        double falsePositiveRate = 0.0;
        std::size_t positives = 0;
        std::size_t negatives = 0;
    };

    /** Evaluate on a dataset node. */
    Quality evaluate(const data::IeegDataset &dataset, NodeId node,
                     std::size_t window_samples =
                         constants::kWindowSamples) const;

    const ml::LinearSvm &model() const { return svm; }

  private:
    ml::LinearSvm svm;
};

/** Outcome of one distributed propagation check. */
struct PropagationResult
{
    /** Node where the seizure was detected locally. */
    NodeId origin = 0;
    /** Nodes whose hash check matched (candidates). */
    std::vector<NodeId> hashMatches;
    /** Nodes confirmed by exact DTW comparison (stimulation targets). */
    std::vector<NodeId> confirmed;
};

/**
 * The distributed propagation analyzer: hash broadcast -> collision
 * check -> exact comparison. Operates on in-memory windows; timed /
 * lossy-network behaviour lives in scalo::sim.
 */
class PropagationAnalyzer
{
  public:
    /**
     * @param nodes          number of implants
     * @param window_samples analysis window length
     * @param dtw_threshold  exact-comparison confirmation threshold
     *                       (DTW distance on z-scored windows)
     * @param seed           hash-family seed
     */
    PropagationAnalyzer(std::size_t nodes,
                        std::size_t window_samples,
                        double dtw_threshold, std::uint64_t seed = 7);

    /**
     * Record one timestep of windows on every node (hash + store).
     *
     * @param windows_per_node one representative window per node
     * @param timestamp_us     capture timestamp
     */
    void observe(const std::vector<std::vector<double>> &windows_per_node,
                 std::uint64_t timestamp_us);

    /**
     * Run the propagation protocol for a local detection at
     * @p origin using its current window.
     */
    PropagationResult analyze(NodeId origin,
                              std::uint64_t timestamp_us) const;

    const lsh::WindowHasher &hasher() const { return windowHasher; }

  private:
    std::size_t windowSamples;
    double dtwThreshold;
    lsh::WindowHasher windowHasher;
    std::vector<lsh::CollisionChecker> checkers;
    /** Last observed window per node (the comparison operand). */
    std::vector<std::vector<double>> lastWindows;
    std::vector<lsh::Signature> lastSignatures;
};

/** z-score a window (propagation comparisons are amplitude-free). */
std::vector<double> zscore(const std::vector<double> &window);

/**
 * Figure 9a: application-level weighted throughput of the seizure
 * propagation pipeline. The three inter-related tasks (local seizure
 * detection, hash comparison, DTW comparison) interleave on the same
 * 96-electrode nodes; the ILP's priority weights decide how many
 * electrode signals each task processes when resources cannot carry
 * all signals through all tasks. The reported metric is the
 * priority-weighted mean of per-task electrode throughput.
 */
struct WeightedSeizureThroughput
{
    /** Electrodes processed per node by detection / hash / DTW. */
    double detectionElectrodes = 0.0;
    double hashElectrodes = 0.0;
    double dtwElectrodes = 0.0;
    /** Priority-weighted aggregate throughput. */
    units::MegabitsPerSecond weighted{0.0};
};

/**
 * Evaluate the Figure 9a model.
 *
 * @param weights   priorities {detection, hash comparison, DTW}
 * @param nodes     implant count
 * @param power_cap per-implant limit
 */
WeightedSeizureThroughput
seizurePropagationWeighted(const std::array<double, 3> &weights,
                           std::size_t nodes,
                           units::Milliwatts power_cap =
                               constants::kPowerCap);

} // namespace scalo::app
