#include "scalo/app/movement.hpp"

#include <cmath>
#include <numbers>

#include "scalo/net/tdma.hpp"
#include "scalo/signal/distance.hpp"
#include "scalo/util/logging.hpp"
#include "scalo/util/rng.hpp"

namespace scalo::app {

MovementDataset
generateMovement(std::size_t channels, std::size_t steps,
                 int gesture_classes, std::uint64_t seed)
{
    SCALO_ASSERT(channels >= 2 && steps >= 1 && gesture_classes >= 2,
                 "bad movement dataset shape");
    Rng rng(seed);

    MovementDataset dataset;
    dataset.channels = channels;
    dataset.gestureClasses = gesture_classes;

    // Per-channel tuning to (vx, vy) plus a baseline rate.
    std::vector<std::array<double, 2>> tuning(channels);
    std::vector<double> baseline(channels);
    for (std::size_t c = 0; c < channels; ++c) {
        tuning[c] = {rng.gaussian(), rng.gaussian()};
        baseline[c] = rng.uniform(0.2, 1.0);
    }

    double vx = 0.0, vy = 0.0;
    for (std::size_t t = 0; t < steps; ++t) {
        // Smooth random-walk kinematics.
        vx = 0.95 * vx + rng.gaussian(0.0, 0.1);
        vy = 0.95 * vy + rng.gaussian(0.0, 0.1);
        dataset.velocity.push_back({vx, vy});

        // Gesture = direction sector (only meaningful when moving).
        const double angle = std::atan2(vy, vx); // [-pi, pi]
        const double sector = (angle + std::numbers::pi) /
                              (2.0 * std::numbers::pi) *
                              gesture_classes;
        dataset.gesture.push_back(
            std::min(gesture_classes - 1,
                     static_cast<int>(sector)));

        std::vector<double> features(channels);
        for (std::size_t c = 0; c < channels; ++c) {
            features[c] = baseline[c] + tuning[c][0] * vx +
                          tuning[c][1] * vy +
                          rng.gaussian(0.0, 0.15);
        }
        dataset.features.push_back(std::move(features));
    }
    return dataset;
}

GestureClassifier
GestureClassifier::train(const MovementDataset &dataset,
                         std::size_t train_count)
{
    SCALO_ASSERT(train_count <= dataset.features.size(),
                 "train_count exceeds dataset");
    GestureClassifier classifier;
    for (int cls = 0; cls < dataset.gestureClasses; ++cls) {
        std::vector<std::vector<double>> xs(
            dataset.features.begin(),
            dataset.features.begin() +
                static_cast<long>(train_count));
        std::vector<int> ys;
        for (std::size_t t = 0; t < train_count; ++t)
            ys.push_back(dataset.gesture[t] == cls ? 1 : -1);
        classifier.models.push_back(
            ml::LinearSvm::train(xs, ys, 1e-4, 30,
                                 17 + static_cast<std::uint64_t>(cls)));
    }
    return classifier;
}

int
GestureClassifier::classify(const std::vector<double> &features) const
{
    int best = 0;
    double best_score = models[0].decision(features);
    for (std::size_t cls = 1; cls < models.size(); ++cls) {
        const double score = models[cls].decision(features);
        if (score > best_score) {
            best_score = score;
            best = static_cast<int>(cls);
        }
    }
    return best;
}

int
GestureClassifier::classifyDistributed(
    const std::vector<double> &features,
    const std::vector<std::size_t> &splits) const
{
    // Each node computes one partial per class over its channel
    // slice; the aggregator sums and picks the arg-max, exactly as the
    // centralized path.
    int best = 0;
    double best_score = 0.0;
    for (std::size_t cls = 0; cls < models.size(); ++cls) {
        ml::DistributedSvm dist(models[cls], splits);
        std::vector<double> partials;
        std::size_t offset = 0;
        for (std::size_t node = 0; node < splits.size(); ++node) {
            std::vector<double> slice(
                features.begin() + static_cast<long>(offset),
                features.begin() +
                    static_cast<long>(offset + splits[node]));
            partials.push_back(dist.partial(node, slice));
            offset += splits[node];
        }
        const double score = dist.aggregate(partials);
        if (cls == 0 || score > best_score) {
            best_score = score;
            best = static_cast<int>(cls);
        }
    }
    return best;
}

double
GestureClassifier::accuracy(const MovementDataset &dataset,
                            std::size_t from) const
{
    SCALO_ASSERT(from < dataset.features.size(), "empty test range");
    std::size_t correct = 0;
    for (std::size_t t = from; t < dataset.features.size(); ++t)
        correct += (classify(dataset.features[t]) ==
                    dataset.gesture[t]);
    return static_cast<double>(correct) /
           static_cast<double>(dataset.features.size() - from);
}

namespace {

DecodeQuality
correlationOf(const std::vector<std::array<double, 2>> &truth,
              const std::vector<std::array<double, 2>> &decoded)
{
    std::vector<double> tx, ty, dx, dy;
    for (std::size_t i = 0; i < truth.size(); ++i) {
        tx.push_back(truth[i][0]);
        ty.push_back(truth[i][1]);
        dx.push_back(decoded[i][0]);
        dy.push_back(decoded[i][1]);
    }
    DecodeQuality quality;
    quality.vxCorrelation = signal::pearson(tx, dx);
    quality.vyCorrelation = signal::pearson(ty, dy);
    return quality;
}

} // namespace

DecodeQuality
decodeWithKalman(const MovementDataset &dataset, std::size_t from,
                 std::uint64_t seed)
{
    SCALO_ASSERT(from < dataset.features.size(), "empty test range");

    // Fit the observation model H (features ~ H * [pos; vel]) from
    // the head of the dataset with per-channel least squares on
    // velocity (positions are untuned in this dataset).
    const std::size_t channels = dataset.channels;
    linalg::Matrix h(channels, 4);
    {
        // Solve per channel: f_c = a*vx + b*vy + c (drop c into noise).
        linalg::Matrix vtv(2, 2);
        std::vector<std::array<double, 2>> vtf(
            channels, std::array<double, 2>{0.0, 0.0});
        for (std::size_t t = 0; t < from; ++t) {
            const auto &v = dataset.velocity[t];
            vtv.at(0, 0) += v[0] * v[0];
            vtv.at(0, 1) += v[0] * v[1];
            vtv.at(1, 0) += v[1] * v[0];
            vtv.at(1, 1) += v[1] * v[1];
            for (std::size_t c = 0; c < channels; ++c) {
                vtf[c][0] += v[0] * dataset.features[t][c];
                vtf[c][1] += v[1] * dataset.features[t][c];
            }
        }
        const linalg::Matrix inv = linalg::inverse(vtv);
        for (std::size_t c = 0; c < channels; ++c) {
            h.at(c, 2) = inv.at(0, 0) * vtf[c][0] +
                         inv.at(0, 1) * vtf[c][1];
            h.at(c, 3) = inv.at(1, 0) * vtf[c][0] +
                         inv.at(1, 1) * vtf[c][1];
        }
    }

    ml::KalmanParams params;
    params.a = linalg::Matrix::identity(4);
    params.a.at(0, 2) = 0.05;
    params.a.at(1, 3) = 0.05;
    params.w = linalg::Matrix::identity(4);
    for (std::size_t i = 0; i < 4; ++i)
        params.w.at(i, i) = (i < 2) ? 1e-4 : 5e-3;
    params.h = std::move(h);
    params.q = linalg::Matrix::identity(channels);
    for (std::size_t i = 0; i < channels; ++i)
        params.q.at(i, i) = 0.25;
    (void)seed;

    // De-mean the features (the baseline is not velocity-tuned).
    std::vector<double> mean(channels, 0.0);
    for (std::size_t t = 0; t < from; ++t)
        for (std::size_t c = 0; c < channels; ++c)
            mean[c] += dataset.features[t][c];
    for (double &m : mean)
        m /= static_cast<double>(from);

    ml::KalmanFilter filter(std::move(params));
    std::vector<std::array<double, 2>> decoded, truth;
    for (std::size_t t = from; t < dataset.features.size(); ++t) {
        std::vector<double> obs = dataset.features[t];
        for (std::size_t c = 0; c < channels; ++c)
            obs[c] -= mean[c];
        const auto state = filter.step(obs);
        decoded.push_back({state[2], state[3]});
        truth.push_back(dataset.velocity[t]);
    }
    return correlationOf(truth, decoded);
}

DecodeQuality
decodeWithNn(const MovementDataset &dataset, std::size_t train_count,
             std::uint64_t seed)
{
    SCALO_ASSERT(train_count < dataset.features.size(),
                 "nothing left to test");
    auto net = ml::ShallowNet::randomInit(
        {dataset.channels, 32, 2}, seed);
    for (int epoch = 0; epoch < 12; ++epoch) {
        for (std::size_t t = 0; t < train_count; ++t) {
            net.sgdStep(dataset.features[t],
                        {dataset.velocity[t][0],
                         dataset.velocity[t][1]},
                        1e-3);
        }
    }

    std::vector<std::array<double, 2>> decoded, truth;
    for (std::size_t t = train_count; t < dataset.features.size();
         ++t) {
        const auto y = net.forward(dataset.features[t]);
        decoded.push_back({y[0], y[1]});
        truth.push_back(dataset.velocity[t]);
    }
    return correlationOf(truth, decoded);
}

units::Hertz
intentsPerSecond(const sched::FlowSpec &flow, std::size_t nodes,
                 units::Milliwatts power_cap,
                 double electrodes_per_node)
{
    // Power-limited rate: the flow's calibrated dynamic power is for
    // the conventional 20/s cadence; decoding faster scales it
    // linearly.
    const units::Milliwatts dyn_at_20 =
        flow.linPerElectrode * electrodes_per_node +
        flow.quadPerElectrode2 * electrodes_per_node *
            electrodes_per_node;
    const units::Milliwatts budget = power_cap - flow.leak;
    if (budget.count() <= 0.0 || dyn_at_20.count() <= 0.0)
        return units::Hertz{0.0};
    const units::Hertz rate_power{kConventionalIntentsPerSecond *
                                  (budget / dyn_at_20)};

    // Latency-limited rate: the serial decode path is the PE chain
    // (worst-case SC) plus the TDMA exchange of partials/features.
    units::Millis chain{0.0};
    for (hw::PeKind kind : flow.peChain) {
        const auto &spec = hw::peSpec(kind);
        if (spec.latencyMax)
            chain += *spec.latencyMax;
        else if (spec.latency)
            chain += *spec.latency;
    }
    units::Millis exchange{0.0};
    if (flow.network && nodes > 1) {
        const net::TdmaSchedule tdma(net::defaultRadio(), nodes);
        const auto payload = static_cast<std::size_t>(
            flow.network->bytesPerNode +
            flow.network->bytesPerElectrode * electrodes_per_node);
        exchange = tdma.exchangeTime(flow.network->pattern, payload);
    }
    // One decode per trip through the serial path.
    const units::Hertz rate_latency{1.0 / (chain + exchange)};

    return units::min(rate_power, rate_latency);
}

} // namespace scalo::app
