#include "scalo/app/query.hpp"

#include <algorithm>

#include "scalo/hw/nvm.hpp"
#include "scalo/hw/pe.hpp"
#include "scalo/net/radio.hpp"
#include "scalo/util/logging.hpp"

namespace scalo::app {

const char *
queryName(QueryKind kind)
{
    switch (kind) {
      case QueryKind::Q1SeizureWindows:
        return "Q1 (seizure windows)";
      case QueryKind::Q2TemplateMatch:
        return "Q2 (template match)";
      case QueryKind::Q3TimeRange:
        return "Q3 (time range)";
    }
    SCALO_PANIC("unknown query kind");
}

double
timeRangeMsFor(double data_mb, std::size_t nodes)
{
    // bytes per ms per node at the full electrode rate.
    const double node_bytes_per_ms =
        constants::kNodeAdcMbps * 1e6 / 8.0 / 1e3;
    return data_mb * 1e6 /
           (static_cast<double>(nodes) * node_bytes_per_ms);
}

QueryCost
estimateQuery(QueryKind kind, const QueryConfig &config)
{
    SCALO_ASSERT(config.nodes >= 1, "need at least one node");
    SCALO_ASSERT(config.dataMb > 0.0, "dataMb must be positive");
    SCALO_ASSERT(config.matchedFraction >= 0.0 &&
                     config.matchedFraction <= 1.0,
                 "matchedFraction out of [0,1]");

    const double per_node_bytes =
        config.dataMb * 1e6 / static_cast<double>(config.nodes);

    // Phase 1 (parallel across nodes): scan the stored data. Q3 skips
    // the predicate and streams everything; Q1/Q2 read the stored
    // windows through the SC's reorganised layout and test each one.
    const double scan_ms =
        per_node_bytes /
        (hw::StorageController().streamReadMBps() * 1e6) * 1e3;

    double match_ms = 0.0;
    const double windows =
        per_node_bytes / constants::kWindowBytes;
    if (kind == QueryKind::Q2TemplateMatch && config.exactMatch) {
        // One DTW comparison per stored window.
        match_ms = windows * *hw::peSpec(hw::PeKind::DTW).latencyMs;
    } else if (kind != QueryKind::Q3TimeRange) {
        // Hash lookups via CCHECK: the 0.5 ms PE pass covers a full
        // SRAM batch of ~960 sorted hash entries via binary search.
        match_ms = windows / 960.0 *
                   *hw::peSpec(hw::PeKind::CCHECK).latencyMs;
    }

    // Phase 2 (serialized): matched data leaves through the external
    // radio - the bottleneck (Section 6.4).
    const double matched_fraction =
        (kind == QueryKind::Q3TimeRange) ? 1.0
                                         : config.matchedFraction;
    const double out_bytes = config.dataMb * 1e6 * matched_fraction;
    const double radio_ms =
        net::externalRadio().transferMs(out_bytes);

    QueryCost cost;
    cost.latencyMs =
        kQueryDispatchMs + scan_ms + match_ms + radio_ms;
    cost.queriesPerSecond = 1'000.0 / cost.latencyMs;
    cost.powerMw = (kind == QueryKind::Q2TemplateMatch &&
                    config.exactMatch)
                       ? kDtwQueryPowerMw
                       : kHashQueryPowerMw;
    if (kind == QueryKind::Q3TimeRange)
        cost.powerMw = kHashQueryPowerMw;
    return cost;
}

} // namespace scalo::app
