#include "scalo/app/query.hpp"

#include <algorithm>

#include "scalo/hw/nvm.hpp"
#include "scalo/hw/pe.hpp"
#include "scalo/net/radio.hpp"
#include "scalo/util/contracts.hpp"
#include "scalo/util/logging.hpp"

namespace scalo::app {

using namespace units::literals;

namespace {

/** Append @p value's raw bytes to @p out (fixed width, in order). */
template <typename T>
void
appendBytes(std::string &out, const T &value)
{
    const char *bytes = reinterpret_cast<const char *>(&value);
    out.append(bytes, sizeof(T));
}

} // namespace

Query
Query::normalized() const
{
    Query canon = *this;
    if (canon.probe.empty()) {
        // Probe-only knobs are inert without a probe (rule 2).
        canon.dtwThreshold = -1.0;
        canon.confirmMeasure = signal::Measure::Dtw;
        canon.hashPrefilter = true;
        canon.useIndex = true;
    } else if (canon.dtwThreshold < 0.0) {
        // Hashes only: the confirmation measure is never consulted
        // (rule 3).
        canon.dtwThreshold = -1.0;
        canon.confirmMeasure = signal::Measure::Dtw;
    }
    if (!canon.hashPrefilter)
        canon.useIndex = false; // rule 4
    if (canon.shardDeadline.count() <= 0.0)
        canon.shardDeadline = units::Millis{0.0}; // rule 5
    return canon;
}

std::string
Query::cacheKey() const
{
    const Query canon = normalized();
    std::string key;
    key.reserve(64 + canon.probe.size() * sizeof(double));
    appendBytes(key, canon.t0Us);
    appendBytes(key, canon.t1Us);
    key.push_back(canon.seizureOnly ? '\1' : '\0');
    const std::uint64_t probe_len = canon.probe.size();
    appendBytes(key, probe_len);
    for (const double sample : canon.probe)
        appendBytes(key, sample);
    appendBytes(key, canon.dtwThreshold);
    key.push_back(static_cast<char>(canon.confirmMeasure));
    key.push_back(canon.hashPrefilter ? '\1' : '\0');
    key.push_back(canon.useIndex ? '\1' : '\0');
    const double deadline_ms = canon.shardDeadline.count();
    appendBytes(key, deadline_ms);
    return key;
}

const char *
queryName(QueryKind kind)
{
    switch (kind) {
      case QueryKind::Q1SeizureWindows:
        return "Q1 (seizure windows)";
      case QueryKind::Q2TemplateMatch:
        return "Q2 (template match)";
      case QueryKind::Q3TimeRange:
        return "Q3 (time range)";
    }
    SCALO_PANIC("unknown query kind");
}

units::Millis
timeRangeFor(units::Megabytes data, std::size_t nodes)
{
    SCALO_EXPECTS(nodes >= 1);
    // Each node records at the full per-node ADC rate.
    return data / (static_cast<double>(nodes) *
                   constants::kNodeAdcRate);
}

QueryCost
estimateQuery(QueryKind kind, const QueryConfig &config)
{
    SCALO_ASSERT(config.nodes >= 1, "need at least one node");
    SCALO_ASSERT(config.data > 0.0_MB, "data must be positive");
    SCALO_ASSERT(config.matchedFraction >= 0.0 &&
                     config.matchedFraction <= 1.0,
                 "matchedFraction out of [0,1]");

    const units::Megabytes per_node =
        config.data / static_cast<double>(config.nodes);

    // Phase 1 (parallel across nodes): scan the stored data. Q3 skips
    // the predicate and streams everything; Q1/Q2 read the stored
    // windows through the SC's reorganised layout and test each one.
    const units::Millis scan =
        per_node / hw::StorageController().streamRead();

    units::Millis match{0.0};
    const double windows =
        per_node.in<units::Bytes>() / constants::kWindowBytes;
    if (kind == QueryKind::Q2TemplateMatch && config.exactMatch) {
        // One DTW comparison per stored window.
        match = windows * *hw::peSpec(hw::PeKind::DTW).latency;
    } else if (kind != QueryKind::Q3TimeRange) {
        // Hash lookups via CCHECK: the 0.5 ms PE pass covers a full
        // SRAM batch of ~960 sorted hash entries via binary search.
        match = windows / 960.0 *
                *hw::peSpec(hw::PeKind::CCHECK).latency;
    }

    // Phase 2 (serialized): matched data leaves through the external
    // radio - the bottleneck (Section 6.4).
    const double matched_fraction =
        (kind == QueryKind::Q3TimeRange) ? 1.0
                                         : config.matchedFraction;
    const units::Megabytes out = config.data * matched_fraction;
    const units::Millis radio =
        net::externalRadio().transferTime(out);

    QueryCost cost;
    cost.latency = kQueryDispatch + scan + match + radio;
    cost.queriesPerSecond = units::Hertz{1.0 / cost.latency};
    cost.power = (kind == QueryKind::Q2TemplateMatch &&
                  config.exactMatch)
                     ? kDtwQueryPower
                     : kHashQueryPower;
    if (kind == QueryKind::Q3TimeRange)
        cost.power = kHashQueryPower;
    SCALO_ENSURES(cost.latency > 0.0_ms);
    return cost;
}

} // namespace scalo::app
