/**
 * @file
 * The electrical-stimulation back end (Sections 2.1-2.2): when
 * propagation is confirmed or sensory feedback is due, the MC issues
 * stimulation commands and the electrodes are repurposed through the
 * DAC. Patterns are charge-balanced biphasic pulse trains; the
 * controller enforces the standard safety limits (charge per phase,
 * charge density, frequency) before any pattern reaches tissue, and
 * models the DAC's power draw (~0.6 mW, Section 5).
 */

#pragma once

#include <string>
#include <vector>

#include "scalo/util/types.hpp"

namespace scalo::app {

/** One charge-balanced biphasic stimulation pattern. */
struct StimPattern
{
    /** Current amplitude per phase (uA). */
    double amplitudeUa = 100.0;
    /** Duration of each phase (us). */
    double phaseUs = 200.0;
    /** Inter-phase gap (us). */
    double gapUs = 50.0;
    /** Pulse train frequency (Hz). */
    double frequencyHz = 130.0;
    /** Train length (ms). */
    double durationMs = 100.0;
    /** Electrodes stimulated simultaneously. */
    std::vector<ElectrodeId> electrodes{0};

    /** Charge injected per phase (nC). */
    double chargePerPhaseNc() const;

    /** Fraction of each period spent driving current. */
    double dutyCycle() const;
};

/** Conservative microstimulation safety limits. */
struct StimSafetyLimits
{
    double maxAmplitudeUa = 1'000.0;
    double maxChargePerPhaseNc = 30.0;
    double maxFrequencyHz = 500.0;
    double maxPhaseUs = 1'000.0;
    /** Simultaneously driven electrodes (DAC channels). */
    std::size_t maxElectrodes = 16;
};

/** The stimulation controller behind the DAC. */
class StimulationController
{
  public:
    explicit StimulationController(StimSafetyLimits limits = {});

    /**
     * Validate a pattern against the safety limits and charge
     * balance. @return empty string, or the first violation
     */
    std::string validate(const StimPattern &pattern) const;

    /**
     * Synthesize the DAC waveform of one pulse period at
     * @p sample_rate_hz: cathodic phase, gap, anodic phase, rest.
     * Values are in uA.
     */
    std::vector<double> pulseWaveform(const StimPattern &pattern,
                                      double sample_rate_hz) const;

    /**
     * Average electrical power while the train runs: DAC static
     * power plus I^2 Z through the electrode impedance, per driven
     * electrode, times the duty cycle.
     */
    units::Milliwatts power(const StimPattern &pattern) const;

    /**
     * Issue a validated pattern. @return false (with no effect) when
     * validation fails. Commands are counted for test observability.
     */
    bool issue(const StimPattern &pattern);

    std::size_t issuedCount() const { return issued; }
    const StimSafetyLimits &limits() const { return safety; }

    /** DAC static power, Section 5. */
    static constexpr units::Milliwatts kDacStatic{0.5};
    /** Electrode-tissue impedance (kOhm) for power estimation. */
    static constexpr double kElectrodeKohm = 50.0;

  private:
    StimSafetyLimits safety;
    std::size_t issued = 0;
};

/**
 * The standard therapy pattern for arresting seizure spread
 * (high-frequency, low-charge), used by the propagation pipeline.
 */
StimPattern seizureArrestPattern(std::vector<ElectrodeId> electrodes);

/** Sensory-feedback pattern for movement pipelines (Section 2.2). */
StimPattern sensoryFeedbackPattern(std::vector<ElectrodeId> electrodes,
                                   double intensity01);

} // namespace scalo::app
