/**
 * @file
 * Executable interactive queries (Section 6.4): unlike the cost model
 * in query.hpp, the QueryEngine actually runs queries against data
 * stored on every node's SignalStore, returning the matched windows
 * alongside the modeled latency (NVM reads, per-window matching, and
 * the external-radio transfer of whatever actually matched). Queries
 * run concurrently with the resident pipelines and must not disturb
 * them — which is why they lean on hashes instead of exact scans.
 *
 * Every query is one declarative Query descriptor handed to
 * execute(). Execution is sharded: each node's store is scanned (or
 * bucket-probed) by a worker from a shared pool, per-node partials
 * carry their own QueryStats, and the merge is deterministic —
 * sorted by timestamp, ties broken by node — so the result is
 * bit-identical whichever parallelism the pool runs at.
 */

#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "scalo/app/query.hpp"
#include "scalo/app/store.hpp"
#include "scalo/lsh/hasher.hpp"
#include "scalo/util/thread_pool.hpp"

namespace scalo::app {

/** Per-node execution metrics for one query. */
struct QueryStats
{
    NodeId node = 0;
    /** Windows actually touched (read through the SC). */
    std::size_t scanned = 0;
    /** Windows surfaced by the bucket index (0 on scan paths). */
    std::size_t bucketHits = 0;
    /** Exact DTW comparisons run on this node. */
    std::size_t dtwComparisons = 0;
    /** Windows this node contributed to the result. */
    std::size_t matched = 0;
    /** Host wall-clock spent in this node's shard. */
    units::Millis wall{0.0};
    /** Modeled on-node latency: SC reads + matching. */
    units::Millis modeled{0.0};
    /**
     * Whether this shard's answer made it into the result (false for
     * nodes marked down and shards over the query's deadline).
     */
    bool answered = true;
};

/** How much of the shard fan-out contributed to the answer. */
struct Coverage
{
    std::size_t answeredShards = 0;
    std::size_t totalShards = 0;

    bool complete() const { return answeredShards == totalShards; }

    double
    fraction() const
    {
        return totalShards ? static_cast<double>(answeredShards) /
                                 static_cast<double>(totalShards)
                           : 1.0;
    }
};

/** The result of executing one query over the distributed stores. */
struct QueryExecution
{
    /**
     * Matched windows across all nodes (pointers into the stores),
     * sorted by timestamp, ties in node order.
     */
    std::vector<const StoredWindow *> matches;
    /** Windows touched across all nodes. */
    std::size_t scanned = 0;
    /** Modeled end-to-end latency. */
    units::Millis latency{0.0};
    /** Bytes shipped through the external radio. */
    std::size_t transferBytes = 0;
    /** Host wall-clock for the whole execution. */
    units::Millis wall{0.0};
    /** One entry per node, in node order. */
    std::vector<QueryStats> perNode;
    /** Shards answered vs. asked; partial under faults/deadlines. */
    Coverage coverage;

    double
    matchedFraction() const
    {
        return scanned ? static_cast<double>(matches.size()) /
                             static_cast<double>(scanned)
                       : 0.0;
    }
};

/** The distributed query processor. */
class QueryEngine
{
  public:
    /**
     * @param nodes           implant count
     * @param window_samples  analysis window length
     * @param seed            hash-family seed (must match ingest-side)
     */
    QueryEngine(std::size_t nodes, std::size_t window_samples,
                std::uint64_t seed = 7);

    /** Ingest one window on one node (hashes + stores it). */
    void ingest(NodeId node, std::uint64_t timestamp_us,
                ElectrodeId electrode,
                const std::vector<double> &window,
                bool seizure_flagged);

    /** Execute one query descriptor across all nodes. */
    QueryExecution execute(const Query &query) const;

    /**
     * Worker threads fanning node shards out (1 = sequential). The
     * merge is deterministic, so this only changes wall-clock.
     */
    void setParallelism(std::size_t threads);
    std::size_t parallelism() const { return threads; }

    /** Per-node store access. */
    const SignalStore &store(NodeId node) const;

    /**
     * Mark a node down (or back up): down shards are skipped at
     * dispatch and the execution reports partial coverage. Mirrors
     * the runtime's failure detector into the query path.
     */
    void setNodeDown(NodeId node, bool down = true);
    bool nodeDown(NodeId node) const;

    std::size_t nodeCount() const { return stores.size(); }

    const lsh::WindowHasher &hasher() const { return windowHasher; }

  private:
    /** One node's shard: matches (timestamp-sorted) plus stats. */
    struct NodePartial
    {
        std::vector<const StoredWindow *> matches;
        QueryStats stats;
    };

    NodePartial executeNode(NodeId node, const Query &query,
                            const lsh::Signature &probe_hash) const;

    std::size_t windowSamples;
    lsh::WindowHasher windowHasher;
    std::vector<SignalStore> stores;
    /** Nodes currently marked down (skipped at dispatch). */
    std::vector<char> downNodes;
    std::size_t threads;
    /** Execution machinery, not logical state; rebuilt on resize. */
    mutable std::unique_ptr<util::ThreadPool> pool;
};

} // namespace scalo::app
