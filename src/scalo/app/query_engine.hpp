/**
 * @file
 * Executable interactive queries (Section 6.4): unlike the cost model
 * in query.hpp, the QueryEngine actually runs queries against data
 * stored on every node's SignalStore, returning the matched windows
 * alongside the modeled latency (NVM reads, per-window matching, and
 * the external-radio transfer of whatever actually matched). Queries
 * run concurrently with the resident pipelines and must not disturb
 * them — which is why they lean on hashes instead of exact scans.
 *
 * Every query is one declarative Query descriptor handed to
 * execute(). Execution is sharded: each node's store is scanned (or
 * bucket-probed) by a worker from a shared pool, per-node partials
 * carry their own QueryStats, and the merge is deterministic —
 * sorted by timestamp, ties broken by node — so the result is
 * bit-identical whichever parallelism the pool runs at.
 *
 * For the serving runtime the engine additionally separates per-query
 * setup from execution — compile() normalizes a descriptor and hashes
 * its probe into an immutable CompiledQuery the serve-layer plan
 * cache shares across submissions — and executes whole batches:
 * executeBatch() gathers candidates for every in-flight query per
 * node shard and coalesces their deferred Euclidean confirmations
 * into one batched distance-kernel sweep, returning results
 * bit-identical to one-at-a-time execution.
 */

#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "scalo/app/query.hpp"
#include "scalo/app/store.hpp"
#include "scalo/lsh/hasher.hpp"
#include "scalo/net/cluster.hpp"
#include "scalo/util/thread_pool.hpp"

namespace scalo::app {

/** Per-node execution metrics for one query. */
struct QueryStats
{
    NodeId node = 0;
    /** Windows actually touched (read through the SC). */
    std::size_t scanned = 0;
    /** Windows surfaced by the bucket index (0 on scan paths). */
    std::size_t bucketHits = 0;
    /** Exact DTW comparisons run on this node. */
    std::size_t dtwComparisons = 0;
    /** Windows this node contributed to the result. */
    std::size_t matched = 0;
    /** Host wall-clock spent in this node's shard. */
    units::Millis wall{0.0};
    /** Modeled on-node latency: SC reads + matching. */
    units::Millis modeled{0.0};
    /**
     * Whether this shard's answer made it into the result (false for
     * nodes marked down and shards over the query's deadline).
     */
    bool answered = true;
};

/**
 * One cluster's slice of a query's shard fan-out. Only present when
 * the engine was handed a ClusterPlan: the fabric's failure domains
 * are clusters, so callers triaging a partial answer want to know
 * *which* cluster went dark, not just how many shards did.
 */
struct ClusterCoverage
{
    std::size_t cluster = 0;
    std::size_t answeredShards = 0;
    std::size_t totalShards = 0;

    bool complete() const { return answeredShards == totalShards; }
};

/** How much of the shard fan-out contributed to the answer. */
struct Coverage
{
    std::size_t answeredShards = 0;
    std::size_t totalShards = 0;
    /**
     * Per-cluster tallies in cluster-id order; empty unless the
     * engine has a cluster plan. Sums match the flat counts.
     */
    std::vector<ClusterCoverage> clusters;

    bool complete() const { return answeredShards == totalShards; }

    double
    fraction() const
    {
        return totalShards ? static_cast<double>(answeredShards) /
                                 static_cast<double>(totalShards)
                           : 1.0;
    }
};

/** The result of executing one query over the distributed stores. */
struct QueryExecution
{
    /**
     * Matched windows across all nodes (pointers into the stores),
     * sorted by timestamp, ties in node order.
     */
    std::vector<const StoredWindow *> matches;
    /** Windows touched across all nodes. */
    std::size_t scanned = 0;
    /** Modeled end-to-end latency. */
    units::Millis latency{0.0};
    /** Bytes shipped through the external radio. */
    std::size_t transferBytes = 0;
    /** Host wall-clock for the whole execution. */
    units::Millis wall{0.0};
    /** One entry per node, in node order. */
    std::vector<QueryStats> perNode;
    /** Shards answered vs. asked; partial under faults/deadlines. */
    Coverage coverage;

    double
    matchedFraction() const
    {
        return scanned ? static_cast<double>(matches.size()) /
                             static_cast<double>(scanned)
                       : 0.0;
    }
};

/** The distributed query processor. */
class QueryEngine
{
  public:
    /**
     * @param nodes           implant count
     * @param window_samples  analysis window length
     * @param seed            hash-family seed (must match ingest-side)
     */
    QueryEngine(std::size_t nodes, std::size_t window_samples,
                std::uint64_t seed = 7);

    /** Ingest one window on one node (hashes + stores it). */
    void ingest(NodeId node, std::uint64_t timestamp_us,
                ElectrodeId electrode,
                const std::vector<double> &window,
                bool seizure_flagged);

    /** One window of an ingest batch (the arguments of ingest()). */
    struct IngestWindow
    {
        std::uint64_t timestampUs = 0;
        ElectrodeId electrode = 0;
        std::vector<double> samples;
        bool seizureFlagged = false;
    };

    /**
     * Ingest many windows on one node in one call: all signatures
     * are computed through one batched lsh::WindowHasher::hashMany()
     * sweep (one reusable scratch instead of a table allocation per
     * window), then the windows are appended in order. Store state
     * afterwards is identical to the equivalent sequence of
     * ingest() calls.
     */
    void ingestBatch(NodeId node, std::vector<IngestWindow> windows);

    /**
     * A query compiled for this engine: the normalized descriptor
     * plus the precomputed probe signature. Compilation is the
     * per-query setup work worth caching across submissions —
     * normalization and the LSH hash of the probe template — and a
     * CompiledQuery is immutable and engine-independent thereafter,
     * so one instance may be shared by any number of concurrent
     * executions (the serve-layer plan cache does exactly that).
     */
    struct CompiledQuery
    {
        /** The normalized descriptor (Query::normalized()). */
        Query query;
        /** Probe signature; default-constructed when no probe. */
        lsh::Signature probeHash;
    };

    /**
     * Validate @p query (range, probe size, confirm measure) and
     * compile it: normalize the descriptor and hash the probe.
     */
    CompiledQuery compile(const Query &query) const;

    /** Execute one query descriptor across all nodes. */
    QueryExecution execute(const Query &query) const;

    /** Execute a precompiled query (skips normalize + probe hash). */
    QueryExecution execute(const CompiledQuery &compiled) const;

    /**
     * Execute several queries as one cross-query batch: every node
     * shard gathers candidates for all queries in one pass,
     * deduplicates the confirmation candidates of every query on
     * that node into one SoA signal::WindowBatch (SignalStore
     * gather), and resolves the deferred Euclidean confirmations
     * through a single signal::euclideanDistanceBatch() sweep over
     * it (queries deduplicated onto the same CompiledQuery share
     * one coalesced kernel call). Results are returned in input
     * order and are bit-identical to executing each query alone —
     * batching changes wall-clock, never answers.
     *
     * Entries may repeat (the same plan submitted by several
     * tenants); repeated pointers are executed once and the
     * execution is replicated into each matching output slot.
     */
    std::vector<QueryExecution>
    executeBatch(const std::vector<const CompiledQuery *> &batch)
        const;

    /** Convenience overload: compiles (deduplicating equivalent
     *  descriptors via Query::cacheKey()) then batch-executes. */
    std::vector<QueryExecution>
    executeBatch(const std::vector<Query> &queries) const;

    /**
     * Worker threads fanning node shards out (1 = sequential). The
     * merge is deterministic, so this only changes wall-clock.
     */
    void setParallelism(std::size_t threads);
    std::size_t parallelism() const { return threads; }

    /** Per-node store access. */
    const SignalStore &store(NodeId node) const;

    /**
     * Mark a node down (or back up): down shards are skipped at
     * dispatch and the execution reports partial coverage. Mirrors
     * the runtime's failure detector into the query path. The flags
     * are atomic, so a chaos driver may flip nodes while executions
     * are in flight; each execution observes each flag once, at its
     * own dispatch.
     */
    void setNodeDown(NodeId node, bool down = true);
    bool nodeDown(NodeId node) const;

    /**
     * Teach the engine the fabric's cluster partition. Executions
     * thereafter report cluster-granular Coverage, and whole clusters
     * may be marked unreachable with setClusterDown(). The plan must
     * partition exactly nodeCount() nodes.
     */
    void setClusterPlan(net::ClusterPlan plan);
    const net::ClusterPlan &clusterPlan() const { return plan; }

    /**
     * Mark every shard of @p cluster unreachable (or reachable
     * again): a backbone partition takes a whole cluster out of the
     * query fan-out at once, and its queries degrade to
     * prefix-consistent partial results instead of timing out.
     * Requires a cluster plan. Atomic like setNodeDown(); each batch
     * samples every cluster flag once, at dispatch, so all queries in
     * a batch see the same shard population.
     */
    void setClusterDown(std::size_t cluster, bool down = true);
    bool clusterDown(std::size_t cluster) const;

    std::size_t nodeCount() const { return stores.size(); }

    /** Analysis-window length queries must match. */
    std::size_t windowSampleCount() const { return windowSamples; }

    const lsh::WindowHasher &hasher() const { return windowHasher; }

  private:
    /** One node's shard: matches (timestamp-sorted) plus stats. */
    struct NodePartial
    {
        std::vector<const StoredWindow *> matches;
        QueryStats stats;
        /** Candidates awaiting batched Euclidean confirmation. */
        std::vector<const StoredWindow *> confirm;
    };

    /**
     * Scan/probe one node: fills matches for every path except the
     * deferred Euclidean confirms, which land in partial.confirm.
     */
    NodePartial gatherNode(NodeId node, const Query &query,
                           const lsh::Signature &probe_hash) const;

    /**
     * Resolve the deferred confirms with their batch-computed
     * @p confirm_dists and close the stats (matched, modeled cost).
     */
    void finalizeNode(NodePartial &partial, const Query &query,
                      const std::vector<double> &confirm_dists,
                      const SignalStore &node_store) const;

    /** Deterministic merge of one query's per-node partials. */
    QueryExecution assemble(const Query &query,
                            const std::vector<NodePartial> &partials,
                            units::Millis wall) const;

    std::size_t windowSamples;
    lsh::WindowHasher windowHasher;
    std::vector<SignalStore> stores;
    /** Nodes currently marked down (skipped at dispatch). */
    std::unique_ptr<std::atomic<bool>[]> downNodes;
    /** Fabric partition; empty until setClusterPlan(). */
    net::ClusterPlan plan;
    /** Clusters currently unreachable (skipped at dispatch). */
    std::unique_ptr<std::atomic<bool>[]> downClusters;
    std::size_t threads;
    /** Execution machinery, not logical state; rebuilt on resize. */
    mutable std::unique_ptr<util::ThreadPool> pool;
};

} // namespace scalo::app
