/**
 * @file
 * Executable interactive queries (Section 6.4): unlike the cost model
 * in query.hpp, the QueryEngine actually runs Q1/Q2/Q3 against data
 * stored on every node's SignalStore, returning the matched windows
 * alongside the modeled latency (NVM reads, per-window matching, and
 * the external-radio transfer of whatever actually matched). Queries
 * run concurrently with the resident pipelines and must not disturb
 * them — which is why they lean on hashes instead of exact scans.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "scalo/app/query.hpp"
#include "scalo/app/store.hpp"
#include "scalo/lsh/hasher.hpp"

namespace scalo::app {

/** The result of executing one query over the distributed stores. */
struct QueryExecution
{
    /** Matched windows across all nodes (pointers into the stores). */
    std::vector<const StoredWindow *> matches;
    /** Windows scanned across all nodes. */
    std::size_t scanned = 0;
    /** Modeled end-to-end latency (ms). */
    double latencyMs = 0.0;
    /** Bytes shipped through the external radio. */
    std::size_t transferBytes = 0;

    double
    matchedFraction() const
    {
        return scanned ? static_cast<double>(matches.size()) /
                             static_cast<double>(scanned)
                       : 0.0;
    }
};

/** The distributed query processor. */
class QueryEngine
{
  public:
    /**
     * @param nodes           implant count
     * @param window_samples  analysis window length
     * @param seed            hash-family seed (must match ingest-side)
     */
    QueryEngine(std::size_t nodes, std::size_t window_samples,
                std::uint64_t seed = 7);

    /** Ingest one window on one node (hashes + stores it). */
    void ingest(NodeId node, std::uint64_t timestamp_us,
                ElectrodeId electrode,
                const std::vector<double> &window,
                bool seizure_flagged);

    /** Q1: all seizure-flagged windows in [t0, t1]. */
    QueryExecution q1SeizureWindows(std::uint64_t t0_us,
                                    std::uint64_t t1_us) const;

    /**
     * Q2: all windows in [t0, t1] whose hash matches @p probe
     * (optionally confirmed with exact DTW at @p dtw_threshold;
     * negative threshold skips confirmation).
     */
    QueryExecution q2TemplateMatch(std::uint64_t t0_us,
                                   std::uint64_t t1_us,
                                   const std::vector<double> &probe,
                                   double dtw_threshold = -1.0) const;

    /** Q3: everything in [t0, t1]. */
    QueryExecution q3TimeRange(std::uint64_t t0_us,
                               std::uint64_t t1_us) const;

    /** Per-node store access. */
    const SignalStore &store(NodeId node) const;

    const lsh::WindowHasher &hasher() const { return windowHasher; }

  private:
    /** Latency model shared by the three query shapes. */
    double modelLatencyMs(std::size_t scanned,
                          std::size_t matched_bytes,
                          bool exact_dtw) const;

    std::size_t windowSamples;
    lsh::WindowHasher windowHasher;
    std::vector<SignalStore> stores;
};

} // namespace scalo::app
