#include "scalo/app/seizure.hpp"

#include <cmath>

#include "scalo/sched/scheduler.hpp"
#include "scalo/signal/distance.hpp"
#include "scalo/signal/fft.hpp"
#include "scalo/signal/window.hpp"
#include "scalo/util/logging.hpp"

namespace scalo::app {

std::vector<double>
zscore(const std::vector<double> &window)
{
    std::vector<double> out = window;
    signal::removeMean(out);
    const double scale = signal::rms(out);
    if (scale > 1e-9)
        for (double &v : out)
            v /= scale;
    return out;
}

std::vector<double>
seizureFeatures(const std::vector<Window> &electrode_windows,
                double sample_rate_hz)
{
    SCALO_ASSERT(!electrode_windows.empty(), "no electrodes");
    // Mean band powers across electrodes (theta-ish seizure band, a
    // mid band, a high band), log-compressed, plus the RMS amplitude
    // and the mean adjacent-electrode correlation (the XCOR feature).
    const std::vector<signal::Band> bands{
        {2.0, 12.0}, {12.0, 45.0}, {45.0, 150.0}};

    std::vector<double> acc(bands.size(), 0.0);
    double rms_acc = 0.0;
    std::vector<std::vector<double>> reals;
    // One spectral workspace for every electrode window: the FFT plan,
    // padding and spectrum buffers are reused across the loop.
    signal::SpectrumScratch scratch;
    std::vector<double> powers;
    for (const Window &w : electrode_windows) {
        auto real = signal::toReal(w);
        signal::removeMean(real);
        signal::bandPower(real, sample_rate_hz, bands, scratch,
                          powers);
        for (std::size_t b = 0; b < bands.size(); ++b)
            acc[b] += powers[b];
        rms_acc += signal::rms(real);
        reals.push_back(std::move(real));
    }
    const double inv =
        1.0 / static_cast<double>(electrode_windows.size());

    std::vector<double> features;
    for (double p : acc)
        features.push_back(std::log1p(p * inv) / 10.0);
    features.push_back(std::log1p(rms_acc * inv) / 10.0);

    double xcor = 0.0;
    std::size_t pairs = 0;
    for (std::size_t e = 0; e + 1 < reals.size(); ++e) {
        xcor += signal::pearson(reals[e], reals[e + 1]);
        ++pairs;
    }
    features.push_back(pairs ? xcor / static_cast<double>(pairs)
                             : 0.0);
    return features;
}

SeizureDetector
SeizureDetector::train(const data::IeegDataset &dataset,
                       std::size_t window_samples)
{
    std::vector<std::vector<double>> xs;
    std::vector<int> ys;
    const auto &traces = dataset.traces();
    SCALO_ASSERT(!traces.empty(), "empty dataset");
    const double fs = dataset.config().sampleRateHz;

    // Every node contributes windows so the detector generalises
    // across sites.
    for (NodeId node = 0; node < traces.size(); ++node) {
        const std::size_t total = traces[node][0].size();
        for (std::size_t start = 0; start + window_samples <= total;
             start += window_samples) {
            std::vector<Window> windows;
            for (const auto &trace : traces[node]) {
                windows.emplace_back(
                    trace.begin() + static_cast<long>(start),
                    trace.begin() +
                        static_cast<long>(start + window_samples));
            }
            const double mid_t =
                (static_cast<double>(start) +
                 static_cast<double>(window_samples) / 2.0) /
                fs;
            xs.push_back(seizureFeatures(windows, fs));
            ys.push_back(dataset.inSeizure(node, mid_t) ? 1 : -1);
        }
    }

    SeizureDetector detector;
    detector.svm = ml::LinearSvm::train(xs, ys, 1e-4, 40, 11);
    return detector;
}

double
SeizureDetector::decision(const std::vector<Window> &electrode_windows,
                          double sample_rate_hz) const
{
    return svm.decision(
        seizureFeatures(electrode_windows, sample_rate_hz));
}

bool
SeizureDetector::detect(const std::vector<Window> &electrode_windows,
                        double sample_rate_hz) const
{
    return decision(electrode_windows, sample_rate_hz) >= 0.0;
}

SeizureDetector::Quality
SeizureDetector::evaluate(const data::IeegDataset &dataset, NodeId node,
                          std::size_t window_samples) const
{
    Quality quality;
    std::size_t tp = 0, fp = 0;
    const auto &traces = dataset.traces();
    SCALO_ASSERT(node < traces.size(), "node out of range");
    const double fs = dataset.config().sampleRateHz;
    const std::size_t total = traces[node][0].size();

    for (std::size_t start = 0; start + window_samples <= total;
         start += window_samples) {
        std::vector<Window> windows;
        for (const auto &trace : traces[node]) {
            windows.emplace_back(
                trace.begin() + static_cast<long>(start),
                trace.begin() +
                    static_cast<long>(start + window_samples));
        }
        const double mid_t = (static_cast<double>(start) +
                              static_cast<double>(window_samples) /
                                  2.0) /
                             fs;
        const bool truth = dataset.inSeizure(node, mid_t);
        const bool predicted = detect(windows, fs);
        if (truth) {
            ++quality.positives;
            tp += predicted;
        } else {
            ++quality.negatives;
            fp += predicted;
        }
    }
    if (quality.positives)
        quality.truePositiveRate =
            static_cast<double>(tp) /
            static_cast<double>(quality.positives);
    if (quality.negatives)
        quality.falsePositiveRate =
            static_cast<double>(fp) /
            static_cast<double>(quality.negatives);
    return quality;
}

PropagationAnalyzer::PropagationAnalyzer(std::size_t nodes,
                                         std::size_t window_samples,
                                         double dtw_threshold,
                                         std::uint64_t seed)
    : windowSamples(window_samples),
      dtwThreshold(dtw_threshold),
      windowHasher(signal::Measure::Dtw, window_samples, seed),
      checkers(nodes, lsh::CollisionChecker(100'000)),
      lastWindows(nodes),
      lastSignatures(nodes)
{
    SCALO_ASSERT(nodes >= 2, "propagation needs at least two nodes");
}

void
PropagationAnalyzer::observe(
    const std::vector<std::vector<double>> &windows_per_node,
    std::uint64_t timestamp_us)
{
    SCALO_ASSERT(windows_per_node.size() == checkers.size(),
                 "one window per node expected");
    for (NodeId node = 0; node < windows_per_node.size(); ++node) {
        SCALO_ASSERT(windows_per_node[node].size() == windowSamples,
                     "window size mismatch");
        const auto normalised = zscore(windows_per_node[node]);
        const auto signature = windowHasher.hash(normalised);
        checkers[node].store({timestamp_us, 0, signature});
        checkers[node].expire(timestamp_us);
        lastWindows[node] = normalised;
        lastSignatures[node] = signature;
    }
}

PropagationResult
PropagationAnalyzer::analyze(NodeId origin,
                             std::uint64_t timestamp_us) const
{
    SCALO_ASSERT(origin < checkers.size(), "origin out of range");
    PropagationResult result;
    result.origin = origin;

    // Step 1: broadcast the origin's hash; receivers run CCHECK.
    const lsh::Signature &broadcast = lastSignatures[origin];
    for (NodeId node = 0; node < checkers.size(); ++node) {
        if (node == origin)
            continue;
        const auto matches =
            checkers[node].check({broadcast}, timestamp_us);
        if (!matches.empty())
            result.hashMatches.push_back(node);
    }

    // Step 2: the origin broadcasts the full window; matching nodes
    // confirm with exact DTW on their own recent window.
    for (NodeId node : result.hashMatches) {
        const double distance = signal::dtwDistance(
            lastWindows[origin], lastWindows[node],
            std::max<std::size_t>(1, windowSamples / 10));
        if (distance <= dtwThreshold)
            result.confirmed.push_back(node);
    }
    return result;
}

} // namespace scalo::app

namespace scalo::app {

WeightedSeizureThroughput
seizurePropagationWeighted(const std::array<double, 3> &weights,
                           std::size_t nodes,
                           units::Milliwatts power_cap)
{
    SCALO_ASSERT(nodes >= 1, "need at least one node");
    const double weight_sum = weights[0] + weights[1] + weights[2];
    SCALO_ASSERT(weight_sum > 0.0, "weights must be positive");

    // The tasks interleave on each node's 96 physical electrodes; a
    // flow sharing a PE with another completes in the same time as if
    // run alone (Section 3.5), so each task's per-node electrode count
    // is its stand-alone feasibility clipped to the array size.
    sched::SystemConfig config;
    config.nodes = nodes;
    config.powerCap = power_cap;
    config.maxElectrodesPerNode = constants::kElectrodesPerNode;
    const sched::Scheduler scheduler(config);

    auto per_node = [&](const sched::FlowSpec &flow) {
        const double total =
            rateToElectrodes(scheduler.maxAggregateThroughput(flow));
        return total / static_cast<double>(nodes);
    };

    WeightedSeizureThroughput result;
    result.detectionElectrodes =
        per_node(sched::seizureDetectionFlow());
    result.hashElectrodes =
        per_node(sched::hashSimilarityFlow(net::Pattern::AllToAll));
    // DTW comparison processes the receiver's local electrodes
    // against the broadcast seizure windows; it is feasible whenever
    // any window can be exchanged, and covers the monitored array.
    const double dtw_alone = per_node(
        sched::dtwSimilarityFlow(net::Pattern::OneToAll));
    result.dtwElectrodes =
        (nodes >= 2 && dtw_alone > 0.0)
            ? std::min<double>(constants::kElectrodesPerNode,
                               result.detectionElectrodes)
            : result.detectionElectrodes;

    const double weighted_electrodes =
        (weights[0] * result.detectionElectrodes +
         weights[1] * result.hashElectrodes +
         weights[2] * result.dtwElectrodes) /
        weight_sum;
    result.weighted = electrodesToRate(
        weighted_electrodes * static_cast<double>(nodes));
    return result;
}

} // namespace scalo::app
