#include "scalo/app/query_engine.hpp"

#include "scalo/hw/pe.hpp"
#include "scalo/net/radio.hpp"
#include "scalo/signal/distance.hpp"
#include "scalo/util/logging.hpp"

namespace scalo::app {

QueryEngine::QueryEngine(std::size_t nodes,
                         std::size_t window_samples,
                         std::uint64_t seed)
    : windowSamples(window_samples),
      windowHasher(signal::Measure::Dtw, window_samples, seed)
{
    SCALO_ASSERT(nodes >= 1, "need at least one node");
    stores.resize(nodes);
}

void
QueryEngine::ingest(NodeId node, std::uint64_t timestamp_us,
                    ElectrodeId electrode,
                    const std::vector<double> &window,
                    bool seizure_flagged)
{
    SCALO_ASSERT(node < stores.size(), "node out of range");
    SCALO_ASSERT(window.size() == windowSamples,
                 "window size mismatch");
    StoredWindow stored;
    stored.timestampUs = timestamp_us;
    stored.electrode = electrode;
    stored.samples = window;
    stored.hash = windowHasher.hash(window);
    stored.seizureFlagged = seizure_flagged;
    stores[node].append(std::move(stored));
}

const SignalStore &
QueryEngine::store(NodeId node) const
{
    SCALO_ASSERT(node < stores.size(), "node out of range");
    return stores[node];
}

double
QueryEngine::modelLatencyMs(std::size_t scanned,
                            std::size_t matched_bytes,
                            bool exact_dtw) const
{
    // Scan (parallel across nodes): worst per-node share of the reads.
    const std::size_t per_node =
        (scanned + stores.size() - 1) / stores.size();
    const double scan_ms = stores.front().readCostMs(per_node);

    // Match: CCHECK batches vs per-window DTW.
    double match_ms;
    if (exact_dtw) {
        match_ms = static_cast<double>(per_node) *
                   *hw::peSpec(hw::PeKind::DTW).latencyMs;
    } else {
        match_ms = static_cast<double>(per_node) / 960.0 *
                   *hw::peSpec(hw::PeKind::CCHECK).latencyMs;
    }

    // Ship matches out through the external radio (serialized).
    const double radio_ms = net::externalRadio().transferMs(
        static_cast<double>(matched_bytes));

    return kQueryDispatchMs + scan_ms + match_ms + radio_ms;
}

QueryExecution
QueryEngine::q1SeizureWindows(std::uint64_t t0_us,
                              std::uint64_t t1_us) const
{
    QueryExecution execution;
    for (const SignalStore &node_store : stores) {
        for (const StoredWindow *window :
             node_store.range(t0_us, t1_us)) {
            ++execution.scanned;
            if (window->seizureFlagged)
                execution.matches.push_back(window);
        }
    }
    execution.transferBytes =
        execution.matches.size() * windowSamples * 2;
    execution.latencyMs = modelLatencyMs(
        execution.scanned, execution.transferBytes, false);
    return execution;
}

QueryExecution
QueryEngine::q2TemplateMatch(std::uint64_t t0_us, std::uint64_t t1_us,
                             const std::vector<double> &probe,
                             double dtw_threshold) const
{
    SCALO_ASSERT(probe.size() == windowSamples,
                 "probe size mismatch");
    const lsh::Signature probe_hash = windowHasher.hash(probe);
    const bool exact = dtw_threshold >= 0.0;

    QueryExecution execution;
    for (const SignalStore &node_store : stores) {
        for (const StoredWindow *window :
             node_store.range(t0_us, t1_us)) {
            ++execution.scanned;
            bool matched;
            if (exact) {
                matched = signal::dtwDistance(
                              probe, window->samples,
                              std::max<std::size_t>(
                                  1, windowSamples / 10)) <=
                          dtw_threshold;
            } else {
                matched = probe_hash.matches(window->hash);
            }
            if (matched)
                execution.matches.push_back(window);
        }
    }
    execution.transferBytes =
        execution.matches.size() * windowSamples * 2;
    execution.latencyMs = modelLatencyMs(
        execution.scanned, execution.transferBytes, exact);
    return execution;
}

QueryExecution
QueryEngine::q3TimeRange(std::uint64_t t0_us,
                         std::uint64_t t1_us) const
{
    QueryExecution execution;
    for (const SignalStore &node_store : stores) {
        for (const StoredWindow *window :
             node_store.range(t0_us, t1_us)) {
            ++execution.scanned;
            execution.matches.push_back(window);
        }
    }
    execution.transferBytes =
        execution.matches.size() * windowSamples * 2;
    execution.latencyMs = modelLatencyMs(
        execution.scanned, execution.transferBytes, false);
    return execution;
}

} // namespace scalo::app
