#include "scalo/app/query_engine.hpp"

#include <algorithm>
#include <chrono>
#include <unordered_map>

#include "scalo/hw/pe.hpp"
#include "scalo/net/radio.hpp"
#include "scalo/signal/distance.hpp"
#include "scalo/signal/window_batch.hpp"
#include "scalo/util/logging.hpp"

namespace scalo::app {

namespace {

units::Millis
elapsed(std::chrono::steady_clock::time_point since)
{
    return units::Millis{
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - since)
            .count()};
}

/** CCHECK compares hashes in batches of 960 per PE invocation. */
units::Millis
hashMatchTime(std::size_t compared)
{
    return static_cast<double>(compared) / 960.0 *
           *hw::peSpec(hw::PeKind::CCHECK).latency;
}

units::Millis
dtwMatchTime(std::size_t compared)
{
    return static_cast<double>(compared) *
           *hw::peSpec(hw::PeKind::DTW).latency;
}

} // namespace

QueryEngine::QueryEngine(std::size_t nodes,
                         std::size_t window_samples,
                         std::uint64_t seed)
    : windowSamples(window_samples),
      windowHasher(signal::Measure::Dtw, window_samples, seed),
      threads(util::ThreadPool::defaultThreads()),
      pool(std::make_unique<util::ThreadPool>(threads))
{
    SCALO_ASSERT(nodes >= 1, "need at least one node");
    stores.resize(nodes);
    downNodes = std::make_unique<std::atomic<bool>[]>(nodes);
    for (std::size_t node = 0; node < nodes; ++node)
        downNodes[node].store(false, std::memory_order_relaxed);
}

void
QueryEngine::setNodeDown(NodeId node, bool down)
{
    SCALO_ASSERT(node < stores.size(), "node out of range");
    downNodes[node].store(down, std::memory_order_release);
}

bool
QueryEngine::nodeDown(NodeId node) const
{
    SCALO_ASSERT(node < stores.size(), "node out of range");
    return downNodes[node].load(std::memory_order_acquire);
}

void
QueryEngine::setClusterPlan(net::ClusterPlan new_plan)
{
    new_plan.validate();
    SCALO_ASSERT(new_plan.nodeCount() == stores.size(),
                 "cluster plan node count mismatch");
    plan = std::move(new_plan);
    const std::size_t clusters = plan.clusterCount();
    downClusters = std::make_unique<std::atomic<bool>[]>(clusters);
    for (std::size_t c = 0; c < clusters; ++c)
        downClusters[c].store(false, std::memory_order_relaxed);
}

void
QueryEngine::setClusterDown(std::size_t cluster, bool down)
{
    SCALO_ASSERT(!plan.empty(), "no cluster plan configured");
    SCALO_ASSERT(cluster < plan.clusterCount(),
                 "cluster out of range");
    downClusters[cluster].store(down, std::memory_order_release);
}

bool
QueryEngine::clusterDown(std::size_t cluster) const
{
    SCALO_ASSERT(!plan.empty(), "no cluster plan configured");
    SCALO_ASSERT(cluster < plan.clusterCount(),
                 "cluster out of range");
    return downClusters[cluster].load(std::memory_order_acquire);
}

void
QueryEngine::setParallelism(std::size_t new_threads)
{
    threads = std::max<std::size_t>(1, new_threads);
    pool = std::make_unique<util::ThreadPool>(threads);
}

void
QueryEngine::ingest(NodeId node, std::uint64_t timestamp_us,
                    ElectrodeId electrode,
                    const std::vector<double> &window,
                    bool seizure_flagged)
{
    SCALO_ASSERT(node < stores.size(), "node out of range");
    SCALO_ASSERT(window.size() == windowSamples,
                 "window size mismatch");
    StoredWindow stored;
    stored.timestampUs = timestamp_us;
    stored.electrode = electrode;
    stored.samples = window;
    stored.hash = windowHasher.hash(window);
    stored.seizureFlagged = seizure_flagged;
    stores[node].append(std::move(stored));
}

void
QueryEngine::ingestBatch(NodeId node,
                         std::vector<IngestWindow> windows)
{
    SCALO_ASSERT(node < stores.size(), "node out of range");
    std::vector<const std::vector<double> *> samples;
    samples.reserve(windows.size());
    for (const IngestWindow &window : windows) {
        SCALO_ASSERT(window.samples.size() == windowSamples,
                     "window size mismatch");
        samples.push_back(&window.samples);
    }

    // One batched hashing sweep (hashMany == per-window hash() bit
    // for bit), then ordered appends: the store ends up exactly as
    // after the equivalent ingest() sequence.
    lsh::SshScratch scratch;
    std::vector<lsh::Signature> hashes;
    windowHasher.hashMany(samples, scratch, hashes);

    for (std::size_t i = 0; i < windows.size(); ++i) {
        IngestWindow &window = windows[i];
        StoredWindow stored;
        stored.timestampUs = window.timestampUs;
        stored.electrode = window.electrode;
        stored.samples = std::move(window.samples);
        stored.hash = hashes[i];
        stored.seizureFlagged = window.seizureFlagged;
        stores[node].append(std::move(stored));
    }
}

const SignalStore &
QueryEngine::store(NodeId node) const
{
    SCALO_ASSERT(node < stores.size(), "node out of range");
    return stores[node];
}

QueryEngine::CompiledQuery
QueryEngine::compile(const Query &query) const
{
    SCALO_ASSERT(query.t0Us <= query.t1Us, "empty time range");
    const bool templated = !query.probe.empty();
    if (templated) {
        SCALO_ASSERT(query.probe.size() == windowSamples,
                     "probe size mismatch");
        SCALO_ASSERT(query.confirmMeasure == signal::Measure::Dtw ||
                         query.confirmMeasure ==
                             signal::Measure::Euclidean,
                     "confirm measure must be DTW or Euclidean");
    }
    CompiledQuery compiled;
    compiled.query = query.normalized();
    if (templated)
        compiled.probeHash = windowHasher.hash(compiled.query.probe);
    return compiled;
}

QueryEngine::NodePartial
QueryEngine::gatherNode(NodeId node, const Query &query,
                        const lsh::Signature &probe_hash) const
{
    const auto started = std::chrono::steady_clock::now();
    const SignalStore &node_store = stores[node];
    NodePartial partial;
    partial.stats.node = node;

    const bool templated = !query.probe.empty();
    const bool exact = templated && query.dtwThreshold >= 0.0;
    const bool euclidean_confirm =
        exact && query.confirmMeasure == signal::Measure::Euclidean;
    const std::size_t sakoe_band =
        std::max<std::size_t>(1, windowSamples / 10);

    // Candidate set: bucket probe when the index applies, else the
    // full range read. Either way, these are the windows actually
    // pulled through the SC, and what the read model charges.
    const bool via_index =
        templated && query.hashPrefilter && query.useIndex;
    std::vector<const StoredWindow *> touched =
        via_index
            ? node_store.candidates(probe_hash, query.t0Us,
                                    query.t1Us)
            : node_store.range(query.t0Us, query.t1Us);
    partial.stats.scanned = touched.size();
    if (via_index)
        partial.stats.bucketHits = touched.size();

    // This shard's scratch: one rolling-row workspace reused across
    // every DTW confirmation below. Euclidean confirmations are only
    // collected here — they resolve later through the batched
    // distance kernel, coalesced across every query in flight on
    // this node.
    signal::DtwScratch dtw_scratch;
    for (const StoredWindow *window : touched) {
        if (query.seizureOnly && !window->seizureFlagged)
            continue;
        if (templated) {
            if (query.hashPrefilter &&
                !probe_hash.matches(window->hash))
                continue;
            if (euclidean_confirm) {
                partial.confirm.push_back(window);
                continue;
            }
            if (exact) {
                ++partial.stats.dtwComparisons;
                // Abandoned rows return a lower bound that is already
                // above the cutoff, so the threshold decision — the
                // only thing consulted — is exact.
                if (signal::dtwDistanceEarlyAbandon(
                        query.probe, window->samples, sakoe_band,
                        query.dtwThreshold, dtw_scratch) >
                    query.dtwThreshold)
                    continue;
            }
        }
        partial.matches.push_back(window);
    }

    partial.stats.wall = elapsed(started);
    return partial;
}

void
QueryEngine::finalizeNode(NodePartial &partial, const Query &query,
                          const std::vector<double> &confirm_dists,
                          const SignalStore &node_store) const
{
    const auto started = std::chrono::steady_clock::now();
    const bool templated = !query.probe.empty();
    const bool exact = templated && query.dtwThreshold >= 0.0;

    if (!partial.confirm.empty()) {
        // Candidates stayed in timestamp order through the batch, so
        // appending the survivors keeps the matches list sorted for
        // the deterministic merge.
        SCALO_ASSERT(confirm_dists.size() == partial.confirm.size(),
                     "confirmation batch size mismatch");
        partial.stats.dtwComparisons += partial.confirm.size();
        for (std::size_t i = 0; i < partial.confirm.size(); ++i)
            if (confirm_dists[i] <= query.dtwThreshold)
                partial.matches.push_back(partial.confirm[i]);
    }
    partial.stats.matched = partial.matches.size();

    // Modeled on-node time: SC reads of the touched windows, plus
    // CCHECK hash batches and/or per-window DTW.
    units::Millis match{0.0};
    if (!templated || query.hashPrefilter)
        match += hashMatchTime(partial.stats.scanned);
    if (exact)
        match += dtwMatchTime(partial.stats.dtwComparisons);
    partial.stats.modeled =
        node_store.readCost(partial.stats.scanned) + match;

    partial.stats.wall += elapsed(started);
}

QueryExecution
QueryEngine::assemble(const Query &query,
                      const std::vector<NodePartial> &partials,
                      units::Millis wall) const
{
    QueryExecution execution;
    execution.perNode.reserve(partials.size());
    units::Millis slowest_node{0.0};
    bool deadline_hit = false;
    for (const NodePartial &partial : partials) {
        ++execution.coverage.totalShards;
        QueryStats stats = partial.stats;
        // A shard over the per-shard deadline contributes nothing:
        // the caller asked for a bounded answer, not a complete one.
        if (stats.answered && query.shardDeadline.count() > 0.0 &&
            stats.modeled > query.shardDeadline) {
            stats.answered = false;
            deadline_hit = true;
        }
        if (!stats.answered) {
            execution.perNode.push_back(stats);
            continue;
        }
        ++execution.coverage.answeredShards;
        execution.scanned += stats.scanned;
        slowest_node = units::max(slowest_node, stats.modeled);
        execution.matches.insert(execution.matches.end(),
                                 partial.matches.begin(),
                                 partial.matches.end());
        execution.perNode.push_back(stats);
    }
    // Giving up on a shard still means waiting until its deadline.
    if (deadline_hit)
        slowest_node = units::max(slowest_node, query.shardDeadline);
    // Cluster-granular coverage: fold the per-node answers into the
    // fabric's failure domains so a partitioned cluster is visible
    // as such, not as an anonymous count of missing shards.
    if (!plan.empty()) {
        execution.coverage.clusters.resize(plan.clusterCount());
        for (std::size_t c = 0; c < plan.clusterCount(); ++c)
            execution.coverage.clusters[c].cluster = c;
        for (const QueryStats &stats : execution.perNode) {
            ClusterCoverage &slice =
                execution.coverage.clusters[plan.clusterOf(
                    stats.node)];
            ++slice.totalShards;
            if (stats.answered)
                ++slice.answeredShards;
        }
    }
    // Merge: per-node lists are timestamp-sorted and concatenated in
    // node order, so a stable sort on timestamp yields the canonical
    // (timestamp, node) order.
    std::stable_sort(execution.matches.begin(),
                     execution.matches.end(),
                     [](const StoredWindow *a, const StoredWindow *b) {
                         return a->timestampUs < b->timestampUs;
                     });

    execution.transferBytes =
        execution.matches.size() * windowSamples * 2;
    // Nodes scan in parallel; the external radio serialises results.
    execution.latency =
        kQueryDispatch + slowest_node +
        net::externalRadio().transferTime(units::Bytes{
            static_cast<double>(execution.transferBytes)});
    execution.wall = wall;
    return execution;
}

QueryExecution
QueryEngine::execute(const Query &query) const
{
    return execute(compile(query));
}

QueryExecution
QueryEngine::execute(const CompiledQuery &compiled) const
{
    std::vector<QueryExecution> executions =
        executeBatch(std::vector<const CompiledQuery *>{&compiled});
    return std::move(executions.front());
}

std::vector<QueryExecution>
QueryEngine::executeBatch(
    const std::vector<const CompiledQuery *> &batch) const
{
    const auto started = std::chrono::steady_clock::now();

    // Queries deduplicated onto one compiled plan (the serve-layer
    // cache hands several tenants the same object) execute once and
    // fan the execution back out to every requesting slot.
    std::vector<const CompiledQuery *> unique;
    std::vector<std::size_t> slot_of(batch.size());
    {
        std::unordered_map<const CompiledQuery *, std::size_t> seen;
        for (std::size_t i = 0; i < batch.size(); ++i) {
            const CompiledQuery *compiled = batch[i];
            SCALO_ASSERT(compiled != nullptr,
                         "null compiled query in batch");
            const auto [it, inserted] =
                seen.emplace(compiled, unique.size());
            if (inserted)
                unique.push_back(compiled);
            slot_of[i] = it->second;
        }
    }

    // partials[u][node]: per-query, per-node shard results. Each
    // node's column is written by exactly one pool worker, so the
    // fan-out stays deterministic whatever the pool width.
    std::vector<std::vector<NodePartial>> partials(unique.size());
    for (auto &rows : partials)
        rows.resize(stores.size());

    // Cluster reachability is sampled once per batch, before the
    // fan-out: a partition flipping mid-batch must not split one
    // cluster's shards into half answered, half skipped.
    std::vector<char> cluster_down(plan.clusterCount(), 0);
    for (std::size_t c = 0; c < cluster_down.size(); ++c)
        cluster_down[c] =
            downClusters[c].load(std::memory_order_acquire) ? 1 : 0;

    pool->parallelFor(stores.size(), [&](std::size_t node) {
        // Shards of down nodes are skipped at dispatch: the detector
        // already knows they cannot answer. The flag is sampled once
        // per node per batch, so every query in the batch sees the
        // same shard population. A node is also unreachable when its
        // whole cluster is partitioned off the backbone.
        const bool down =
            downNodes[node].load(std::memory_order_acquire) ||
            (!cluster_down.empty() &&
             cluster_down[plan.clusterOf(node)] != 0);

        // Confirmation candidates are deduplicated (by stored-window
        // identity) across every query in flight on this node into
        // one SoA WindowBatch: overlapping candidate sets — the
        // common case when tenants query the same time range — are
        // copied once and every job addresses them by row index.
        std::unordered_map<const StoredWindow *, std::uint32_t>
            row_of;
        std::vector<const StoredWindow *> gathered;
        std::vector<signal::BatchDistanceJob> jobs;
        std::vector<NodePartial *> job_partials;
        for (std::size_t u = 0; u < unique.size(); ++u) {
            NodePartial &partial = partials[u][node];
            if (down) {
                partial.stats.node = static_cast<NodeId>(node);
                partial.stats.answered = false;
                continue;
            }
            partial = gatherNode(static_cast<NodeId>(node),
                                 unique[u]->query,
                                 unique[u]->probeHash);
            if (partial.confirm.empty())
                continue;
            signal::BatchDistanceJob job;
            job.query = &unique[u]->query.probe;
            job.rows.reserve(partial.confirm.size());
            for (const StoredWindow *window : partial.confirm) {
                const auto [it, inserted] = row_of.emplace(
                    window,
                    static_cast<std::uint32_t>(gathered.size()));
                if (inserted)
                    gathered.push_back(window);
                job.rows.push_back(it->second);
            }
            jobs.push_back(std::move(job));
            job_partials.push_back(&partial);
        }

        // One coalesced verification sweep for every query on this
        // node; jobs sharing a probe share one kernel call over the
        // shared batch.
        signal::WindowBatch window_batch;
        SignalStore::gather(gathered, window_batch);
        signal::euclideanDistanceBatch(window_batch, jobs);

        static const std::vector<double> no_dists;
        std::size_t job_index = 0;
        for (std::size_t u = 0; u < unique.size(); ++u) {
            NodePartial &partial = partials[u][node];
            if (down || !partial.stats.answered)
                continue;
            const bool has_job =
                job_index < job_partials.size() &&
                job_partials[job_index] == &partial;
            finalizeNode(partial, unique[u]->query,
                         has_job ? jobs[job_index].distances
                                 : no_dists,
                         stores[node]);
            if (has_job)
                ++job_index;
        }
    });

    const units::Millis wall = elapsed(started);
    std::vector<QueryExecution> executions;
    executions.reserve(batch.size());
    for (std::size_t i = 0; i < batch.size(); ++i)
        executions.push_back(assemble(batch[i]->query,
                                      partials[slot_of[i]], wall));
    return executions;
}

std::vector<QueryExecution>
QueryEngine::executeBatch(const std::vector<Query> &queries) const
{
    // Compile once per distinct descriptor so equivalent queries in
    // the batch share a plan (and therefore a coalesced kernel call).
    std::vector<std::unique_ptr<CompiledQuery>> compiled;
    std::unordered_map<std::string, std::size_t> by_key;
    std::vector<const CompiledQuery *> batch;
    batch.reserve(queries.size());
    for (const Query &query : queries) {
        const std::string key = query.cacheKey();
        const auto [it, inserted] =
            by_key.emplace(key, compiled.size());
        if (inserted)
            compiled.push_back(
                std::make_unique<CompiledQuery>(compile(query)));
        batch.push_back(compiled[it->second].get());
    }
    return executeBatch(batch);
}

} // namespace scalo::app
