#include "scalo/app/query_engine.hpp"

#include <algorithm>
#include <chrono>

#include "scalo/hw/pe.hpp"
#include "scalo/net/radio.hpp"
#include "scalo/signal/distance.hpp"
#include "scalo/util/logging.hpp"

namespace scalo::app {

namespace {

units::Millis
elapsed(std::chrono::steady_clock::time_point since)
{
    return units::Millis{
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - since)
            .count()};
}

/** CCHECK compares hashes in batches of 960 per PE invocation. */
units::Millis
hashMatchTime(std::size_t compared)
{
    return static_cast<double>(compared) / 960.0 *
           *hw::peSpec(hw::PeKind::CCHECK).latency;
}

units::Millis
dtwMatchTime(std::size_t compared)
{
    return static_cast<double>(compared) *
           *hw::peSpec(hw::PeKind::DTW).latency;
}

} // namespace

QueryEngine::QueryEngine(std::size_t nodes,
                         std::size_t window_samples,
                         std::uint64_t seed)
    : windowSamples(window_samples),
      windowHasher(signal::Measure::Dtw, window_samples, seed),
      threads(util::ThreadPool::defaultThreads()),
      pool(std::make_unique<util::ThreadPool>(threads))
{
    SCALO_ASSERT(nodes >= 1, "need at least one node");
    stores.resize(nodes);
    downNodes.assign(nodes, 0);
}

void
QueryEngine::setNodeDown(NodeId node, bool down)
{
    SCALO_ASSERT(node < downNodes.size(), "node out of range");
    downNodes[node] = down ? 1 : 0;
}

bool
QueryEngine::nodeDown(NodeId node) const
{
    SCALO_ASSERT(node < downNodes.size(), "node out of range");
    return downNodes[node] != 0;
}

void
QueryEngine::setParallelism(std::size_t new_threads)
{
    threads = std::max<std::size_t>(1, new_threads);
    pool = std::make_unique<util::ThreadPool>(threads);
}

void
QueryEngine::ingest(NodeId node, std::uint64_t timestamp_us,
                    ElectrodeId electrode,
                    const std::vector<double> &window,
                    bool seizure_flagged)
{
    SCALO_ASSERT(node < stores.size(), "node out of range");
    SCALO_ASSERT(window.size() == windowSamples,
                 "window size mismatch");
    StoredWindow stored;
    stored.timestampUs = timestamp_us;
    stored.electrode = electrode;
    stored.samples = window;
    stored.hash = windowHasher.hash(window);
    stored.seizureFlagged = seizure_flagged;
    stores[node].append(std::move(stored));
}

const SignalStore &
QueryEngine::store(NodeId node) const
{
    SCALO_ASSERT(node < stores.size(), "node out of range");
    return stores[node];
}

QueryEngine::NodePartial
QueryEngine::executeNode(NodeId node, const Query &query,
                         const lsh::Signature &probe_hash) const
{
    const auto started = std::chrono::steady_clock::now();
    const SignalStore &node_store = stores[node];
    NodePartial partial;
    partial.stats.node = node;

    const bool templated = !query.probe.empty();
    const bool exact = templated && query.dtwThreshold >= 0.0;
    const bool euclidean_confirm =
        exact && query.confirmMeasure == signal::Measure::Euclidean;
    const std::size_t sakoe_band =
        std::max<std::size_t>(1, windowSamples / 10);

    // Candidate set: bucket probe when the index applies, else the
    // full range read. Either way, these are the windows actually
    // pulled through the SC, and what the read model charges.
    const bool via_index =
        templated && query.hashPrefilter && query.useIndex;
    std::vector<const StoredWindow *> touched =
        via_index
            ? node_store.candidates(probe_hash, query.t0Us,
                                    query.t1Us)
            : node_store.range(query.t0Us, query.t1Us);
    partial.stats.scanned = touched.size();
    if (via_index)
        partial.stats.bucketHits = touched.size();

    // This shard's scratch: one rolling-row workspace reused across
    // every DTW confirmation below, and a deferred candidate list for
    // the batched Euclidean confirmation.
    signal::DtwScratch dtw_scratch;
    std::vector<const StoredWindow *> confirm;
    for (const StoredWindow *window : touched) {
        if (query.seizureOnly && !window->seizureFlagged)
            continue;
        if (templated) {
            if (query.hashPrefilter &&
                !probe_hash.matches(window->hash))
                continue;
            if (euclidean_confirm) {
                confirm.push_back(window);
                continue;
            }
            if (exact) {
                ++partial.stats.dtwComparisons;
                // Abandoned rows return a lower bound that is already
                // above the cutoff, so the threshold decision — the
                // only thing consulted — is exact.
                if (signal::dtwDistanceEarlyAbandon(
                        query.probe, window->samples, sakoe_band,
                        query.dtwThreshold, dtw_scratch) >
                    query.dtwThreshold)
                    continue;
            }
        }
        partial.matches.push_back(window);
    }
    if (!confirm.empty()) {
        // Batched Euclidean confirmation: one fused squared-distance
        // sweep over every surviving candidate, sqrt deferred to a
        // single pass. Candidates stay in timestamp order, so the
        // matches list stays sorted for the deterministic merge.
        std::vector<const std::vector<double> *> samples;
        samples.reserve(confirm.size());
        for (const StoredWindow *window : confirm)
            samples.push_back(&window->samples);
        std::vector<double> dists;
        signal::euclideanDistanceMany(query.probe, samples, dists);
        partial.stats.dtwComparisons += confirm.size();
        for (std::size_t i = 0; i < confirm.size(); ++i)
            if (dists[i] <= query.dtwThreshold)
                partial.matches.push_back(confirm[i]);
    }
    partial.stats.matched = partial.matches.size();

    // Modeled on-node time: SC reads of the touched windows, plus
    // CCHECK hash batches and/or per-window DTW.
    units::Millis match{0.0};
    if (!templated || query.hashPrefilter)
        match += hashMatchTime(partial.stats.scanned);
    if (exact)
        match += dtwMatchTime(partial.stats.dtwComparisons);
    partial.stats.modeled =
        node_store.readCost(partial.stats.scanned) + match;

    partial.stats.wall = elapsed(started);
    return partial;
}

QueryExecution
QueryEngine::execute(const Query &query) const
{
    SCALO_ASSERT(query.t0Us <= query.t1Us, "empty time range");
    const bool templated = !query.probe.empty();
    if (templated) {
        SCALO_ASSERT(query.probe.size() == windowSamples,
                     "probe size mismatch");
        SCALO_ASSERT(query.confirmMeasure == signal::Measure::Dtw ||
                         query.confirmMeasure ==
                             signal::Measure::Euclidean,
                     "confirm measure must be DTW or Euclidean");
    }
    const lsh::Signature probe_hash =
        templated ? windowHasher.hash(query.probe)
                  : lsh::Signature();

    const auto started = std::chrono::steady_clock::now();

    // Fan the shards out; each node writes its own slot, so the
    // gather below is deterministic whatever the pool width. Shards
    // of down nodes are skipped at dispatch: the detector already
    // knows they cannot answer.
    std::vector<NodePartial> partials(stores.size());
    pool->parallelFor(stores.size(), [&](std::size_t node) {
        if (downNodes[node]) {
            partials[node].stats.node = static_cast<NodeId>(node);
            partials[node].stats.answered = false;
            return;
        }
        partials[node] = executeNode(static_cast<NodeId>(node),
                                     query, probe_hash);
    });

    QueryExecution execution;
    execution.perNode.reserve(partials.size());
    units::Millis slowest_node{0.0};
    bool deadline_hit = false;
    for (NodePartial &partial : partials) {
        ++execution.coverage.totalShards;
        // A shard over the per-shard deadline contributes nothing:
        // the caller asked for a bounded answer, not a complete one.
        if (partial.stats.answered &&
            query.shardDeadline.count() > 0.0 &&
            partial.stats.modeled > query.shardDeadline) {
            partial.stats.answered = false;
            deadline_hit = true;
        }
        if (!partial.stats.answered) {
            execution.perNode.push_back(partial.stats);
            continue;
        }
        ++execution.coverage.answeredShards;
        execution.scanned += partial.stats.scanned;
        slowest_node =
            units::max(slowest_node, partial.stats.modeled);
        execution.matches.insert(execution.matches.end(),
                                 partial.matches.begin(),
                                 partial.matches.end());
        execution.perNode.push_back(partial.stats);
    }
    // Giving up on a shard still means waiting until its deadline.
    if (deadline_hit)
        slowest_node = units::max(slowest_node, query.shardDeadline);
    // Merge: per-node lists are timestamp-sorted and concatenated in
    // node order, so a stable sort on timestamp yields the canonical
    // (timestamp, node) order.
    std::stable_sort(execution.matches.begin(),
                     execution.matches.end(),
                     [](const StoredWindow *a, const StoredWindow *b) {
                         return a->timestampUs < b->timestampUs;
                     });

    execution.transferBytes =
        execution.matches.size() * windowSamples * 2;
    // Nodes scan in parallel; the external radio serialises results.
    execution.latency =
        kQueryDispatch + slowest_node +
        net::externalRadio().transferTime(units::Bytes{
            static_cast<double>(execution.transferBytes)});
    execution.wall = elapsed(started);
    return execution;
}

} // namespace scalo::app
