#include "scalo/app/spikesort.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "scalo/signal/distance.hpp"
#include "scalo/signal/features.hpp"
#include "scalo/util/logging.hpp"

namespace scalo::app {

SpikeSorter::SpikeSorter(std::vector<std::vector<double>> templates,
                         bool use_hashes, std::uint64_t seed)
    : templateBank(std::move(templates)), hashed(use_hashes)
{
    SCALO_ASSERT(!templateBank.empty(), "need at least one template");
    waveformSamples = templateBank.front().size();
    for (auto &tmpl : templateBank) {
        SCALO_ASSERT(tmpl.size() == waveformSamples,
                     "templates must share a length");
        // Canonical alignment: rotate so the trough sits at the
        // centre, matching how detected waveforms are extracted.
        const auto trough = static_cast<std::size_t>(
            std::min_element(tmpl.begin(), tmpl.end()) -
            tmpl.begin());
        const std::size_t centre = waveformSamples / 2;
        std::vector<double> aligned(waveformSamples, 0.0);
        for (std::size_t i = 0; i < waveformSamples; ++i) {
            const long src = static_cast<long>(i) +
                             static_cast<long>(trough) -
                             static_cast<long>(centre);
            if (src >= 0 && src < static_cast<long>(waveformSamples))
                aligned[i] = tmpl[static_cast<std::size_t>(src)];
        }
        tmpl = std::move(aligned);
    }

    if (hashed) {
        // Bias toward false positives (resolved by the exact pass):
        // generous buckets and three OR-bands keep the true template
        // in the candidate set with high probability.
        lsh::EmdHashParams params;
        params.seed = seed;
        params.bucketWidth = 1.8;
        params.bands = 3;
        hasher = std::make_unique<lsh::EmdHasher>(params,
                                                  waveformSamples);
        for (const auto &tmpl : templateBank)
            templateSignatures.push_back(hasher->signature(tmpl));
    }
}

int
SpikeSorter::match(const std::vector<double> &waveform) const
{
    // Unit amplitude is itself a discriminative feature: the matcher
    // compares raw (trough-aligned) waveforms. A silent waveform has
    // nothing to match.
    double peak = 0.0;
    for (double v : waveform)
        peak = std::max(peak, std::abs(v));
    if (peak < 1e-9)
        return -1;
    const std::vector<double> &shape = waveform;

    // Candidate set: all templates (exact mode) or the hash matches
    // (CCHECK against the stored template hashes).
    std::vector<std::size_t> candidates;
    if (hashed) {
        const auto signature = hasher->signature(shape);
        for (std::size_t t = 0; t < templateSignatures.size(); ++t)
            if (signature.matches(templateSignatures[t]))
                candidates.push_back(t);
        if (candidates.empty())
            return -1;
    } else {
        for (std::size_t t = 0; t < templateBank.size(); ++t)
            candidates.push_back(t);
    }

    // Exact EMD among the candidates picks the winner.
    double best = std::numeric_limits<double>::max();
    int winner = -1;
    for (std::size_t t : candidates) {
        const double d =
            signal::emdSignalDistance(shape, templateBank[t]);
        if (d < best) {
            best = d;
            winner = static_cast<int>(t);
        }
    }
    return winner;
}

std::vector<SortedSpike>
SpikeSorter::sort(const std::vector<double> &trace,
                  double threshold_k) const
{
    // NEO emphasises spikes; adaptive threshold + refractory detects.
    const auto energy = signal::neo(trace);
    const double threshold =
        signal::adaptiveThreshold(energy, threshold_k);
    const auto detections = signal::thresholdDetect(
        energy, threshold, waveformSamples / 2);

    std::vector<SortedSpike> spikes;
    const std::size_t half = waveformSamples / 2;
    for (std::size_t at : detections) {
        // Align on the waveform trough near the detection.
        std::size_t centre = at;
        double best = trace[at];
        const std::size_t lo = (at > half / 2) ? at - half / 2 : 0;
        const std::size_t hi =
            std::min(trace.size() - 1, at + half / 2);
        for (std::size_t i = lo; i <= hi; ++i) {
            if (trace[i] < best) {
                best = trace[i];
                centre = i;
            }
        }

        std::vector<double> waveform(waveformSamples, 0.0);
        for (std::size_t i = 0; i < waveformSamples; ++i) {
            const long index = static_cast<long>(centre) -
                               static_cast<long>(half) +
                               static_cast<long>(i);
            if (index >= 0 &&
                index < static_cast<long>(trace.size()))
                waveform[i] =
                    trace[static_cast<std::size_t>(index)];
        }
        spikes.push_back({centre, match(waveform)});
    }
    return spikes;
}

SortingReport
SpikeSorter::evaluate(const data::SpikeDataset &dataset,
                      double threshold_k) const
{
    SortingReport report;
    report.spikes = sort(dataset.trace, threshold_k);

    // Pair each ground-truth event with the nearest sorted spike
    // within half a waveform.
    const std::size_t tolerance = waveformSamples / 2;
    std::size_t correct = 0;
    std::vector<bool> used(report.spikes.size(), false);
    for (const data::SpikeEvent &event : dataset.events) {
        long best_gap = static_cast<long>(tolerance) + 1;
        std::size_t best_index = report.spikes.size();
        for (std::size_t s = 0; s < report.spikes.size(); ++s) {
            if (used[s])
                continue;
            const long gap = std::abs(
                static_cast<long>(report.spikes[s].sampleIndex) -
                static_cast<long>(event.sampleIndex));
            if (gap < best_gap) {
                best_gap = gap;
                best_index = s;
            }
        }
        if (best_index == report.spikes.size())
            continue;
        used[best_index] = true;
        ++report.detected;
        if (report.spikes[best_index].neuron >= 0) {
            ++report.matched;
            correct += (report.spikes[best_index].neuron ==
                        event.neuron);
        }
    }
    if (!dataset.events.empty())
        report.detectionRate =
            static_cast<double>(report.detected) /
            static_cast<double>(dataset.events.size());
    if (report.matched)
        report.accuracy = static_cast<double>(correct) /
                          static_cast<double>(report.matched);
    return report;
}

} // namespace scalo::app
