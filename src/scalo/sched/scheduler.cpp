#include "scalo/sched/scheduler.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "scalo/hw/nvm.hpp"
#include "scalo/ilp/solver.hpp"
#include "scalo/net/packet.hpp"
#include "scalo/util/contracts.hpp"
#include "scalo/util/logging.hpp"

namespace scalo::sched {

using namespace units::literals;

namespace {

/** TDMA slot guard time (radio turnaround), matching net::TdmaSchedule. */
constexpr units::Millis kGuard = units::Micros{20.0};

/**
 * Linearised wire time for one payload byte: per-packet overhead
 * amortised as a rate factor. (The ILP needs per-byte coefficients,
 * so this is where a time deliberately leaves the unit system as ms.)
 */
units::Millis
wireTimePerByte(const net::RadioSpec &radio)
{
    const double overhead_factor =
        1.0 + static_cast<double>(net::kPacketOverheadBytes) /
                  static_cast<double>(net::kMaxPayloadBytes);
    return overhead_factor * (1.0_B / radio.dataRate);
}

units::Millis
wireFixed(const net::RadioSpec &radio)
{
    return units::Bytes{static_cast<double>(
               net::kPacketOverheadBytes)} /
               radio.dataRate +
           kGuard;
}

/**
 * Indices of live nodes that transmit for a flow's pattern. With
 * every node alive this reproduces the canonical roles (node 0
 * broadcasts / aggregates); after failures the first surviving node
 * inherits the broadcaster/aggregator role.
 */
std::vector<std::size_t>
senders(net::Pattern pattern, const std::vector<bool> &alive)
{
    std::vector<std::size_t> live;
    for (std::size_t n = 0; n < alive.size(); ++n)
        if (alive[n])
            live.push_back(n);
    std::vector<std::size_t> out;
    switch (pattern) {
      case net::Pattern::OneToAll:
        if (!live.empty())
            out.push_back(live.front());
        break;
      case net::Pattern::AllToAll:
        out = live;
        break;
      case net::Pattern::AllToOne:
        for (std::size_t i = 1; i < live.size(); ++i)
            out.push_back(live[i]);
        break;
    }
    return out;
}

/** Leakage charged to every live node for @p flows (radio once). */
units::Milliwatts
totalLeak(const SystemConfig &config,
          const std::vector<FlowSpec> &flows)
{
    units::Milliwatts radio_leak{0.0};
    std::size_t networked = 0;
    for (const FlowSpec &flow : flows)
        if (flow.network)
            ++networked;
    if (config.wirelessNetwork && networked > 0)
        radio_leak = config.radio->power;

    units::Milliwatts leak_total{0.0};
    for (const FlowSpec &flow : flows) {
        units::Milliwatts leak = flow.leak;
        if (flow.network) {
            // FlowSpec folds the default radio into its leakage;
            // replace it with the configured radio, charged once.
            leak -= net::defaultRadio().power;
        }
        leak_total += leak;
    }
    return leak_total + radio_leak;
}

/**
 * Per-node power of an allocation: leakage on live nodes plus each
 * flow's linear/quadratic dynamic terms (receive-side for
 * exact-compare flows). Dead nodes are off and draw nothing.
 */
std::vector<units::Milliwatts>
allocationPower(const SystemConfig &config,
                const std::vector<FlowSpec> &flows,
                const std::vector<FlowAllocation> &allocs,
                const std::vector<bool> &alive,
                units::Milliwatts leak_total)
{
    std::vector<units::Milliwatts> power(config.nodes,
                                         units::Milliwatts{0.0});
    for (std::size_t n = 0; n < config.nodes; ++n)
        if (alive[n])
            power[n] = leak_total;
    for (std::size_t f = 0; f < flows.size(); ++f) {
        const bool exact = flows[f].network &&
                           flows[f].network->exactCompare &&
                           config.wirelessNetwork;
        for (std::size_t n = 0; n < config.nodes; ++n) {
            if (!alive[n])
                continue;
            const double e = allocs[f].electrodesPerNode[n];
            if (exact) {
                // Receive-side comparison power.
                power[n] += flows[f].linPerElectrode *
                            (allocs[f].totalElectrodes - e);
            } else {
                power[n] += flows[f].linPerElectrode * e +
                            flows[f].quadPerElectrode2 * e * e;
            }
        }
    }
    return power;
}

/**
 * Per-node power under the hierarchical exact-compare model: nodes
 * compare windows against their cluster peers only, and each
 * cluster's relay additionally compares the other clusters' backbone
 * aggregates. (This is the point of clustering: all-pairs comparison
 * work turns into per-cluster work plus one relay-side pass.)
 * Non-exact flows charge exactly as in the flat model.
 */
std::vector<units::Milliwatts>
allocationPowerClustered(const SystemConfig &config,
                         const std::vector<FlowSpec> &flows,
                         const std::vector<FlowAllocation> &allocs,
                         const std::vector<bool> &alive,
                         units::Milliwatts leak_total,
                         const net::ClusterPlan &plan)
{
    std::vector<units::Milliwatts> power(config.nodes,
                                         units::Milliwatts{0.0});
    for (std::size_t n = 0; n < config.nodes; ++n)
        if (alive[n])
            power[n] = leak_total;
    const std::size_t cluster_count = plan.clusterCount();
    std::vector<double> cluster_total(cluster_count, 0.0);
    for (std::size_t f = 0; f < flows.size(); ++f) {
        const bool exact = flows[f].network &&
                           flows[f].network->exactCompare &&
                           config.wirelessNetwork;
        if (!exact) {
            for (std::size_t n = 0; n < config.nodes; ++n) {
                if (!alive[n])
                    continue;
                const double e = allocs[f].electrodesPerNode[n];
                power[n] += flows[f].linPerElectrode * e +
                            flows[f].quadPerElectrode2 * e * e;
            }
            continue;
        }
        std::fill(cluster_total.begin(), cluster_total.end(), 0.0);
        double flow_total = 0.0;
        for (std::size_t n = 0; n < config.nodes; ++n) {
            const double e = allocs[f].electrodesPerNode[n];
            cluster_total[plan.clusterOf(n)] += e;
            flow_total += e;
        }
        for (std::size_t n = 0; n < config.nodes; ++n) {
            if (!alive[n])
                continue;
            power[n] +=
                flows[f].linPerElectrode *
                (cluster_total[plan.clusterOf(n)] -
                 allocs[f].electrodesPerNode[n]);
        }
        for (std::size_t c = 0; c < cluster_count; ++c) {
            const std::size_t relay = plan.relay(
                c, [&](std::size_t n) { return alive[n]; });
            if (relay != net::ClusterPlan::kNoRelay)
                power[relay] += flows[f].linPerElectrode *
                                (flow_total - cluster_total[c]);
        }
    }
    return power;
}

/**
 * Add tangent cuts approximating q >= e^2 from below (exact at the
 * grid points; the maximizing LP sits on the hull, so the error is
 * bounded by the grid pitch squared over four).
 */
void
addQuadraticCuts(ilp::Model &model, int e_var, int q_var, double e_max)
{
    constexpr int kCuts = 32;
    for (int i = 0; i <= kCuts; ++i) {
        const double e0 =
            e_max * static_cast<double>(i) / static_cast<double>(kCuts);
        // q >= 2 e0 e - e0^2.
        model.addConstraint({{q_var, 1.0}, {e_var, -2.0 * e0}},
                            ilp::Relation::GreaterEq, -e0 * e0);
    }
}

} // namespace

Scheduler::Scheduler(SystemConfig config)
    : systemConfig(std::move(config))
{
    SCALO_ASSERT(systemConfig.nodes >= 1, "need at least one node");
    SCALO_ASSERT(systemConfig.powerCap > 0.0_mW,
                 "power cap must be > 0");
    effectivePlan = systemConfig.clusters.empty()
                        ? net::ClusterPlan::flat(systemConfig.nodes)
                        : systemConfig.clusters;
    effectivePlan.validate();
    SCALO_ASSERT(effectivePlan.nodeCount() == systemConfig.nodes,
                 "cluster plan must cover every node");
}

bool
Scheduler::decomposed() const
{
    return effectivePlan.clusterCount() > 1 &&
           systemConfig.nodes > systemConfig.monolithicNodeThreshold;
}

Schedule
Scheduler::schedule(const std::vector<FlowSpec> &flows,
                    const std::vector<double> &priorities) const
{
    if (decomposed())
        return scheduleDecomposed(flows, priorities);
    return scheduleMasked(
        flows, priorities,
        std::vector<bool>(systemConfig.nodes, true));
}

Schedule
Scheduler::scheduleMonolithic(
    const std::vector<FlowSpec> &flows,
    const std::vector<double> &priorities) const
{
    return scheduleMasked(
        flows, priorities,
        std::vector<bool>(systemConfig.nodes, true));
}

Schedule
Scheduler::scheduleMasked(const std::vector<FlowSpec> &flows,
                          const std::vector<double> &priorities,
                          const std::vector<bool> &alive) const
{
    SCALO_ASSERT(flows.size() == priorities.size(),
                 "one priority per flow");
    SCALO_EXPECTS(alive.size() == systemConfig.nodes);
    Schedule result;
    const std::size_t nodes = systemConfig.nodes;

    // Static response-time feasibility: the PE chains are pipelined
    // at the window cadence (each PE sits in its own clock domain and
    // overlaps with its neighbours), so the binding serial component
    // is the network exchange round, which must fit the response-time
    // target.
    for (const FlowSpec &flow : flows) {
        if (flow.network &&
            flow.network->roundBudget >
                flow.responseTime + units::Millis{1e-9}) {
            result.reason = "flow '" + flow.name +
                            "' cannot meet its response time";
            return result;
        }
    }

    // Per-node leakage: each flow pays its own leakage, but the
    // intra-SCALO radio is one physical device, charged once.
    const units::Milliwatts leak_total =
        totalLeak(systemConfig, flows);
    const units::Milliwatts power_budget =
        systemConfig.powerCap - leak_total;
    if (power_budget <= 0.0_mW) {
        result.reason = "leakage alone exceeds the power cap";
        return result;
    }

    // Build the ILP.
    ilp::Model model;
    const double e_cap = systemConfig.maxElectrodesPerNode > 0.0
                             ? systemConfig.maxElectrodesPerNode
                             : 100'000.0;

    std::vector<std::vector<int>> e_vars(flows.size());
    std::vector<std::vector<int>> q_vars(flows.size());
    std::vector<std::vector<bool>> counted(flows.size());
    ilp::Expr objective;

    for (std::size_t f = 0; f < flows.size(); ++f) {
        const FlowSpec &flow = flows[f];
        // Exact-compare flows only give credit (and allocate
        // electrodes) to the transmitting nodes.
        const bool exact = flow.network && flow.network->exactCompare;
        // Dead nodes process nothing for any flow.
        std::vector<bool> is_sender = alive;
        if (exact && systemConfig.wirelessNetwork) {
            std::fill(is_sender.begin(), is_sender.end(), false);
            for (std::size_t n :
                 senders(flow.network->pattern, alive)) {
                is_sender[n] = true;
            }
        }
        counted[f] = is_sender;
        // Upper bound from power alone, used to place tangent cuts.
        const double e_power_max = std::min(
            e_cap, flow.electrodesAtPower(systemConfig.powerCap));
        for (std::size_t n = 0; n < nodes; ++n) {
            const int e = model.addVariable(
                flow.name + ".e" + std::to_string(n), 0.0,
                is_sender[n] ? e_cap : 0.0,
                systemConfig.integerElectrodes);
            e_vars[f].push_back(e);
            if (is_sender[n])
                objective.push_back({e, priorities[f]});
            if (flow.quadPerElectrode2.count() > 0.0) {
                const int q = model.addVariable(
                    flow.name + ".q" + std::to_string(n), 0.0,
                    ilp::kInf, false);
                q_vars[f].push_back(q);
                addQuadraticCuts(model, e, q,
                                 std::max(1.0, e_power_max) * 1.05);
            } else {
                q_vars[f].push_back(-1);
            }
        }
        // Centralised caps (e.g. the Kalman aggregator's NVM).
        if (flow.centralElectrodeCap > 0.0) {
            ilp::Expr total;
            for (int e : e_vars[f])
                total.push_back({e, 1.0});
            model.addConstraint(std::move(total),
                                ilp::Relation::LessEq,
                                flow.centralElectrodeCap,
                                flow.name + ".central-cap");
        }
    }

    // Per-node power and NVM write bandwidth. The ILP's coefficient
    // matrix is unitless, so rates and powers enter as their counts
    // (bytes/s and mW) - the one sanctioned escape hatch.
    const double nvm_write_bps =
        hw::nvmSpec().writeBandwidth().count() * 1e6;
    for (std::size_t n = 0; n < nodes; ++n) {
        // A dead node draws no power and writes nothing; leaving its
        // receive-side constraints in place would wrongly bound the
        // survivors.
        if (!alive[n])
            continue;
        ilp::Expr power;
        ilp::Expr nvm;
        for (std::size_t f = 0; f < flows.size(); ++f) {
            const FlowSpec &flow = flows[f];
            const bool exact = flow.network &&
                               flow.network->exactCompare &&
                               systemConfig.wirelessNetwork;
            if (exact) {
                // The comparison work lands on the receivers: node n
                // checks every window it receives against its local
                // history.
                for (std::size_t m = 0; m < nodes; ++m) {
                    if (m != n && counted[f][m] &&
                        flow.linPerElectrode.count() > 0.0) {
                        power.push_back(
                            {e_vars[f][m],
                             flow.linPerElectrode.count()});
                    }
                }
            } else if (flow.linPerElectrode.count() > 0.0) {
                power.push_back(
                    {e_vars[f][n], flow.linPerElectrode.count()});
            }
            if (flow.quadPerElectrode2.count() > 0.0)
                power.push_back(
                    {q_vars[f][n], flow.quadPerElectrode2.count()});
            if (flow.nvmWriteBytesPerElecPerSec > 0.0)
                nvm.push_back({e_vars[f][n],
                               flow.nvmWriteBytesPerElecPerSec});
        }
        if (!power.empty())
            model.addConstraint(std::move(power),
                                ilp::Relation::LessEq,
                                power_budget.count(),
                                "power.node" + std::to_string(n));
        if (!nvm.empty())
            model.addConstraint(std::move(nvm),
                                ilp::Relation::LessEq, nvm_write_bps,
                                "nvm.node" + std::to_string(n));
    }

    // Network budgets: for each networked flow, the serialized TDMA
    // round of its senders must fit its budget. The wireless medium is
    // shared across flows, so flows running concurrently also share
    // the window cadence; each flow's budget already reflects its
    // share of the schedule (Section 3.5 interleaves flows on the
    // fixed TDMA schedule the ILP emits).
    if (systemConfig.wirelessNetwork) {
        const net::RadioSpec &radio = *systemConfig.radio;
        for (std::size_t f = 0; f < flows.size(); ++f) {
            const FlowSpec &flow = flows[f];
            if (!flow.network)
                continue;
            const auto tx = senders(flow.network->pattern, alive);
            if (tx.empty())
                continue;
            ilp::Expr round;
            units::Millis fixed{0.0};
            for (std::size_t n : tx) {
                if (flow.network->bytesPerElectrode > 0.0)
                    round.push_back(
                        {e_vars[f][n],
                         flow.network->bytesPerElectrode *
                             wireTimePerByte(radio).count()});
                fixed += wireFixed(radio) +
                         flow.network->bytesPerNode *
                             wireTimePerByte(radio);
            }
            const units::Millis budget =
                flow.network->roundBudget - fixed;
            if (budget < 0.0_ms) {
                // Even empty packets from every sender overrun the
                // round: this flow cannot run at this node count, so
                // it is allocated nothing (the rest of the schedule
                // stands).
                for (std::size_t n : tx)
                    model.addConstraint({{e_vars[f][n], 1.0}},
                                        ilp::Relation::LessEq, 0.0,
                                        flow.name + ".starved");
                continue;
            }
            if (!round.empty())
                model.addConstraint(std::move(round),
                                    ilp::Relation::LessEq,
                                    budget.count(),
                                    flow.name + ".network");
        }
    }

    model.setObjective(std::move(objective), /*maximize=*/true);
    const ilp::Solution solution = systemConfig.integerElectrodes
                                       ? ilp::solveIlp(model)
                                       : ilp::solveLp(model);
    if (!solution.ok()) {
        result.reason = "ILP infeasible";
        return result;
    }

    // Decode the allocation.
    result.feasible = true;
    for (std::size_t f = 0; f < flows.size(); ++f) {
        FlowAllocation alloc;
        alloc.flow = flows[f].name;
        for (std::size_t n = 0; n < nodes; ++n) {
            const double e = solution.values[static_cast<std::size_t>(
                e_vars[f][n])];
            alloc.electrodesPerNode.push_back(e);
            alloc.totalElectrodes += e;
        }
        alloc.throughput = electrodesToRate(alloc.totalElectrodes);
        result.totalThroughput += alloc.throughput;
        result.weightedThroughput += priorities[f] * alloc.throughput;
        result.flows.push_back(std::move(alloc));
    }
    result.nodePower = allocationPower(systemConfig, flows,
                                       result.flows, alive,
                                       leak_total);
    for ([[maybe_unused]] const units::Milliwatts p :
         result.nodePower)
        SCALO_ENSURES(p.count() >= 0.0);
    return result;
}

namespace {

std::vector<bool>
aliveMask(std::size_t nodes, const std::vector<std::size_t> &dead)
{
    std::vector<bool> alive(nodes, true);
    for (const std::size_t n : dead) {
        SCALO_EXPECTS(n < nodes);
        alive[n] = false;
    }
    return alive;
}

units::Milliwatts
maxPower(const std::vector<units::Milliwatts> &power)
{
    units::Milliwatts peak{0.0};
    for (const units::Milliwatts p : power)
        peak = std::max(peak, p);
    return peak;
}

/**
 * Largest electrode increment at a node whose marginal dynamic power
 * a·d + b·((e+d)^2 - e^2) stays within @p headroom mW.
 */
double
powerRoom(double lin, double quad, double e, double headroom)
{
    if (headroom <= 0.0)
        return 0.0;
    if (quad <= 0.0)
        return lin > 0.0 ? headroom / lin
                         : std::numeric_limits<double>::infinity();
    const double slope = lin + 2.0 * quad * e;
    return (std::sqrt(slope * slope + 4.0 * quad * headroom) -
            slope) /
           (2.0 * quad);
}

} // namespace

Schedule
Scheduler::scheduleClusterMasked(
    const std::vector<FlowSpec> &flows,
    const std::vector<double> &priorities,
    const std::vector<bool> &alive, std::size_t cluster) const
{
    SCALO_ASSERT(flows.size() == priorities.size(),
                 "one priority per flow");
    SCALO_EXPECTS(alive.size() == systemConfig.nodes);
    Schedule result;
    const std::size_t nodes = systemConfig.nodes;
    const std::vector<std::size_t> members =
        effectivePlan.members(cluster);
    // Networked flows split their round budget between the
    // intra-cluster rounds and the backbone.
    const double intra_share =
        effectivePlan.clusterCount() > 1
            ? 1.0 - effectivePlan.backboneShare
            : 1.0;

    const units::Milliwatts leak_total =
        totalLeak(systemConfig, flows);
    const units::Milliwatts power_budget =
        systemConfig.powerCap - leak_total;
    if (power_budget <= 0.0_mW) {
        result.reason = "leakage alone exceeds the power cap";
        return result;
    }

    ilp::Model model;
    const double e_cap = systemConfig.maxElectrodesPerNode > 0.0
                             ? systemConfig.maxElectrodesPerNode
                             : 100'000.0;

    // Variables exist only for member nodes: e_vars[f][i] belongs to
    // members[i]. This is what keeps the sub-problem size independent
    // of the fabric size.
    std::vector<std::vector<int>> e_vars(flows.size());
    std::vector<std::vector<int>> q_vars(flows.size());
    std::vector<std::vector<bool>> is_sender(flows.size());
    std::vector<std::vector<std::size_t>> sub_tx(flows.size());
    ilp::Expr objective;

    for (std::size_t f = 0; f < flows.size(); ++f) {
        const FlowSpec &flow = flows[f];
        const bool exact = flow.network && flow.network->exactCompare;
        if (flow.network) {
            // Sender roles are global (the fabric-wide first survivor
            // broadcasts/aggregates); the sub-problem sees the
            // intersection with its members.
            for (const std::size_t n :
                 senders(flow.network->pattern, alive))
                if (effectivePlan.clusterOf(n) == cluster)
                    sub_tx[f].push_back(n);
        }
        is_sender[f].assign(members.size(), false);
        for (std::size_t i = 0; i < members.size(); ++i) {
            if (exact && systemConfig.wirelessNetwork) {
                for (const std::size_t n : sub_tx[f])
                    if (n == members[i])
                        is_sender[f][i] = true;
            } else {
                is_sender[f][i] = alive[members[i]];
            }
        }
        const double e_power_max = std::min(
            e_cap, flow.electrodesAtPower(systemConfig.powerCap));
        for (std::size_t i = 0; i < members.size(); ++i) {
            const int e = model.addVariable(
                flow.name + ".e" + std::to_string(members[i]), 0.0,
                is_sender[f][i] ? e_cap : 0.0,
                systemConfig.integerElectrodes);
            e_vars[f].push_back(e);
            if (is_sender[f][i])
                objective.push_back({e, priorities[f]});
            if (flow.quadPerElectrode2.count() > 0.0) {
                const int q = model.addVariable(
                    flow.name + ".q" + std::to_string(members[i]),
                    0.0, ilp::kInf, false);
                q_vars[f].push_back(q);
                addQuadraticCuts(model, e, q,
                                 std::max(1.0, e_power_max) * 1.05);
            } else {
                q_vars[f].push_back(-1);
            }
        }
        // Centralised caps are a fabric-wide resource; each cluster
        // receives its proportional share.
        if (flow.centralElectrodeCap > 0.0) {
            ilp::Expr total;
            for (int e : e_vars[f])
                total.push_back({e, 1.0});
            model.addConstraint(
                std::move(total), ilp::Relation::LessEq,
                flow.centralElectrodeCap *
                    static_cast<double>(members.size()) /
                    static_cast<double>(nodes),
                flow.name + ".central-cap");
        }
    }

    const double nvm_write_bps =
        hw::nvmSpec().writeBandwidth().count() * 1e6;
    for (std::size_t i = 0; i < members.size(); ++i) {
        if (!alive[members[i]])
            continue;
        ilp::Expr power;
        ilp::Expr nvm;
        for (std::size_t f = 0; f < flows.size(); ++f) {
            const FlowSpec &flow = flows[f];
            const bool exact = flow.network &&
                               flow.network->exactCompare &&
                               systemConfig.wirelessNetwork;
            if (exact) {
                // Hierarchical comparison: node i checks the windows
                // of its cluster peers (remote clusters arrive as
                // relay aggregates, charged to the relay).
                for (std::size_t j = 0; j < members.size(); ++j) {
                    if (j != i && is_sender[f][j] &&
                        flow.linPerElectrode.count() > 0.0) {
                        power.push_back(
                            {e_vars[f][j],
                             flow.linPerElectrode.count()});
                    }
                }
            } else if (flow.linPerElectrode.count() > 0.0) {
                power.push_back(
                    {e_vars[f][i], flow.linPerElectrode.count()});
            }
            if (flow.quadPerElectrode2.count() > 0.0)
                power.push_back(
                    {q_vars[f][i], flow.quadPerElectrode2.count()});
            if (flow.nvmWriteBytesPerElecPerSec > 0.0)
                nvm.push_back({e_vars[f][i],
                               flow.nvmWriteBytesPerElecPerSec});
        }
        if (!power.empty())
            model.addConstraint(
                std::move(power), ilp::Relation::LessEq,
                power_budget.count(),
                "power.node" + std::to_string(members[i]));
        if (!nvm.empty())
            model.addConstraint(
                std::move(nvm), ilp::Relation::LessEq, nvm_write_bps,
                "nvm.node" + std::to_string(members[i]));
    }

    // Intra-cluster network budgets: only this cluster's senders
    // serialize on its medium, against the intra share of the round.
    if (systemConfig.wirelessNetwork) {
        const net::RadioSpec &radio = *systemConfig.radio;
        for (std::size_t f = 0; f < flows.size(); ++f) {
            const FlowSpec &flow = flows[f];
            if (!flow.network || sub_tx[f].empty())
                continue;
            ilp::Expr round;
            units::Millis fixed{0.0};
            std::vector<int> tx_vars;
            for (const std::size_t n : sub_tx[f]) {
                const std::size_t i =
                    n - effectivePlan.firstOf(cluster);
                tx_vars.push_back(e_vars[f][i]);
                if (flow.network->bytesPerElectrode > 0.0)
                    round.push_back(
                        {e_vars[f][i],
                         flow.network->bytesPerElectrode *
                             wireTimePerByte(radio).count()});
                fixed += wireFixed(radio) +
                         flow.network->bytesPerNode *
                             wireTimePerByte(radio);
            }
            const units::Millis budget =
                intra_share * flow.network->roundBudget - fixed;
            if (budget < 0.0_ms) {
                for (const int e : tx_vars)
                    model.addConstraint({{e, 1.0}},
                                        ilp::Relation::LessEq, 0.0,
                                        flow.name + ".starved");
                continue;
            }
            if (!round.empty())
                model.addConstraint(std::move(round),
                                    ilp::Relation::LessEq,
                                    budget.count(),
                                    flow.name + ".network");
        }
    }

    model.setObjective(std::move(objective), /*maximize=*/true);
    const ilp::Solution solution = systemConfig.integerElectrodes
                                       ? ilp::solveIlp(model)
                                       : ilp::solveLp(model);
    if (!solution.ok()) {
        result.reason = "cluster " + std::to_string(cluster) +
                        " sub-ILP infeasible";
        return result;
    }

    // Decode into full-width allocations (zeros outside the cluster);
    // the caller merges and finalizes.
    result.feasible = true;
    for (std::size_t f = 0; f < flows.size(); ++f) {
        FlowAllocation alloc;
        alloc.flow = flows[f].name;
        alloc.electrodesPerNode.assign(nodes, 0.0);
        for (std::size_t i = 0; i < members.size(); ++i) {
            const double e = solution.values[static_cast<std::size_t>(
                e_vars[f][i])];
            alloc.electrodesPerNode[members[i]] = e;
            alloc.totalElectrodes += e;
        }
        result.flows.push_back(std::move(alloc));
    }
    return result;
}

void
Scheduler::stitchBackbone(const std::vector<FlowSpec> &flows,
                          Schedule &combined,
                          const std::vector<bool> &alive) const
{
    if (!systemConfig.wirelessNetwork ||
        effectivePlan.clusterCount() <= 1)
        return;
    const net::RadioSpec &radio = *systemConfig.radio;
    const std::size_t cluster_count = effectivePlan.clusterCount();
    for (std::size_t f = 0; f < flows.size(); ++f) {
        const FlowSpec &flow = flows[f];
        if (!flow.network)
            continue;
        FlowAllocation &alloc = combined.flows[f];
        const auto tx = senders(flow.network->pattern, alive);
        if (tx.empty())
            continue;
        // One relay transmission per cluster with senders: its fixed
        // packet cost plus the cluster's aggregated payload.
        std::vector<std::size_t> tx_per_cluster(cluster_count, 0);
        for (const std::size_t n : tx)
            ++tx_per_cluster[effectivePlan.clusterOf(n)];
        units::Millis fixed{0.0};
        double variable_ms = 0.0;
        for (std::size_t c = 0; c < cluster_count; ++c) {
            if (tx_per_cluster[c] == 0)
                continue;
            fixed += wireFixed(radio) +
                     static_cast<double>(tx_per_cluster[c]) *
                         flow.network->bytesPerNode *
                         wireTimePerByte(radio);
        }
        for (const std::size_t n : tx)
            variable_ms += alloc.electrodesPerNode[n] *
                           flow.network->bytesPerElectrode *
                           wireTimePerByte(radio).count();
        const double budget_ms =
            (effectivePlan.backboneShare *
             flow.network->roundBudget - fixed)
                .count();
        if (budget_ms <= 0.0) {
            // The relays' empty aggregates alone overrun the backbone
            // share: the flow cannot span clusters at this scale.
            for (double &e : alloc.electrodesPerNode)
                e = 0.0;
        } else if (variable_ms > budget_ms) {
            const double scale = budget_ms / variable_ms;
            for (const std::size_t n : tx)
                alloc.electrodesPerNode[n] *= scale;
        }
    }
}

void
Scheduler::finalizeSchedule(const std::vector<FlowSpec> &flows,
                            const std::vector<double> &priorities,
                            Schedule &combined,
                            const std::vector<bool> &alive) const
{
    combined.totalThroughput = units::MegabitsPerSecond{0.0};
    combined.weightedThroughput = units::MegabitsPerSecond{0.0};
    for (std::size_t f = 0; f < flows.size(); ++f) {
        FlowAllocation &alloc = combined.flows[f];
        alloc.totalElectrodes = 0.0;
        for (const double e : alloc.electrodesPerNode)
            alloc.totalElectrodes += e;
        alloc.throughput = electrodesToRate(alloc.totalElectrodes);
        combined.totalThroughput += alloc.throughput;
        combined.weightedThroughput +=
            priorities[f] * alloc.throughput;
    }
    combined.nodePower = allocationPowerClustered(
        systemConfig, flows, combined.flows, alive,
        totalLeak(systemConfig, flows), effectivePlan);
}

Schedule
Scheduler::scheduleDecomposed(
    const std::vector<FlowSpec> &flows,
    const std::vector<double> &priorities) const
{
    SCALO_ASSERT(flows.size() == priorities.size(),
                 "one priority per flow");
    if (effectivePlan.clusterCount() <= 1)
        return scheduleMonolithic(flows, priorities);

    Schedule combined;
    // Same static response-time gate as the monolithic path.
    for (const FlowSpec &flow : flows) {
        if (flow.network &&
            flow.network->roundBudget >
                flow.responseTime + units::Millis{1e-9}) {
            combined.reason = "flow '" + flow.name +
                              "' cannot meet its response time";
            return combined;
        }
    }

    const std::vector<bool> alive(systemConfig.nodes, true);
    for (std::size_t f = 0; f < flows.size(); ++f) {
        FlowAllocation alloc;
        alloc.flow = flows[f].name;
        alloc.electrodesPerNode.assign(systemConfig.nodes, 0.0);
        combined.flows.push_back(std::move(alloc));
    }
    for (std::size_t c = 0; c < effectivePlan.clusterCount(); ++c) {
        const Schedule sub =
            scheduleClusterMasked(flows, priorities, alive, c);
        if (!sub.feasible) {
            combined.flows.clear();
            combined.reason = sub.reason;
            return combined;
        }
        for (std::size_t f = 0; f < flows.size(); ++f)
            for (const std::size_t n : effectivePlan.members(c))
                combined.flows[f].electrodesPerNode[n] =
                    sub.flows[f].electrodesPerNode[n];
    }
    combined.feasible = true;
    stitchBackbone(flows, combined, alive);
    finalizeSchedule(flows, priorities, combined, alive);
    for ([[maybe_unused]] const units::Milliwatts p :
         combined.nodePower)
        SCALO_ENSURES(p.count() >= 0.0);
    return combined;
}

Schedule
Scheduler::greedyRepair(const std::vector<FlowSpec> &flows,
                        const Schedule &original,
                        const std::vector<std::size_t> &dead_nodes)
    const
{
    SCALO_EXPECTS(original.feasible);
    SCALO_EXPECTS(original.flows.size() == flows.size());
    const std::size_t nodes = systemConfig.nodes;
    const std::vector<bool> alive = aliveMask(nodes, dead_nodes);
    const units::Milliwatts leak_total =
        totalLeak(systemConfig, flows);

    Schedule repaired = original;
    repaired.reason = "greedy repair after node failure";
    repaired.totalThroughput = units::MegabitsPerSecond{0.0};
    repaired.weightedThroughput = units::MegabitsPerSecond{0.0};

    // Power headroom of the survivors under the original allocation
    // (survivors keep their own work; the dead node's share is what
    // moves).
    std::vector<double> headroom(nodes, 0.0);
    {
        const std::vector<units::Milliwatts> used = allocationPower(
            systemConfig, flows, repaired.flows, alive, leak_total);
        for (std::size_t n = 0; n < nodes; ++n)
            if (alive[n])
                headroom[n] =
                    (systemConfig.powerCap - used[n]).count();
    }

    constexpr double kEps = 1e-9;
    for (std::size_t f = 0; f < flows.size(); ++f) {
        const FlowSpec &flow = flows[f];
        FlowAllocation &alloc = repaired.flows[f];
        const bool exact = flow.network &&
                           flow.network->exactCompare &&
                           systemConfig.wirelessNetwork;
        std::vector<bool> eligible = alive;
        if (exact) {
            std::fill(eligible.begin(), eligible.end(), false);
            for (const std::size_t n :
                 senders(flow.network->pattern, alive))
                eligible[n] = true;
        }

        // Shed the dead nodes' electrodes (and any allocation a node
        // is no longer eligible for, e.g. a relocated aggregator).
        double shed = 0.0;
        for (std::size_t n = 0; n < nodes; ++n) {
            if (!eligible[n] && alloc.electrodesPerNode[n] > 0.0) {
                shed += alloc.electrodesPerNode[n];
                alloc.electrodesPerNode[n] = 0.0;
            }
        }

        // Redistribute onto survivors: each pass fills nodes up to
        // their power headroom (and the electrode ceiling); what no
        // node can absorb stays shed.
        const double lin = flow.linPerElectrode.count();
        const double quad = flow.quadPerElectrode2.count();
        for (int pass = 0; pass < 4 && shed > kEps; ++pass) {
            bool progressed = false;
            for (std::size_t n = 0; n < nodes && shed > kEps; ++n) {
                if (!eligible[n])
                    continue;
                const double e = alloc.electrodesPerNode[n];
                double room = shed;
                if (systemConfig.maxElectrodesPerNode > 0.0)
                    room = std::min(
                        room,
                        systemConfig.maxElectrodesPerNode - e);
                if (exact) {
                    // Receive-side power: every other live node pays
                    // lin per moved electrode.
                    for (std::size_t m = 0; m < nodes; ++m)
                        if (m != n && alive[m] && lin > 0.0)
                            room = std::min(room,
                                            headroom[m] / lin);
                } else {
                    room = std::min(
                        room, powerRoom(lin, quad, e, headroom[n]));
                }
                if (room <= kEps)
                    continue;
                alloc.electrodesPerNode[n] += room;
                shed -= room;
                progressed = true;
                if (exact) {
                    for (std::size_t m = 0; m < nodes; ++m)
                        if (m != n && alive[m])
                            headroom[m] -= lin * room;
                } else {
                    headroom[n] -=
                        lin * room +
                        quad * ((e + room) * (e + room) - e * e);
                }
            }
            if (!progressed)
                break;
        }

        // Network fit: the surviving senders' serialized round must
        // still meet the budget; scale the flow down uniformly when
        // it does not (fewer senders also means less fixed cost, so
        // this rarely binds).
        if (systemConfig.wirelessNetwork && flow.network) {
            const net::RadioSpec &radio = *systemConfig.radio;
            const auto tx = senders(flow.network->pattern, alive);
            units::Millis fixed{0.0};
            double variable_ms = 0.0;
            for (const std::size_t n : tx) {
                fixed += wireFixed(radio) +
                         flow.network->bytesPerNode *
                             wireTimePerByte(radio);
                variable_ms += alloc.electrodesPerNode[n] *
                               flow.network->bytesPerElectrode *
                               wireTimePerByte(radio).count();
            }
            const double budget_ms =
                (flow.network->roundBudget - fixed).count();
            if (budget_ms <= 0.0) {
                for (std::size_t n = 0; n < nodes; ++n)
                    alloc.electrodesPerNode[n] = 0.0;
            } else if (variable_ms > budget_ms) {
                const double scale = budget_ms / variable_ms;
                for (const std::size_t n : tx)
                    alloc.electrodesPerNode[n] *= scale;
            }
        }

        alloc.totalElectrodes = 0.0;
        for (const double e : alloc.electrodesPerNode)
            alloc.totalElectrodes += e;
        alloc.throughput = electrodesToRate(alloc.totalElectrodes);
        repaired.totalThroughput += alloc.throughput;
    }

    repaired.nodePower = allocationPower(
        systemConfig, flows, repaired.flows, alive, leak_total);
    return repaired;
}

void
Scheduler::greedyRepairCluster(const std::vector<FlowSpec> &flows,
                               Schedule &repaired,
                               const std::vector<bool> &alive,
                               std::size_t cluster) const
{
    const std::vector<std::size_t> members =
        effectivePlan.members(cluster);
    const double intra_share =
        effectivePlan.clusterCount() > 1
            ? 1.0 - effectivePlan.backboneShare
            : 1.0;
    const units::Milliwatts leak_total =
        totalLeak(systemConfig, flows);

    // Power headroom of the surviving members under the current
    // allocation (cluster-local exact-compare model, matching
    // allocationPowerClustered without the relay term, which the
    // greedy pass conservatively ignores).
    std::vector<double> headroom(members.size(), 0.0);
    for (std::size_t i = 0; i < members.size(); ++i) {
        const std::size_t n = members[i];
        if (!alive[n])
            continue;
        units::Milliwatts used = leak_total;
        for (std::size_t f = 0; f < flows.size(); ++f) {
            const FlowSpec &flow = flows[f];
            const bool exact = flow.network &&
                               flow.network->exactCompare &&
                               systemConfig.wirelessNetwork;
            const double e =
                repaired.flows[f].electrodesPerNode[n];
            if (exact) {
                double cluster_total = 0.0;
                for (const std::size_t m : members)
                    cluster_total +=
                        repaired.flows[f].electrodesPerNode[m];
                used += flow.linPerElectrode * (cluster_total - e);
            } else {
                used += flow.linPerElectrode * e +
                        flow.quadPerElectrode2 * e * e;
            }
        }
        headroom[i] = (systemConfig.powerCap - used).count();
    }

    constexpr double kEps = 1e-9;
    for (std::size_t f = 0; f < flows.size(); ++f) {
        const FlowSpec &flow = flows[f];
        FlowAllocation &alloc = repaired.flows[f];
        const bool exact = flow.network &&
                           flow.network->exactCompare &&
                           systemConfig.wirelessNetwork;
        std::vector<std::size_t> sub_tx;
        if (flow.network) {
            for (const std::size_t n :
                 senders(flow.network->pattern, alive))
                if (effectivePlan.clusterOf(n) == cluster)
                    sub_tx.push_back(n);
        }
        std::vector<bool> eligible(members.size(), false);
        for (std::size_t i = 0; i < members.size(); ++i) {
            if (exact) {
                for (const std::size_t n : sub_tx)
                    if (n == members[i])
                        eligible[i] = true;
            } else {
                eligible[i] = alive[members[i]];
            }
        }

        double shed = 0.0;
        for (std::size_t i = 0; i < members.size(); ++i) {
            double &e = alloc.electrodesPerNode[members[i]];
            if (!eligible[i] && e > 0.0) {
                shed += e;
                e = 0.0;
            }
        }

        const double lin = flow.linPerElectrode.count();
        const double quad = flow.quadPerElectrode2.count();
        for (int pass = 0; pass < 4 && shed > kEps; ++pass) {
            bool progressed = false;
            for (std::size_t i = 0;
                 i < members.size() && shed > kEps; ++i) {
                if (!eligible[i])
                    continue;
                const double e =
                    alloc.electrodesPerNode[members[i]];
                double room = shed;
                if (systemConfig.maxElectrodesPerNode > 0.0)
                    room = std::min(
                        room,
                        systemConfig.maxElectrodesPerNode - e);
                if (exact) {
                    for (std::size_t j = 0; j < members.size(); ++j)
                        if (j != i && alive[members[j]] &&
                            lin > 0.0)
                            room = std::min(room,
                                            headroom[j] / lin);
                } else {
                    room = std::min(
                        room, powerRoom(lin, quad, e, headroom[i]));
                }
                if (room <= kEps)
                    continue;
                alloc.electrodesPerNode[members[i]] += room;
                shed -= room;
                progressed = true;
                if (exact) {
                    for (std::size_t j = 0; j < members.size(); ++j)
                        if (j != i && alive[members[j]])
                            headroom[j] -= lin * room;
                } else {
                    headroom[i] -=
                        lin * room +
                        quad * ((e + room) * (e + room) - e * e);
                }
            }
            if (!progressed)
                break;
        }

        // Intra-cluster network fit against the intra share of the
        // round budget.
        if (systemConfig.wirelessNetwork && flow.network &&
            !sub_tx.empty()) {
            const net::RadioSpec &radio = *systemConfig.radio;
            units::Millis fixed{0.0};
            double variable_ms = 0.0;
            for (const std::size_t n : sub_tx) {
                fixed += wireFixed(radio) +
                         flow.network->bytesPerNode *
                             wireTimePerByte(radio);
                variable_ms += alloc.electrodesPerNode[n] *
                               flow.network->bytesPerElectrode *
                               wireTimePerByte(radio).count();
            }
            const double budget_ms =
                (intra_share * flow.network->roundBudget - fixed)
                    .count();
            if (budget_ms <= 0.0) {
                for (const std::size_t n : members)
                    alloc.electrodesPerNode[n] = 0.0;
            } else if (variable_ms > budget_ms) {
                const double scale = budget_ms / variable_ms;
                for (const std::size_t n : sub_tx)
                    alloc.electrodesPerNode[n] *= scale;
            }
        }
    }
}

namespace {

/**
 * Cap a re-solved cluster's per-flow totals at the pre-death totals
 * of @p original. A fresh sub-solve does not know how the backbone
 * stitch had scaled the flow fabric-wide; clamping keeps relay
 * payloads monotonically non-increasing, which is what lets a
 * cluster reschedule skip the (fabric-wide) re-stitch.
 */
void
clampClusterToOriginal(const Schedule &original, Schedule &repaired,
                       const std::vector<std::size_t> &members)
{
    for (std::size_t f = 0; f < repaired.flows.size(); ++f) {
        double before = 0.0;
        double after = 0.0;
        for (const std::size_t n : members) {
            before += original.flows[f].electrodesPerNode[n];
            after += repaired.flows[f].electrodesPerNode[n];
        }
        if (after > before + 1e-9 && after > 0.0) {
            const double scale = before / after;
            for (const std::size_t n : members)
                repaired.flows[f].electrodesPerNode[n] *= scale;
        }
    }
}

} // namespace

RescheduleResult
Scheduler::rescheduleCluster(
    const std::vector<FlowSpec> &flows,
    const std::vector<double> &priorities,
    const Schedule &original,
    const std::vector<std::size_t> &dead_nodes,
    std::size_t cluster) const
{
    SCALO_ASSERT(flows.size() == priorities.size(),
                 "one priority per flow");
    SCALO_EXPECTS(original.feasible);
    SCALO_EXPECTS(cluster < effectivePlan.clusterCount());
    const std::size_t nodes = systemConfig.nodes;

    RescheduleResult result;
    result.deadNodes = dead_nodes;
    std::sort(result.deadNodes.begin(), result.deadNodes.end());
    result.deadNodes.erase(std::unique(result.deadNodes.begin(),
                                       result.deadNodes.end()),
                           result.deadNodes.end());
    for ([[maybe_unused]] const std::size_t n : result.deadNodes)
        SCALO_EXPECTS(effectivePlan.clusterOf(n) == cluster);
    result.resolvedClusters = {cluster};
    result.throughputBefore = original.totalThroughput;
    result.maxNodePowerBefore = maxPower(original.nodePower);

    const std::vector<bool> alive =
        aliveMask(nodes, result.deadNodes);
    const std::vector<std::size_t> members =
        effectivePlan.members(cluster);

    Schedule repaired = original;
    repaired.reason = "cluster " + std::to_string(cluster) +
                      " rescheduled after node failure";
    const Schedule sub =
        scheduleClusterMasked(flows, priorities, alive, cluster);
    if (sub.feasible) {
        result.viaIlp = true;
        for (std::size_t f = 0; f < flows.size(); ++f)
            for (const std::size_t n : members)
                repaired.flows[f].electrodesPerNode[n] =
                    sub.flows[f].electrodesPerNode[n];
        clampClusterToOriginal(original, repaired, members);
    } else {
        greedyRepairCluster(flows, repaired, alive, cluster);
    }
    finalizeSchedule(flows, priorities, repaired, alive);

    result.throughputAfter = repaired.totalThroughput;
    result.maxNodePowerAfter = maxPower(repaired.nodePower);
    result.schedule = std::move(repaired);
    for ([[maybe_unused]] const std::size_t n : result.deadNodes)
        for ([[maybe_unused]] const FlowAllocation &alloc :
             result.schedule.flows)
            SCALO_ENSURES(alloc.electrodesPerNode[n] == 0.0);
    return result;
}

RescheduleResult
Scheduler::restitchBackbone(
    const std::vector<FlowSpec> &flows,
    const std::vector<double> &priorities,
    const Schedule &original,
    const std::vector<std::size_t> &dead_nodes,
    const std::vector<std::size_t> &unreachable_clusters) const
{
    SCALO_ASSERT(flows.size() == priorities.size(),
                 "one priority per flow");
    SCALO_EXPECTS(original.feasible);
    const std::size_t nodes = systemConfig.nodes;

    RescheduleResult result;
    result.deadNodes = dead_nodes;
    std::sort(result.deadNodes.begin(), result.deadNodes.end());
    result.deadNodes.erase(std::unique(result.deadNodes.begin(),
                                       result.deadNodes.end()),
                           result.deadNodes.end());
    result.throughputBefore = original.totalThroughput;
    result.maxNodePowerBefore = maxPower(original.nodePower);

    // A heal with nothing dead and nothing unreachable restores the
    // boot schedule verbatim. Restitching it instead would not be a
    // no-op: a monolithic boot schedule never went through
    // stitchBackbone, so re-stitching would scale it down.
    if (result.deadNodes.empty() && unreachable_clusters.empty()) {
        result.schedule = original;
        result.viaIlp = true;
        result.throughputAfter = original.totalThroughput;
        result.maxNodePowerAfter = result.maxNodePowerBefore;
        return result;
    }

    const std::vector<bool> alive =
        aliveMask(nodes, result.deadNodes);

    // Clusters owning dead nodes get fresh *unclamped* sub-solves,
    // reclaiming the capacity the mid-quantum clamp conservatively
    // gave up; untouched clusters keep their boot allocation.
    std::vector<std::size_t> affected;
    for (const std::size_t n : result.deadNodes)
        affected.push_back(effectivePlan.clusterOf(n));
    std::sort(affected.begin(), affected.end());
    affected.erase(std::unique(affected.begin(), affected.end()),
                   affected.end());
    result.resolvedClusters = affected;

    Schedule repaired = original;
    repaired.reason = "backbone re-stitch";
    result.viaIlp = true;
    for (const std::size_t c : affected) {
        const Schedule sub =
            scheduleClusterMasked(flows, priorities, alive, c);
        const std::vector<std::size_t> members =
            effectivePlan.members(c);
        if (sub.feasible) {
            for (std::size_t f = 0; f < flows.size(); ++f)
                for (const std::size_t n : members)
                    repaired.flows[f].electrodesPerNode[n] =
                        sub.flows[f].electrodesPerNode[n];
        } else {
            result.viaIlp = false;
            greedyRepairCluster(flows, repaired, alive, c);
        }
    }

    // The stitch sees only reachable senders: a partitioned cluster
    // keeps its intra-cluster allocation running but contributes no
    // backbone traffic until it heals.
    std::vector<bool> reachable = alive;
    for (const std::size_t c : unreachable_clusters) {
        SCALO_EXPECTS(c < effectivePlan.clusterCount());
        for (const std::size_t n : effectivePlan.members(c))
            reachable[n] = false;
    }
    stitchBackbone(flows, repaired, reachable);
    finalizeSchedule(flows, priorities, repaired, alive);

    result.throughputAfter = repaired.totalThroughput;
    result.maxNodePowerAfter = maxPower(repaired.nodePower);
    result.schedule = std::move(repaired);
    for ([[maybe_unused]] const std::size_t n : result.deadNodes)
        for ([[maybe_unused]] const FlowAllocation &alloc :
             result.schedule.flows)
            SCALO_ENSURES(alloc.electrodesPerNode[n] == 0.0);
    return result;
}

RescheduleResult
Scheduler::reschedule(const std::vector<FlowSpec> &flows,
                      const std::vector<double> &priorities,
                      const Schedule &original,
                      const std::vector<std::size_t> &dead_nodes)
    const
{
    SCALO_ASSERT(flows.size() == priorities.size(),
                 "one priority per flow");
    SCALO_EXPECTS(original.feasible);
    const std::size_t nodes = systemConfig.nodes;

    RescheduleResult result;
    result.deadNodes = dead_nodes;
    std::sort(result.deadNodes.begin(), result.deadNodes.end());
    result.deadNodes.erase(std::unique(result.deadNodes.begin(),
                                       result.deadNodes.end()),
                           result.deadNodes.end());
    result.throughputBefore = original.totalThroughput;
    result.maxNodePowerBefore = maxPower(original.nodePower);

    const std::vector<bool> alive =
        aliveMask(nodes, result.deadNodes);
    const bool any_alive =
        std::any_of(alive.begin(), alive.end(),
                    [](bool a) { return a; });

    Schedule repaired;
    if (decomposed()) {
        // Incremental path: only clusters containing dead nodes are
        // re-solved; everything else keeps its allocation.
        std::vector<std::size_t> affected;
        for (const std::size_t n : result.deadNodes)
            affected.push_back(effectivePlan.clusterOf(n));
        std::sort(affected.begin(), affected.end());
        affected.erase(
            std::unique(affected.begin(), affected.end()),
            affected.end());
        result.resolvedClusters = affected;

        repaired = original;
        repaired.reason = "decomposed reschedule";
        result.viaIlp = true;
        for (const std::size_t c : affected) {
            const Schedule sub =
                scheduleClusterMasked(flows, priorities, alive, c);
            const std::vector<std::size_t> members =
                effectivePlan.members(c);
            if (sub.feasible) {
                for (std::size_t f = 0; f < flows.size(); ++f)
                    for (const std::size_t n : members)
                        repaired.flows[f].electrodesPerNode[n] =
                            sub.flows[f].electrodesPerNode[n];
                clampClusterToOriginal(original, repaired, members);
            } else {
                result.viaIlp = false;
                greedyRepairCluster(flows, repaired, alive, c);
            }
        }
        stitchBackbone(flows, repaired, alive);
        finalizeSchedule(flows, priorities, repaired, alive);
    } else {
        for (std::size_t c = 0;
             c < effectivePlan.clusterCount(); ++c)
            result.resolvedClusters.push_back(c);
        if (any_alive)
            repaired = scheduleMasked(flows, priorities, alive);
        if (repaired.feasible) {
            result.viaIlp = true;
        } else {
            repaired =
                greedyRepair(flows, original, result.deadNodes);
            // The greedy path has no priorities in scope; weight
            // here.
            repaired.weightedThroughput =
                units::MegabitsPerSecond{0.0};
            for (std::size_t f = 0; f < flows.size(); ++f)
                repaired.weightedThroughput +=
                    priorities[f] * repaired.flows[f].throughput;
        }
    }
    result.throughputAfter = repaired.totalThroughput;
    result.maxNodePowerAfter = maxPower(repaired.nodePower);
    result.schedule = std::move(repaired);

    // Degradation never assigns work to a dead node.
    for ([[maybe_unused]] const std::size_t n : result.deadNodes)
        for ([[maybe_unused]] const FlowAllocation &alloc :
             result.schedule.flows)
            SCALO_ENSURES(alloc.electrodesPerNode[n] == 0.0);
    return result;
}

units::MegabitsPerSecond
Scheduler::maxAggregateThroughput(const FlowSpec &flow) const
{
    const Schedule s = schedule({flow}, {1.0});
    return s.feasible ? s.totalThroughput
                      : units::MegabitsPerSecond{0.0};
}

} // namespace scalo::sched
