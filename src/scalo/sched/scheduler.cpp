#include "scalo/sched/scheduler.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "scalo/hw/nvm.hpp"
#include "scalo/ilp/solver.hpp"
#include "scalo/net/packet.hpp"
#include "scalo/util/contracts.hpp"
#include "scalo/util/logging.hpp"

namespace scalo::sched {

using namespace units::literals;

namespace {

/** TDMA slot guard time (radio turnaround), matching net::TdmaSchedule. */
constexpr units::Millis kGuard = units::Micros{20.0};

/**
 * Linearised wire time for one payload byte: per-packet overhead
 * amortised as a rate factor. (The ILP needs per-byte coefficients,
 * so this is where a time deliberately leaves the unit system as ms.)
 */
units::Millis
wireTimePerByte(const net::RadioSpec &radio)
{
    const double overhead_factor =
        1.0 + static_cast<double>(net::kPacketOverheadBytes) /
                  static_cast<double>(net::kMaxPayloadBytes);
    return overhead_factor * (1.0_B / radio.dataRate);
}

units::Millis
wireFixed(const net::RadioSpec &radio)
{
    return units::Bytes{static_cast<double>(
               net::kPacketOverheadBytes)} /
               radio.dataRate +
           kGuard;
}

/**
 * Indices of live nodes that transmit for a flow's pattern. With
 * every node alive this reproduces the canonical roles (node 0
 * broadcasts / aggregates); after failures the first surviving node
 * inherits the broadcaster/aggregator role.
 */
std::vector<std::size_t>
senders(net::Pattern pattern, const std::vector<bool> &alive)
{
    std::vector<std::size_t> live;
    for (std::size_t n = 0; n < alive.size(); ++n)
        if (alive[n])
            live.push_back(n);
    std::vector<std::size_t> out;
    switch (pattern) {
      case net::Pattern::OneToAll:
        if (!live.empty())
            out.push_back(live.front());
        break;
      case net::Pattern::AllToAll:
        out = live;
        break;
      case net::Pattern::AllToOne:
        for (std::size_t i = 1; i < live.size(); ++i)
            out.push_back(live[i]);
        break;
    }
    return out;
}

/** Leakage charged to every live node for @p flows (radio once). */
units::Milliwatts
totalLeak(const SystemConfig &config,
          const std::vector<FlowSpec> &flows)
{
    units::Milliwatts radio_leak{0.0};
    std::size_t networked = 0;
    for (const FlowSpec &flow : flows)
        if (flow.network)
            ++networked;
    if (config.wirelessNetwork && networked > 0)
        radio_leak = config.radio->power;

    units::Milliwatts leak_total{0.0};
    for (const FlowSpec &flow : flows) {
        units::Milliwatts leak = flow.leak;
        if (flow.network) {
            // FlowSpec folds the default radio into its leakage;
            // replace it with the configured radio, charged once.
            leak -= net::defaultRadio().power;
        }
        leak_total += leak;
    }
    return leak_total + radio_leak;
}

/**
 * Per-node power of an allocation: leakage on live nodes plus each
 * flow's linear/quadratic dynamic terms (receive-side for
 * exact-compare flows). Dead nodes are off and draw nothing.
 */
std::vector<units::Milliwatts>
allocationPower(const SystemConfig &config,
                const std::vector<FlowSpec> &flows,
                const std::vector<FlowAllocation> &allocs,
                const std::vector<bool> &alive,
                units::Milliwatts leak_total)
{
    std::vector<units::Milliwatts> power(config.nodes,
                                         units::Milliwatts{0.0});
    for (std::size_t n = 0; n < config.nodes; ++n)
        if (alive[n])
            power[n] = leak_total;
    for (std::size_t f = 0; f < flows.size(); ++f) {
        const bool exact = flows[f].network &&
                           flows[f].network->exactCompare &&
                           config.wirelessNetwork;
        for (std::size_t n = 0; n < config.nodes; ++n) {
            if (!alive[n])
                continue;
            const double e = allocs[f].electrodesPerNode[n];
            if (exact) {
                // Receive-side comparison power.
                power[n] += flows[f].linPerElectrode *
                            (allocs[f].totalElectrodes - e);
            } else {
                power[n] += flows[f].linPerElectrode * e +
                            flows[f].quadPerElectrode2 * e * e;
            }
        }
    }
    return power;
}

/**
 * Add tangent cuts approximating q >= e^2 from below (exact at the
 * grid points; the maximizing LP sits on the hull, so the error is
 * bounded by the grid pitch squared over four).
 */
void
addQuadraticCuts(ilp::Model &model, int e_var, int q_var, double e_max)
{
    constexpr int kCuts = 32;
    for (int i = 0; i <= kCuts; ++i) {
        const double e0 =
            e_max * static_cast<double>(i) / static_cast<double>(kCuts);
        // q >= 2 e0 e - e0^2.
        model.addConstraint({{q_var, 1.0}, {e_var, -2.0 * e0}},
                            ilp::Relation::GreaterEq, -e0 * e0);
    }
}

} // namespace

Scheduler::Scheduler(SystemConfig config) : systemConfig(config)
{
    SCALO_ASSERT(systemConfig.nodes >= 1, "need at least one node");
    SCALO_ASSERT(systemConfig.powerCap > 0.0_mW,
                 "power cap must be > 0");
}

Schedule
Scheduler::schedule(const std::vector<FlowSpec> &flows,
                    const std::vector<double> &priorities) const
{
    return scheduleMasked(
        flows, priorities,
        std::vector<bool>(systemConfig.nodes, true));
}

Schedule
Scheduler::scheduleMasked(const std::vector<FlowSpec> &flows,
                          const std::vector<double> &priorities,
                          const std::vector<bool> &alive) const
{
    SCALO_ASSERT(flows.size() == priorities.size(),
                 "one priority per flow");
    SCALO_EXPECTS(alive.size() == systemConfig.nodes);
    Schedule result;
    const std::size_t nodes = systemConfig.nodes;

    // Static response-time feasibility: the PE chains are pipelined
    // at the window cadence (each PE sits in its own clock domain and
    // overlaps with its neighbours), so the binding serial component
    // is the network exchange round, which must fit the response-time
    // target.
    for (const FlowSpec &flow : flows) {
        if (flow.network &&
            flow.network->roundBudget >
                flow.responseTime + units::Millis{1e-9}) {
            result.reason = "flow '" + flow.name +
                            "' cannot meet its response time";
            return result;
        }
    }

    // Per-node leakage: each flow pays its own leakage, but the
    // intra-SCALO radio is one physical device, charged once.
    const units::Milliwatts leak_total =
        totalLeak(systemConfig, flows);
    const units::Milliwatts power_budget =
        systemConfig.powerCap - leak_total;
    if (power_budget <= 0.0_mW) {
        result.reason = "leakage alone exceeds the power cap";
        return result;
    }

    // Build the ILP.
    ilp::Model model;
    const double e_cap = systemConfig.maxElectrodesPerNode > 0.0
                             ? systemConfig.maxElectrodesPerNode
                             : 100'000.0;

    std::vector<std::vector<int>> e_vars(flows.size());
    std::vector<std::vector<int>> q_vars(flows.size());
    std::vector<std::vector<bool>> counted(flows.size());
    ilp::Expr objective;

    for (std::size_t f = 0; f < flows.size(); ++f) {
        const FlowSpec &flow = flows[f];
        // Exact-compare flows only give credit (and allocate
        // electrodes) to the transmitting nodes.
        const bool exact = flow.network && flow.network->exactCompare;
        // Dead nodes process nothing for any flow.
        std::vector<bool> is_sender = alive;
        if (exact && systemConfig.wirelessNetwork) {
            std::fill(is_sender.begin(), is_sender.end(), false);
            for (std::size_t n :
                 senders(flow.network->pattern, alive)) {
                is_sender[n] = true;
            }
        }
        counted[f] = is_sender;
        // Upper bound from power alone, used to place tangent cuts.
        const double e_power_max = std::min(
            e_cap, flow.electrodesAtPower(systemConfig.powerCap));
        for (std::size_t n = 0; n < nodes; ++n) {
            const int e = model.addVariable(
                flow.name + ".e" + std::to_string(n), 0.0,
                is_sender[n] ? e_cap : 0.0,
                systemConfig.integerElectrodes);
            e_vars[f].push_back(e);
            if (is_sender[n])
                objective.push_back({e, priorities[f]});
            if (flow.quadPerElectrode2.count() > 0.0) {
                const int q = model.addVariable(
                    flow.name + ".q" + std::to_string(n), 0.0,
                    ilp::kInf, false);
                q_vars[f].push_back(q);
                addQuadraticCuts(model, e, q,
                                 std::max(1.0, e_power_max) * 1.05);
            } else {
                q_vars[f].push_back(-1);
            }
        }
        // Centralised caps (e.g. the Kalman aggregator's NVM).
        if (flow.centralElectrodeCap > 0.0) {
            ilp::Expr total;
            for (int e : e_vars[f])
                total.push_back({e, 1.0});
            model.addConstraint(std::move(total),
                                ilp::Relation::LessEq,
                                flow.centralElectrodeCap,
                                flow.name + ".central-cap");
        }
    }

    // Per-node power and NVM write bandwidth. The ILP's coefficient
    // matrix is unitless, so rates and powers enter as their counts
    // (bytes/s and mW) - the one sanctioned escape hatch.
    const double nvm_write_bps =
        hw::nvmSpec().writeBandwidth().count() * 1e6;
    for (std::size_t n = 0; n < nodes; ++n) {
        // A dead node draws no power and writes nothing; leaving its
        // receive-side constraints in place would wrongly bound the
        // survivors.
        if (!alive[n])
            continue;
        ilp::Expr power;
        ilp::Expr nvm;
        for (std::size_t f = 0; f < flows.size(); ++f) {
            const FlowSpec &flow = flows[f];
            const bool exact = flow.network &&
                               flow.network->exactCompare &&
                               systemConfig.wirelessNetwork;
            if (exact) {
                // The comparison work lands on the receivers: node n
                // checks every window it receives against its local
                // history.
                for (std::size_t m = 0; m < nodes; ++m) {
                    if (m != n && counted[f][m] &&
                        flow.linPerElectrode.count() > 0.0) {
                        power.push_back(
                            {e_vars[f][m],
                             flow.linPerElectrode.count()});
                    }
                }
            } else if (flow.linPerElectrode.count() > 0.0) {
                power.push_back(
                    {e_vars[f][n], flow.linPerElectrode.count()});
            }
            if (flow.quadPerElectrode2.count() > 0.0)
                power.push_back(
                    {q_vars[f][n], flow.quadPerElectrode2.count()});
            if (flow.nvmWriteBytesPerElecPerSec > 0.0)
                nvm.push_back({e_vars[f][n],
                               flow.nvmWriteBytesPerElecPerSec});
        }
        if (!power.empty())
            model.addConstraint(std::move(power),
                                ilp::Relation::LessEq,
                                power_budget.count(),
                                "power.node" + std::to_string(n));
        if (!nvm.empty())
            model.addConstraint(std::move(nvm),
                                ilp::Relation::LessEq, nvm_write_bps,
                                "nvm.node" + std::to_string(n));
    }

    // Network budgets: for each networked flow, the serialized TDMA
    // round of its senders must fit its budget. The wireless medium is
    // shared across flows, so flows running concurrently also share
    // the window cadence; each flow's budget already reflects its
    // share of the schedule (Section 3.5 interleaves flows on the
    // fixed TDMA schedule the ILP emits).
    if (systemConfig.wirelessNetwork) {
        const net::RadioSpec &radio = *systemConfig.radio;
        for (std::size_t f = 0; f < flows.size(); ++f) {
            const FlowSpec &flow = flows[f];
            if (!flow.network)
                continue;
            const auto tx = senders(flow.network->pattern, alive);
            if (tx.empty())
                continue;
            ilp::Expr round;
            units::Millis fixed{0.0};
            for (std::size_t n : tx) {
                if (flow.network->bytesPerElectrode > 0.0)
                    round.push_back(
                        {e_vars[f][n],
                         flow.network->bytesPerElectrode *
                             wireTimePerByte(radio).count()});
                fixed += wireFixed(radio) +
                         flow.network->bytesPerNode *
                             wireTimePerByte(radio);
            }
            const units::Millis budget =
                flow.network->roundBudget - fixed;
            if (budget < 0.0_ms) {
                // Even empty packets from every sender overrun the
                // round: this flow cannot run at this node count, so
                // it is allocated nothing (the rest of the schedule
                // stands).
                for (std::size_t n : tx)
                    model.addConstraint({{e_vars[f][n], 1.0}},
                                        ilp::Relation::LessEq, 0.0,
                                        flow.name + ".starved");
                continue;
            }
            if (!round.empty())
                model.addConstraint(std::move(round),
                                    ilp::Relation::LessEq,
                                    budget.count(),
                                    flow.name + ".network");
        }
    }

    model.setObjective(std::move(objective), /*maximize=*/true);
    const ilp::Solution solution = systemConfig.integerElectrodes
                                       ? ilp::solveIlp(model)
                                       : ilp::solveLp(model);
    if (!solution.ok()) {
        result.reason = "ILP infeasible";
        return result;
    }

    // Decode the allocation.
    result.feasible = true;
    for (std::size_t f = 0; f < flows.size(); ++f) {
        FlowAllocation alloc;
        alloc.flow = flows[f].name;
        for (std::size_t n = 0; n < nodes; ++n) {
            const double e = solution.values[static_cast<std::size_t>(
                e_vars[f][n])];
            alloc.electrodesPerNode.push_back(e);
            alloc.totalElectrodes += e;
        }
        alloc.throughput = electrodesToRate(alloc.totalElectrodes);
        result.totalThroughput += alloc.throughput;
        result.weightedThroughput += priorities[f] * alloc.throughput;
        result.flows.push_back(std::move(alloc));
    }
    result.nodePower = allocationPower(systemConfig, flows,
                                       result.flows, alive,
                                       leak_total);
    for ([[maybe_unused]] const units::Milliwatts p :
         result.nodePower)
        SCALO_ENSURES(p.count() >= 0.0);
    return result;
}

namespace {

std::vector<bool>
aliveMask(std::size_t nodes, const std::vector<std::size_t> &dead)
{
    std::vector<bool> alive(nodes, true);
    for (const std::size_t n : dead) {
        SCALO_EXPECTS(n < nodes);
        alive[n] = false;
    }
    return alive;
}

units::Milliwatts
maxPower(const std::vector<units::Milliwatts> &power)
{
    units::Milliwatts peak{0.0};
    for (const units::Milliwatts p : power)
        peak = std::max(peak, p);
    return peak;
}

/**
 * Largest electrode increment at a node whose marginal dynamic power
 * a·d + b·((e+d)^2 - e^2) stays within @p headroom mW.
 */
double
powerRoom(double lin, double quad, double e, double headroom)
{
    if (headroom <= 0.0)
        return 0.0;
    if (quad <= 0.0)
        return lin > 0.0 ? headroom / lin
                         : std::numeric_limits<double>::infinity();
    const double slope = lin + 2.0 * quad * e;
    return (std::sqrt(slope * slope + 4.0 * quad * headroom) -
            slope) /
           (2.0 * quad);
}

} // namespace

Schedule
Scheduler::greedyRepair(const std::vector<FlowSpec> &flows,
                        const Schedule &original,
                        const std::vector<std::size_t> &dead_nodes)
    const
{
    SCALO_EXPECTS(original.feasible);
    SCALO_EXPECTS(original.flows.size() == flows.size());
    const std::size_t nodes = systemConfig.nodes;
    const std::vector<bool> alive = aliveMask(nodes, dead_nodes);
    const units::Milliwatts leak_total =
        totalLeak(systemConfig, flows);

    Schedule repaired = original;
    repaired.reason = "greedy repair after node failure";
    repaired.totalThroughput = units::MegabitsPerSecond{0.0};
    repaired.weightedThroughput = units::MegabitsPerSecond{0.0};

    // Power headroom of the survivors under the original allocation
    // (survivors keep their own work; the dead node's share is what
    // moves).
    std::vector<double> headroom(nodes, 0.0);
    {
        const std::vector<units::Milliwatts> used = allocationPower(
            systemConfig, flows, repaired.flows, alive, leak_total);
        for (std::size_t n = 0; n < nodes; ++n)
            if (alive[n])
                headroom[n] =
                    (systemConfig.powerCap - used[n]).count();
    }

    constexpr double kEps = 1e-9;
    for (std::size_t f = 0; f < flows.size(); ++f) {
        const FlowSpec &flow = flows[f];
        FlowAllocation &alloc = repaired.flows[f];
        const bool exact = flow.network &&
                           flow.network->exactCompare &&
                           systemConfig.wirelessNetwork;
        std::vector<bool> eligible = alive;
        if (exact) {
            std::fill(eligible.begin(), eligible.end(), false);
            for (const std::size_t n :
                 senders(flow.network->pattern, alive))
                eligible[n] = true;
        }

        // Shed the dead nodes' electrodes (and any allocation a node
        // is no longer eligible for, e.g. a relocated aggregator).
        double shed = 0.0;
        for (std::size_t n = 0; n < nodes; ++n) {
            if (!eligible[n] && alloc.electrodesPerNode[n] > 0.0) {
                shed += alloc.electrodesPerNode[n];
                alloc.electrodesPerNode[n] = 0.0;
            }
        }

        // Redistribute onto survivors: each pass fills nodes up to
        // their power headroom (and the electrode ceiling); what no
        // node can absorb stays shed.
        const double lin = flow.linPerElectrode.count();
        const double quad = flow.quadPerElectrode2.count();
        for (int pass = 0; pass < 4 && shed > kEps; ++pass) {
            bool progressed = false;
            for (std::size_t n = 0; n < nodes && shed > kEps; ++n) {
                if (!eligible[n])
                    continue;
                const double e = alloc.electrodesPerNode[n];
                double room = shed;
                if (systemConfig.maxElectrodesPerNode > 0.0)
                    room = std::min(
                        room,
                        systemConfig.maxElectrodesPerNode - e);
                if (exact) {
                    // Receive-side power: every other live node pays
                    // lin per moved electrode.
                    for (std::size_t m = 0; m < nodes; ++m)
                        if (m != n && alive[m] && lin > 0.0)
                            room = std::min(room,
                                            headroom[m] / lin);
                } else {
                    room = std::min(
                        room, powerRoom(lin, quad, e, headroom[n]));
                }
                if (room <= kEps)
                    continue;
                alloc.electrodesPerNode[n] += room;
                shed -= room;
                progressed = true;
                if (exact) {
                    for (std::size_t m = 0; m < nodes; ++m)
                        if (m != n && alive[m])
                            headroom[m] -= lin * room;
                } else {
                    headroom[n] -=
                        lin * room +
                        quad * ((e + room) * (e + room) - e * e);
                }
            }
            if (!progressed)
                break;
        }

        // Network fit: the surviving senders' serialized round must
        // still meet the budget; scale the flow down uniformly when
        // it does not (fewer senders also means less fixed cost, so
        // this rarely binds).
        if (systemConfig.wirelessNetwork && flow.network) {
            const net::RadioSpec &radio = *systemConfig.radio;
            const auto tx = senders(flow.network->pattern, alive);
            units::Millis fixed{0.0};
            double variable_ms = 0.0;
            for (const std::size_t n : tx) {
                fixed += wireFixed(radio) +
                         flow.network->bytesPerNode *
                             wireTimePerByte(radio);
                variable_ms += alloc.electrodesPerNode[n] *
                               flow.network->bytesPerElectrode *
                               wireTimePerByte(radio).count();
            }
            const double budget_ms =
                (flow.network->roundBudget - fixed).count();
            if (budget_ms <= 0.0) {
                for (std::size_t n = 0; n < nodes; ++n)
                    alloc.electrodesPerNode[n] = 0.0;
            } else if (variable_ms > budget_ms) {
                const double scale = budget_ms / variable_ms;
                for (const std::size_t n : tx)
                    alloc.electrodesPerNode[n] *= scale;
            }
        }

        alloc.totalElectrodes = 0.0;
        for (const double e : alloc.electrodesPerNode)
            alloc.totalElectrodes += e;
        alloc.throughput = electrodesToRate(alloc.totalElectrodes);
        repaired.totalThroughput += alloc.throughput;
    }

    repaired.nodePower = allocationPower(
        systemConfig, flows, repaired.flows, alive, leak_total);
    return repaired;
}

RescheduleResult
Scheduler::reschedule(const std::vector<FlowSpec> &flows,
                      const std::vector<double> &priorities,
                      const Schedule &original,
                      const std::vector<std::size_t> &dead_nodes)
    const
{
    SCALO_ASSERT(flows.size() == priorities.size(),
                 "one priority per flow");
    SCALO_EXPECTS(original.feasible);
    const std::size_t nodes = systemConfig.nodes;

    RescheduleResult result;
    result.deadNodes = dead_nodes;
    std::sort(result.deadNodes.begin(), result.deadNodes.end());
    result.deadNodes.erase(std::unique(result.deadNodes.begin(),
                                       result.deadNodes.end()),
                           result.deadNodes.end());
    result.throughputBefore = original.totalThroughput;
    result.maxNodePowerBefore = maxPower(original.nodePower);

    const std::vector<bool> alive =
        aliveMask(nodes, result.deadNodes);
    const bool any_alive =
        std::any_of(alive.begin(), alive.end(),
                    [](bool a) { return a; });

    Schedule repaired;
    if (any_alive)
        repaired = scheduleMasked(flows, priorities, alive);
    if (repaired.feasible) {
        result.viaIlp = true;
    } else {
        repaired = greedyRepair(flows, original, result.deadNodes);
        // The greedy path has no priorities in scope; weight here.
        repaired.weightedThroughput = units::MegabitsPerSecond{0.0};
        for (std::size_t f = 0; f < flows.size(); ++f)
            repaired.weightedThroughput +=
                priorities[f] * repaired.flows[f].throughput;
    }
    result.throughputAfter = repaired.totalThroughput;
    result.maxNodePowerAfter = maxPower(repaired.nodePower);
    result.schedule = std::move(repaired);

    // Degradation never assigns work to a dead node.
    for ([[maybe_unused]] const std::size_t n : result.deadNodes)
        for ([[maybe_unused]] const FlowAllocation &alloc :
             result.schedule.flows)
            SCALO_ENSURES(alloc.electrodesPerNode[n] == 0.0);
    return result;
}

units::MegabitsPerSecond
Scheduler::maxAggregateThroughput(const FlowSpec &flow) const
{
    const Schedule s = schedule({flow}, {1.0});
    return s.feasible ? s.totalThroughput
                      : units::MegabitsPerSecond{0.0};
}

} // namespace scalo::sched
