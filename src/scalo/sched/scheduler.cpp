#include "scalo/sched/scheduler.hpp"

#include <algorithm>
#include <cmath>

#include "scalo/hw/nvm.hpp"
#include "scalo/ilp/solver.hpp"
#include "scalo/net/packet.hpp"
#include "scalo/util/contracts.hpp"
#include "scalo/util/logging.hpp"

namespace scalo::sched {

using namespace units::literals;

namespace {

/** TDMA slot guard time (radio turnaround), matching net::TdmaSchedule. */
constexpr units::Millis kGuard = units::Micros{20.0};

/**
 * Linearised wire time for one payload byte: per-packet overhead
 * amortised as a rate factor. (The ILP needs per-byte coefficients,
 * so this is where a time deliberately leaves the unit system as ms.)
 */
units::Millis
wireTimePerByte(const net::RadioSpec &radio)
{
    const double overhead_factor =
        1.0 + static_cast<double>(net::kPacketOverheadBytes) /
                  static_cast<double>(net::kMaxPayloadBytes);
    return overhead_factor * (1.0_B / radio.dataRate);
}

units::Millis
wireFixed(const net::RadioSpec &radio)
{
    return units::Bytes{static_cast<double>(
               net::kPacketOverheadBytes)} /
               radio.dataRate +
           kGuard;
}

/** Indices of nodes that transmit for a flow's pattern. */
std::vector<std::size_t>
senders(net::Pattern pattern, std::size_t nodes)
{
    std::vector<std::size_t> out;
    switch (pattern) {
      case net::Pattern::OneToAll:
        out.push_back(0);
        break;
      case net::Pattern::AllToAll:
        for (std::size_t n = 0; n < nodes; ++n)
            out.push_back(n);
        break;
      case net::Pattern::AllToOne:
        for (std::size_t n = 1; n < nodes; ++n)
            out.push_back(n);
        break;
    }
    return out;
}

/**
 * Add tangent cuts approximating q >= e^2 from below (exact at the
 * grid points; the maximizing LP sits on the hull, so the error is
 * bounded by the grid pitch squared over four).
 */
void
addQuadraticCuts(ilp::Model &model, int e_var, int q_var, double e_max)
{
    constexpr int kCuts = 32;
    for (int i = 0; i <= kCuts; ++i) {
        const double e0 =
            e_max * static_cast<double>(i) / static_cast<double>(kCuts);
        // q >= 2 e0 e - e0^2.
        model.addConstraint({{q_var, 1.0}, {e_var, -2.0 * e0}},
                            ilp::Relation::GreaterEq, -e0 * e0);
    }
}

} // namespace

Scheduler::Scheduler(SystemConfig config) : systemConfig(config)
{
    SCALO_ASSERT(systemConfig.nodes >= 1, "need at least one node");
    SCALO_ASSERT(systemConfig.powerCap > 0.0_mW,
                 "power cap must be > 0");
}

Schedule
Scheduler::schedule(const std::vector<FlowSpec> &flows,
                    const std::vector<double> &priorities) const
{
    SCALO_ASSERT(flows.size() == priorities.size(),
                 "one priority per flow");
    Schedule result;
    const std::size_t nodes = systemConfig.nodes;

    // Static response-time feasibility: the PE chains are pipelined
    // at the window cadence (each PE sits in its own clock domain and
    // overlaps with its neighbours), so the binding serial component
    // is the network exchange round, which must fit the response-time
    // target.
    for (const FlowSpec &flow : flows) {
        if (flow.network &&
            flow.network->roundBudget >
                flow.responseTime + units::Millis{1e-9}) {
            result.reason = "flow '" + flow.name +
                            "' cannot meet its response time";
            return result;
        }
    }

    // Per-node leakage: each flow pays its own leakage, but the
    // intra-SCALO radio is one physical device, charged once.
    units::Milliwatts radio_leak{0.0};
    std::size_t networked = 0;
    for (const FlowSpec &flow : flows)
        if (flow.network)
            ++networked;
    if (systemConfig.wirelessNetwork && networked > 0)
        radio_leak = systemConfig.radio->power;

    units::Milliwatts leak_total{0.0};
    for (const FlowSpec &flow : flows) {
        units::Milliwatts leak = flow.leak;
        if (flow.network) {
            // FlowSpec folds the default radio into its leakage;
            // replace it with the configured radio, charged once.
            leak -= net::defaultRadio().power;
        } else if (!systemConfig.wirelessNetwork && !flow.network) {
            // nothing to adjust for local flows
        }
        leak_total += leak;
    }
    leak_total += radio_leak;
    const units::Milliwatts power_budget =
        systemConfig.powerCap - leak_total;
    if (power_budget <= 0.0_mW) {
        result.reason = "leakage alone exceeds the power cap";
        return result;
    }

    // Build the ILP.
    ilp::Model model;
    const double e_cap = systemConfig.maxElectrodesPerNode > 0.0
                             ? systemConfig.maxElectrodesPerNode
                             : 100'000.0;

    std::vector<std::vector<int>> e_vars(flows.size());
    std::vector<std::vector<int>> q_vars(flows.size());
    std::vector<std::vector<bool>> counted(flows.size());
    ilp::Expr objective;

    for (std::size_t f = 0; f < flows.size(); ++f) {
        const FlowSpec &flow = flows[f];
        // Exact-compare flows only give credit (and allocate
        // electrodes) to the transmitting nodes.
        const bool exact = flow.network && flow.network->exactCompare;
        std::vector<bool> is_sender(nodes, true);
        if (exact && systemConfig.wirelessNetwork) {
            std::fill(is_sender.begin(), is_sender.end(), false);
            for (std::size_t n :
                 senders(flow.network->pattern, nodes)) {
                is_sender[n] = true;
            }
        }
        counted[f] = is_sender;
        // Upper bound from power alone, used to place tangent cuts.
        const double e_power_max = std::min(
            e_cap, flow.electrodesAtPower(systemConfig.powerCap));
        for (std::size_t n = 0; n < nodes; ++n) {
            const int e = model.addVariable(
                flow.name + ".e" + std::to_string(n), 0.0,
                is_sender[n] ? e_cap : 0.0,
                systemConfig.integerElectrodes);
            e_vars[f].push_back(e);
            if (is_sender[n])
                objective.push_back({e, priorities[f]});
            if (flow.quadPerElectrode2.count() > 0.0) {
                const int q = model.addVariable(
                    flow.name + ".q" + std::to_string(n), 0.0,
                    ilp::kInf, false);
                q_vars[f].push_back(q);
                addQuadraticCuts(model, e, q,
                                 std::max(1.0, e_power_max) * 1.05);
            } else {
                q_vars[f].push_back(-1);
            }
        }
        // Centralised caps (e.g. the Kalman aggregator's NVM).
        if (flow.centralElectrodeCap > 0.0) {
            ilp::Expr total;
            for (int e : e_vars[f])
                total.push_back({e, 1.0});
            model.addConstraint(std::move(total),
                                ilp::Relation::LessEq,
                                flow.centralElectrodeCap,
                                flow.name + ".central-cap");
        }
    }

    // Per-node power and NVM write bandwidth. The ILP's coefficient
    // matrix is unitless, so rates and powers enter as their counts
    // (bytes/s and mW) - the one sanctioned escape hatch.
    const double nvm_write_bps =
        hw::nvmSpec().writeBandwidth().count() * 1e6;
    for (std::size_t n = 0; n < nodes; ++n) {
        ilp::Expr power;
        ilp::Expr nvm;
        for (std::size_t f = 0; f < flows.size(); ++f) {
            const FlowSpec &flow = flows[f];
            const bool exact = flow.network &&
                               flow.network->exactCompare &&
                               systemConfig.wirelessNetwork;
            if (exact) {
                // The comparison work lands on the receivers: node n
                // checks every window it receives against its local
                // history.
                for (std::size_t m = 0; m < nodes; ++m) {
                    if (m != n && counted[f][m] &&
                        flow.linPerElectrode.count() > 0.0) {
                        power.push_back(
                            {e_vars[f][m],
                             flow.linPerElectrode.count()});
                    }
                }
            } else if (flow.linPerElectrode.count() > 0.0) {
                power.push_back(
                    {e_vars[f][n], flow.linPerElectrode.count()});
            }
            if (flow.quadPerElectrode2.count() > 0.0)
                power.push_back(
                    {q_vars[f][n], flow.quadPerElectrode2.count()});
            if (flow.nvmWriteBytesPerElecPerSec > 0.0)
                nvm.push_back({e_vars[f][n],
                               flow.nvmWriteBytesPerElecPerSec});
        }
        if (!power.empty())
            model.addConstraint(std::move(power),
                                ilp::Relation::LessEq,
                                power_budget.count(),
                                "power.node" + std::to_string(n));
        if (!nvm.empty())
            model.addConstraint(std::move(nvm),
                                ilp::Relation::LessEq, nvm_write_bps,
                                "nvm.node" + std::to_string(n));
    }

    // Network budgets: for each networked flow, the serialized TDMA
    // round of its senders must fit its budget. The wireless medium is
    // shared across flows, so flows running concurrently also share
    // the window cadence; each flow's budget already reflects its
    // share of the schedule (Section 3.5 interleaves flows on the
    // fixed TDMA schedule the ILP emits).
    if (systemConfig.wirelessNetwork) {
        const net::RadioSpec &radio = *systemConfig.radio;
        for (std::size_t f = 0; f < flows.size(); ++f) {
            const FlowSpec &flow = flows[f];
            if (!flow.network)
                continue;
            const auto tx = senders(flow.network->pattern, nodes);
            if (tx.empty())
                continue;
            ilp::Expr round;
            units::Millis fixed{0.0};
            for (std::size_t n : tx) {
                if (flow.network->bytesPerElectrode > 0.0)
                    round.push_back(
                        {e_vars[f][n],
                         flow.network->bytesPerElectrode *
                             wireTimePerByte(radio).count()});
                fixed += wireFixed(radio) +
                         flow.network->bytesPerNode *
                             wireTimePerByte(radio);
            }
            const units::Millis budget =
                flow.network->roundBudget - fixed;
            if (budget < 0.0_ms) {
                // Even empty packets from every sender overrun the
                // round: this flow cannot run at this node count, so
                // it is allocated nothing (the rest of the schedule
                // stands).
                for (std::size_t n : tx)
                    model.addConstraint({{e_vars[f][n], 1.0}},
                                        ilp::Relation::LessEq, 0.0,
                                        flow.name + ".starved");
                continue;
            }
            if (!round.empty())
                model.addConstraint(std::move(round),
                                    ilp::Relation::LessEq,
                                    budget.count(),
                                    flow.name + ".network");
        }
    }

    model.setObjective(std::move(objective), /*maximize=*/true);
    const ilp::Solution solution = systemConfig.integerElectrodes
                                       ? ilp::solveIlp(model)
                                       : ilp::solveLp(model);
    if (!solution.ok()) {
        result.reason = "ILP infeasible";
        return result;
    }

    // Decode the allocation.
    result.feasible = true;
    result.nodePower.assign(nodes, leak_total);
    for (std::size_t f = 0; f < flows.size(); ++f) {
        const bool exact = flows[f].network &&
                           flows[f].network->exactCompare &&
                           systemConfig.wirelessNetwork;
        FlowAllocation alloc;
        alloc.flow = flows[f].name;
        for (std::size_t n = 0; n < nodes; ++n) {
            const double e = solution.values[static_cast<std::size_t>(
                e_vars[f][n])];
            alloc.electrodesPerNode.push_back(e);
            alloc.totalElectrodes += e;
        }
        for (std::size_t n = 0; n < nodes; ++n) {
            const double e = alloc.electrodesPerNode[n];
            if (exact) {
                // Receive-side comparison power.
                result.nodePower[n] +=
                    flows[f].linPerElectrode *
                    (alloc.totalElectrodes - e);
            } else {
                result.nodePower[n] +=
                    flows[f].linPerElectrode * e +
                    flows[f].quadPerElectrode2 * e * e;
            }
        }
        alloc.throughput = electrodesToRate(alloc.totalElectrodes);
        result.totalThroughput += alloc.throughput;
        result.weightedThroughput += priorities[f] * alloc.throughput;
        result.flows.push_back(std::move(alloc));
    }
    for ([[maybe_unused]] const units::Milliwatts p :
         result.nodePower)
        SCALO_ENSURES(p.count() >= 0.0);
    return result;
}

units::MegabitsPerSecond
Scheduler::maxAggregateThroughput(const FlowSpec &flow) const
{
    const Schedule s = schedule({flow}, {1.0});
    return s.feasible ? s.totalThroughput
                      : units::MegabitsPerSecond{0.0};
}

} // namespace scalo::sched
