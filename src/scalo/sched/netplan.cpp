#include "scalo/sched/netplan.hpp"

#include <cmath>
#include <sstream>

#include "scalo/util/contracts.hpp"
#include "scalo/util/logging.hpp"

namespace scalo::sched {

bool
NetworkPlan::collisionFree() const
{
    for (std::size_t i = 0; i + 1 < slots.size(); ++i)
        if (slots[i].end >
            slots[i + 1].start + units::Millis{1e-12})
            return false;
    return true;
}

NetworkPlan
buildNetworkPlan(const std::vector<FlowSpec> &flows,
                 const Schedule &schedule,
                 const net::RadioSpec &radio)
{
    SCALO_ASSERT(schedule.feasible, "cannot plan an infeasible "
                                    "schedule");
    SCALO_ASSERT(flows.size() == schedule.flows.size(),
                 "flow/allocation mismatch");

    const std::size_t nodes =
        schedule.flows.empty()
            ? 0
            : schedule.flows.front().electrodesPerNode.size();
    const net::TdmaSchedule tdma(radio, std::max<std::size_t>(1,
                                                              nodes));

    NetworkPlan plan;
    units::Millis cursor{0.0};
    for (std::size_t f = 0; f < flows.size(); ++f) {
        const FlowSpec &flow = flows[f];
        if (!flow.network)
            continue;
        const auto &alloc = schedule.flows[f];

        // Which nodes transmit for this flow's pattern.
        std::vector<NodeId> senders;
        switch (flow.network->pattern) {
          case net::Pattern::OneToAll:
            senders.push_back(0);
            break;
          case net::Pattern::AllToAll:
            for (NodeId n = 0; n < nodes; ++n)
                senders.push_back(n);
            break;
          case net::Pattern::AllToOne:
            for (NodeId n = 1; n < nodes; ++n)
                senders.push_back(n);
            break;
        }

        for (NodeId sender : senders) {
            const double electrodes =
                alloc.electrodesPerNode[sender];
            const auto payload = static_cast<std::size_t>(
                std::ceil(flow.network->bytesPerElectrode *
                              electrodes +
                          flow.network->bytesPerNode));
            if (payload == 0)
                continue;
            TdmaSlot slot;
            slot.sender = sender;
            slot.flow = flow.name;
            slot.payloadBytes = payload;
            slot.start = cursor;
            slot.end = cursor + tdma.slotTime(payload);
            cursor = slot.end;
            plan.slots.push_back(std::move(slot));
        }
    }
    plan.round = cursor;
    SCALO_ENSURES(plan.collisionFree());
    return plan;
}

std::string
renderPlan(const NetworkPlan &plan)
{
    std::ostringstream oss;
    oss << "TDMA round: " << plan.round.count() << " ms, "
        << plan.slots.size() << " slots\n";
    for (const TdmaSlot &slot : plan.slots) {
        oss << "  [" << slot.start.count() << " - "
            << slot.end.count() << " ms] node " << slot.sender
            << " sends " << slot.payloadBytes << " B of '"
            << slot.flow << "'\n";
    }
    return oss.str();
}

} // namespace scalo::sched
