/**
 * @file
 * Flow descriptors for SCALO's application tasks: the per-node PE
 * chain, a power model over electrode count, network usage per
 * window, storage usage, and timing. These are what the ILP scheduler
 * (Section 3.5) allocates electrodes to.
 *
 * Power model per node per flow over e electrode signals:
 *
 *    P(e) = leak + linPerElectrode * e + quadPerElectrode2 * e^2
 *
 * The leakage term sums the Table 1 leakage(+SRAM) of the PEs in the
 * flow's chain plus the NVM (0.26 mW) and, for networked flows, the
 * intra-SCALO radio. The linear term sums per-electrode dynamic power
 * (Table 1 "Dyn/Elec") of the chain, the ADC share, and calibrated
 * data-movement energy (NVM writes, overlapping-window duty). The
 * quadratic term captures pairwise work (XCOR across electrodes in
 * seizure detection; the Kalman filter's covariance algebra), which is
 * what makes those tasks' throughput fall off quadratically with the
 * power limit (Section 6.2). Calibration notes live in EXPERIMENTS.md.
 */

#pragma once

#include <optional>
#include <string>
#include <vector>

#include "scalo/hw/pe.hpp"
#include "scalo/net/tdma.hpp"

namespace scalo::sched {

/** Where a flow's inter-node traffic goes. */
struct NetworkUse
{
    net::Pattern pattern = net::Pattern::OneToAll;
    /** Payload bytes per electrode per round (e.g. 1 B hashes). */
    double bytesPerElectrode = 0.0;
    /** Fixed payload bytes per sending node per round. */
    double bytesPerNode = 0.0;
    /**
     * Time budget for one full exchange round; calibrated from
     * the response-time decomposition of each application.
     */
    units::Millis roundBudget{4.0};
    /**
     * Exact-comparison flows (DTW) count only *transmitted* electrode
     * signals as throughput, and the comparison power lands on the
     * receivers (each received window is checked against the local
     * recent history). Hash flows count every hashed electrode.
     */
    bool exactCompare = false;
};

/** One schedulable flow (a task stage of an application). */
struct FlowSpec
{
    std::string name;
    /** PE chain running on each participating node. */
    std::vector<hw::PeKind> peChain;
    /** Fixed power: PE+NVM(+radio) leakage. */
    units::Milliwatts leak{0.0};
    /** Linear dynamic power (per electrode). */
    units::Milliwatts linPerElectrode{0.0};
    /** Quadratic dynamic power (per electrode^2). */
    units::Milliwatts quadPerElectrode2{0.0};
    /** Network usage; nullopt for node-local flows. */
    std::optional<NetworkUse> network;
    /** NVM write traffic (bytes per electrode per second). */
    double nvmWriteBytesPerElecPerSec = 0.0;
    /**
     * Hard cap on total electrodes across all nodes imposed by a
     * centralised resource (MI KF: the aggregator's NVM bandwidth
     * during inversion caps the system at 384 electrodes). 0 = none.
     */
    double centralElectrodeCap = 0.0;
    /** End-to-end response-time target. */
    units::Millis responseTime{10.0};
    /** Flow cadence: one round per window of this length. */
    units::Millis window{4.0};
    /** Runs on the MC instead of PEs (HALO+NVM fallback). */
    bool onMicrocontroller = false;

    /** Per-node power at @p electrodes. */
    units::Milliwatts
    power(double electrodes) const
    {
        return leak + linPerElectrode * electrodes +
               quadPerElectrode2 * electrodes * electrodes;
    }

    /**
     * Electrodes sustainable on one node at @p budget (inverse of
     * power; 0 if the budget does not cover leakage).
     */
    double electrodesAtPower(units::Milliwatts budget) const;
};

/** ADC conversion power per electrode, reported separately from
 *  the fabric budget as in the paper's Section 5 accounting. */
inline constexpr units::Milliwatts kAdcPerElectrode{2.88 / 96.0};

/** Sum of Table 1 leakage(+SRAM) for a PE chain. */
units::Milliwatts chainLeak(const std::vector<hw::PeKind> &chain);

/** Sum of Table 1 per-electrode dynamic power for a chain. */
units::Milliwatts
chainLinPerElectrode(const std::vector<hw::PeKind> &chain);

/** @name Flow library (Sections 4 and 6) */
///@{

/** Local seizure detection: FFT + BBF + XCOR features into an SVM. */
FlowSpec seizureDetectionFlow();

/** Hash-based signal similarity (generation + exchange + CCHECK). */
FlowSpec hashSimilarityFlow(net::Pattern pattern);

/** Exact DTW signal similarity (full windows on the network). */
FlowSpec dtwSimilarityFlow(net::Pattern pattern);

/** Movement intent A: hierarchically decomposed linear SVM. */
FlowSpec miSvmFlow();

/** Movement intent B: centralised Kalman filter over SBP features. */
FlowSpec miKfFlow();

/** Movement intent C: input-split shallow NN. */
FlowSpec miNnFlow();

/** Local online spike sorting with EMD hashes against templates. */
FlowSpec spikeSortingFlow();

///@}

} // namespace scalo::sched
