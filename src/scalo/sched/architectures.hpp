/**
 * @file
 * Alternative BCI system architectures (Table 2) and the
 * maximum-aggregate-throughput comparison of Section 6.1 / Figure 8a.
 *
 *  - SCALO:            distributed, wireless, hash + signal compare
 *  - SCALO No-Hash:    distributed, wireless, exact compare only
 *  - Central:          one wired processor, hash + signal compare
 *  - Central No-Hash:  one wired processor, exact compare only
 *  - HALO+NVM:         one wired HALO processor + NVM; tasks without a
 *                      dedicated PE run on the RISC-V MC
 */

#pragma once

#include <string_view>
#include <vector>

#include "scalo/sched/scheduler.hpp"

namespace scalo::sched {

/** The compared system architectures (Table 2). */
enum class Architecture
{
    Scalo,
    ScaloNoHash,
    Central,
    CentralNoHash,
    HaloNvm,
};

/** The evaluation tasks of Figure 8a. */
enum class Task
{
    SeizureDetection,
    SignalSimilarity,
    MiSvm,
    MiKf,
    MiNn,
    SpikeSorting,
};

/** Display name. */
std::string_view architectureName(Architecture arch);

/** Display name. */
std::string_view taskName(Task task);

/** All architectures, in Table 2 order. */
std::vector<Architecture> allArchitectures();

/** All tasks, in Figure 8a order. */
std::vector<Task> allTasks();

/**
 * Maximum aggregate throughput of @p task on @p arch with
 * @p sites implanted sensing sites and the given per-implant power
 * limit. Centralized designs use one processor wired to all sites;
 * distributed designs use one node per site.
 */
units::MegabitsPerSecond
maxAggregateThroughput(Architecture arch, Task task,
                       std::size_t sites,
                       units::Milliwatts power_cap =
                           constants::kPowerCap);

/**
 * Exact spike sorting (template matching with the DTW PE instead of
 * hash lookup) costs this factor more per electrode than hash-based
 * sorting; the paper reports hash-based Central outperforming exact
 * Central No-Hash by 24.5x (Section 6.1).
 */
inline constexpr double kExactSpikeSortFactor = 24.5;

/**
 * Exact all-window signal comparison on a centralized processor costs
 * this factor over hash-based filtering (250x, Section 6.1).
 */
inline constexpr double kExactSimilarityFactor = 250.0;

} // namespace scalo::sched
