/**
 * @file
 * The ILP's second output (Section 3.5): besides the task-to-PE
 * mapping, the scheduler emits a fixed TDMA network schedule - an
 * ordered list of slots, each assigning the air to one node for one
 * flow's traffic, that every node follows deterministically.
 */

#pragma once

#include <string>
#include <vector>

#include "scalo/net/tdma.hpp"
#include "scalo/sched/scheduler.hpp"

namespace scalo::sched {

/** One TDMA slot of the fixed round. */
struct TdmaSlot
{
    NodeId sender = 0;
    std::string flow;
    std::size_t payloadBytes = 0;
    units::Millis start{0.0};
    units::Millis end{0.0};
};

/** The fixed network round all nodes follow. */
struct NetworkPlan
{
    std::vector<TdmaSlot> slots;
    /** Total round length. */
    units::Millis round{0.0};

    /** Whether no two slots overlap (the TDMA invariant). */
    bool collisionFree() const;
};

/**
 * Derive the fixed slot schedule from a solved allocation: for every
 * networked flow, its senders (per the flow's pattern) get slots
 * sized for their allocated electrodes' traffic, packed back to back
 * with the guard time in between.
 */
NetworkPlan buildNetworkPlan(const std::vector<FlowSpec> &flows,
                             const Schedule &schedule,
                             const net::RadioSpec &radio =
                                 net::defaultRadio());

/** Render the plan as a readable table (for operators/debugging). */
std::string renderPlan(const NetworkPlan &plan);

} // namespace scalo::sched
