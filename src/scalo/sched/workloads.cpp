#include "scalo/sched/workloads.hpp"

#include <cmath>

#include "scalo/net/radio.hpp"
#include "scalo/util/logging.hpp"

namespace scalo::sched {

using hw::PeKind;

double
FlowSpec::electrodesAtPowerMw(double budget_mw) const
{
    const double available = budget_mw - leakMw;
    if (available <= 0.0)
        return 0.0;
    if (quadMwPerElectrode2 <= 0.0) {
        if (linMwPerElectrode <= 0.0)
            return 1e9; // effectively unlimited by power
        return available / linMwPerElectrode;
    }
    // Solve quad*e^2 + lin*e - available = 0 for the positive root.
    const double a = quadMwPerElectrode2;
    const double b = linMwPerElectrode;
    return (-b + std::sqrt(b * b + 4.0 * a * available)) / (2.0 * a);
}

double
chainLeakMw(const std::vector<PeKind> &chain)
{
    double uw = 0.0;
    for (PeKind kind : chain)
        uw += hw::peSpec(kind).idlePowerUw();
    return uw / 1'000.0;
}

double
chainLinMwPerElectrode(const std::vector<PeKind> &chain)
{
    double uw = 0.0;
    for (PeKind kind : chain)
        uw += hw::peSpec(kind).dynPerElectrodeUw;
    return uw / 1'000.0;
}

namespace {

/** NVM leakage charged to any flow that touches storage. */
constexpr double kNvmLeakMw = 0.26;

/** Intra-SCALO radio power charged to networked flows (Low Power). */
double
radioLeakMw()
{
    return net::defaultRadio().powerMw;
}

} // namespace

FlowSpec
seizureDetectionFlow()
{
    FlowSpec flow;
    flow.name = "seizure-detection";
    flow.peChain = {PeKind::FFT, PeKind::BBF, PeKind::XCOR,
                    PeKind::SVM, PeKind::THR, PeKind::SC};
    flow.leakMw = chainLeakMw(flow.peChain) + kNvmLeakMw;
    // Linear term: every chain PE except XCOR, whose work is pairwise
    // across electrodes (the quadratic term below). The quadratic
    // coefficient normalises XCOR's Table 1 per-electrode power to the
    // 96-electrode design point: 44.11 uW * e^2 / 96.
    flow.linMwPerElectrode =
        chainLinMwPerElectrode({PeKind::FFT, PeKind::BBF, PeKind::SVM,
                                PeKind::THR, PeKind::SC});
    flow.quadMwPerElectrode2 =
        hw::peSpec(PeKind::XCOR).dynPerElectrodeUw / 1'000.0 / 96.0;
    flow.nvmWriteBytesPerElecPerSec =
        constants::kElectrodeBps / 8.0; // raw signal ring buffer
    flow.responseTimeMs = 4.0;
    flow.windowMs = 4.0;
    return flow;
}

FlowSpec
hashSimilarityFlow(net::Pattern pattern)
{
    FlowSpec flow;
    flow.name = "hash-similarity";
    flow.peChain = {PeKind::HCONV,  PeKind::NGRAM, PeKind::HFREQ,
                    PeKind::HCOMP,  PeKind::NPACK, PeKind::UNPACK,
                    PeKind::DCOMP,  PeKind::CCHECK, PeKind::SC};
    flow.leakMw = chainLeakMw(flow.peChain) + kNvmLeakMw +
                  radioLeakMw();
    // Hashing runs on overlapping 4 ms windows (3 phases in flight,
    // Section 5's overlapping-window protocol), and every window's
    // hash and source signal are persisted; the NVM write energy
    // appears per electrode: 3 x chain dynamic + write energy of
    // 60 KB/s/electrode.
    const double chain_lin = chainLinMwPerElectrode(flow.peChain);
    const double nvm_write_mw_per_elec =
        (constants::kElectrodeBps / 8.0) / 4'096.0 * 1'374e-9 * 1e3;
    flow.linMwPerElectrode = 3.0 * chain_lin + nvm_write_mw_per_elec;
    flow.network = NetworkUse{pattern, /*bytesPerElectrode=*/1.0,
                              /*bytesPerNode=*/0.0,
                              /*roundBudgetMs=*/1.7};
    flow.nvmWriteBytesPerElecPerSec = constants::kElectrodeBps / 8.0;
    flow.responseTimeMs = 10.0;
    flow.windowMs = 4.0;
    return flow;
}

FlowSpec
dtwSimilarityFlow(net::Pattern pattern)
{
    FlowSpec flow;
    flow.name = "dtw-similarity";
    flow.peChain = {PeKind::CSEL, PeKind::DTW, PeKind::NPACK,
                    PeKind::UNPACK, PeKind::SC};
    flow.leakMw = chainLeakMw(flow.peChain) + kNvmLeakMw +
                  radioLeakMw();
    // Every transmitted window is compared against the receiver's
    // recent history (100 ms = 25 windows per local electrode), so the
    // DTW PE's effective per-transmitted-electrode power is much
    // larger than its single-comparison Table 1 number. Section 6.2
    // pins it: "the DTW PE only needs 4 mW to process data at the
    // available radio transmission rate" (16 electrode windows / 4 ms).
    flow.linMwPerElectrode = 4.0 / 16.0;
    flow.network = NetworkUse{pattern,
                              /*bytesPerElectrode=*/
                              static_cast<double>(
                                  constants::kWindowBytes),
                              /*bytesPerNode=*/0.0,
                              /*roundBudgetMs=*/4.0,
                              /*exactCompare=*/true};
    flow.nvmWriteBytesPerElecPerSec = constants::kElectrodeBps / 8.0;
    flow.responseTimeMs = 10.0;
    flow.windowMs = 4.0;
    return flow;
}

FlowSpec
miSvmFlow()
{
    FlowSpec flow;
    flow.name = "mi-svm";
    flow.peChain = {PeKind::FFT, PeKind::BBF, PeKind::SVM,
                    PeKind::NPACK, PeKind::UNPACK, PeKind::SC};
    flow.leakMw = chainLeakMw(flow.peChain) + kNvmLeakMw +
                  radioLeakMw();
    // Section 6.2: "MI SVM can process 3% more electrodes than hash
    // generation because the SVM PE consumes 3% lower power than the
    // hash PEs" - its linear term is the hash flow's divided by 1.03.
    flow.linMwPerElectrode =
        hashSimilarityFlow(net::Pattern::AllToOne).linMwPerElectrode /
        1.03;
    flow.network = NetworkUse{net::Pattern::AllToOne,
                              /*bytesPerElectrode=*/0.0,
                              /*bytesPerNode=*/4.0,
                              /*roundBudgetMs=*/50.0};
    flow.responseTimeMs = 50.0;
    flow.windowMs = 50.0;
    return flow;
}

FlowSpec
miKfFlow()
{
    FlowSpec flow;
    flow.name = "mi-kf";
    flow.peChain = {PeKind::SBP,  PeKind::NPACK, PeKind::UNPACK,
                    PeKind::BMUL, PeKind::ADD,   PeKind::SUB,
                    PeKind::INV,  PeKind::SC};
    flow.leakMw = chainLeakMw(flow.peChain) + kNvmLeakMw +
                  radioLeakMw();
    // The filter's covariance algebra is quadratic in the feature
    // count; calibrated so one node saturates its 96-electrode design
    // point at 8.5 mW, the knee Section 6.2 reports (below it,
    // throughput falls off quadratically).
    flow.quadMwPerElectrode2 = (8.5 - flow.leakMw) / (96.0 * 96.0);
    flow.network = NetworkUse{net::Pattern::AllToOne,
                              /*bytesPerElectrode=*/4.0,
                              /*bytesPerNode=*/0.0,
                              /*roundBudgetMs=*/50.0};
    // The inversion reads its operands from NVM on the aggregator
    // (the matrix exceeds PE memory); its bandwidth saturates at 384
    // electrodes system-wide (Section 6.2).
    flow.centralElectrodeCap = 384.0;
    flow.responseTimeMs = 50.0;
    flow.windowMs = 50.0;
    return flow;
}

FlowSpec
miNnFlow()
{
    FlowSpec flow;
    flow.name = "mi-nn";
    flow.peChain = {PeKind::SBP,   PeKind::BMUL, PeKind::ADD,
                    PeKind::NPACK, PeKind::UNPACK, PeKind::SC};
    flow.leakMw = chainLeakMw(flow.peChain) + kNvmLeakMw +
                  radioLeakMw();
    // The input-split first layer does hidden-width (256) MACs per
    // electrode on the BMUL tiles; calibrated 20% above the SVM
    // flow's linear term.
    flow.linMwPerElectrode = miSvmFlow().linMwPerElectrode * 1.2;
    flow.network = NetworkUse{net::Pattern::AllToOne,
                              /*bytesPerElectrode=*/0.0,
                              /*bytesPerNode=*/1'024.0,
                              /*roundBudgetMs=*/50.0};
    flow.responseTimeMs = 50.0;
    flow.windowMs = 50.0;
    return flow;
}

FlowSpec
spikeSortingFlow()
{
    FlowSpec flow;
    flow.name = "spike-sorting";
    flow.peChain = {PeKind::NEO,  PeKind::THR,   PeKind::HCONV,
                    PeKind::EMDH, PeKind::CCHECK, PeKind::SC};
    flow.leakMw = chainLeakMw(flow.peChain) + kNvmLeakMw;
    // Dominant cost: per-spike template fetches from NVM. At ~128
    // spikes/s/electrode (12,250/s over a 96-electrode node, Section
    // 6.3) and ~0.4 uJ per hash-directed template read, the linear
    // term is 0.052 mW/electrode on top of the small chain dynamic.
    constexpr double spikes_per_sec_per_elec = 12'250.0 / 96.0;
    constexpr double template_read_uj = 0.45;
    flow.linMwPerElectrode =
        chainLinMwPerElectrode(flow.peChain) +
        spikes_per_sec_per_elec * template_read_uj * 1e-3;
    // Only sorted spike waveforms are persisted (~128 spikes/s x 48
    // samples x 2 B), not the raw stream.
    flow.nvmWriteBytesPerElecPerSec = 12'000.0;
    flow.responseTimeMs = 2.5;
    flow.windowMs = 4.0;
    return flow;
}

} // namespace scalo::sched
