#include "scalo/sched/workloads.hpp"

#include <cmath>

#include "scalo/net/radio.hpp"
#include "scalo/util/contracts.hpp"
#include "scalo/util/logging.hpp"

namespace scalo::sched {

using hw::PeKind;
using namespace units::literals;

double
FlowSpec::electrodesAtPower(units::Milliwatts budget) const
{
    const units::Milliwatts available = budget - leak;
    if (available.count() <= 0.0)
        return 0.0;
    if (quadPerElectrode2.count() <= 0.0) {
        if (linPerElectrode.count() <= 0.0)
            return 1e9; // effectively unlimited by power
        return available / linPerElectrode;
    }
    // Solve quad*e^2 + lin*e - available = 0 for the positive root.
    const double a = quadPerElectrode2.count();
    const double b = linPerElectrode.count();
    return (-b + std::sqrt(b * b + 4.0 * a * available.count())) /
           (2.0 * a);
}

units::Milliwatts
chainLeak(const std::vector<PeKind> &chain)
{
    units::Microwatts total{0.0};
    for (PeKind kind : chain)
        total += hw::peSpec(kind).idlePower();
    return total;
}

units::Milliwatts
chainLinPerElectrode(const std::vector<PeKind> &chain)
{
    units::Microwatts total{0.0};
    for (PeKind kind : chain)
        total += hw::peSpec(kind).dynPerElectrode;
    return total;
}

namespace {

/** NVM leakage charged to any flow that touches storage. */
constexpr units::Milliwatts kNvmLeak{0.26};

/** Intra-SCALO radio power charged to networked flows (Low Power). */
units::Milliwatts
radioLeak()
{
    return net::defaultRadio().power;
}

} // namespace

FlowSpec
seizureDetectionFlow()
{
    FlowSpec flow;
    flow.name = "seizure-detection";
    flow.peChain = {PeKind::FFT, PeKind::BBF, PeKind::XCOR,
                    PeKind::SVM, PeKind::THR, PeKind::SC};
    flow.leak = chainLeak(flow.peChain) + kNvmLeak;
    // Linear term: every chain PE except XCOR, whose work is pairwise
    // across electrodes (the quadratic term below). The quadratic
    // coefficient normalises XCOR's Table 1 per-electrode power to the
    // 96-electrode design point: 44.11 uW * e^2 / 96.
    flow.linPerElectrode =
        chainLinPerElectrode({PeKind::FFT, PeKind::BBF, PeKind::SVM,
                              PeKind::THR, PeKind::SC});
    flow.quadPerElectrode2 =
        hw::peSpec(PeKind::XCOR).dynPerElectrode / 96.0;
    flow.nvmWriteBytesPerElecPerSec =
        constants::kElectrodeBps / 8.0; // raw signal ring buffer
    flow.responseTime = 4.0_ms;
    flow.window = 4.0_ms;
    SCALO_ENSURES(flow.leak.count() > 0.0);
    return flow;
}

FlowSpec
hashSimilarityFlow(net::Pattern pattern)
{
    FlowSpec flow;
    flow.name = "hash-similarity";
    flow.peChain = {PeKind::HCONV,  PeKind::NGRAM, PeKind::HFREQ,
                    PeKind::HCOMP,  PeKind::NPACK, PeKind::UNPACK,
                    PeKind::DCOMP,  PeKind::CCHECK, PeKind::SC};
    flow.leak = chainLeak(flow.peChain) + kNvmLeak + radioLeak();
    // Hashing runs on overlapping 4 ms windows (3 phases in flight,
    // Section 5's overlapping-window protocol), and every window's
    // hash and source signal are persisted; the NVM write energy
    // appears per electrode: 3 x chain dynamic + write energy of
    // 60 KB/s/electrode (page writes at 1374 nJ each).
    const units::Milliwatts chain_lin =
        chainLinPerElectrode(flow.peChain);
    const units::Milliwatts nvm_write_per_elec =
        units::Nanojoules{1'374.0} *
        units::Hertz{(constants::kElectrodeBps / 8.0) / 4'096.0};
    flow.linPerElectrode = 3.0 * chain_lin + nvm_write_per_elec;
    flow.network = NetworkUse{pattern, /*bytesPerElectrode=*/1.0,
                              /*bytesPerNode=*/0.0,
                              /*roundBudget=*/1.7_ms};
    flow.nvmWriteBytesPerElecPerSec = constants::kElectrodeBps / 8.0;
    flow.responseTime = 10.0_ms;
    flow.window = 4.0_ms;
    return flow;
}

FlowSpec
dtwSimilarityFlow(net::Pattern pattern)
{
    FlowSpec flow;
    flow.name = "dtw-similarity";
    flow.peChain = {PeKind::CSEL, PeKind::DTW, PeKind::NPACK,
                    PeKind::UNPACK, PeKind::SC};
    flow.leak = chainLeak(flow.peChain) + kNvmLeak + radioLeak();
    // Every transmitted window is compared against the receiver's
    // recent history (100 ms = 25 windows per local electrode), so the
    // DTW PE's effective per-transmitted-electrode power is much
    // larger than its single-comparison Table 1 number. Section 6.2
    // pins it: "the DTW PE only needs 4 mW to process data at the
    // available radio transmission rate" (16 electrode windows / 4 ms).
    flow.linPerElectrode = 4.0_mW / 16.0;
    flow.network = NetworkUse{pattern,
                              /*bytesPerElectrode=*/
                              static_cast<double>(
                                  constants::kWindowBytes),
                              /*bytesPerNode=*/0.0,
                              /*roundBudget=*/4.0_ms,
                              /*exactCompare=*/true};
    flow.nvmWriteBytesPerElecPerSec = constants::kElectrodeBps / 8.0;
    flow.responseTime = 10.0_ms;
    flow.window = 4.0_ms;
    return flow;
}

FlowSpec
miSvmFlow()
{
    FlowSpec flow;
    flow.name = "mi-svm";
    flow.peChain = {PeKind::FFT, PeKind::BBF, PeKind::SVM,
                    PeKind::NPACK, PeKind::UNPACK, PeKind::SC};
    flow.leak = chainLeak(flow.peChain) + kNvmLeak + radioLeak();
    // Section 6.2: "MI SVM can process 3% more electrodes than hash
    // generation because the SVM PE consumes 3% lower power than the
    // hash PEs" - its linear term is the hash flow's divided by 1.03.
    flow.linPerElectrode =
        hashSimilarityFlow(net::Pattern::AllToOne).linPerElectrode /
        1.03;
    flow.network = NetworkUse{net::Pattern::AllToOne,
                              /*bytesPerElectrode=*/0.0,
                              /*bytesPerNode=*/4.0,
                              /*roundBudget=*/50.0_ms};
    flow.responseTime = 50.0_ms;
    flow.window = 50.0_ms;
    return flow;
}

FlowSpec
miKfFlow()
{
    FlowSpec flow;
    flow.name = "mi-kf";
    flow.peChain = {PeKind::SBP,  PeKind::NPACK, PeKind::UNPACK,
                    PeKind::BMUL, PeKind::ADD,   PeKind::SUB,
                    PeKind::INV,  PeKind::SC};
    flow.leak = chainLeak(flow.peChain) + kNvmLeak + radioLeak();
    // The filter's covariance algebra is quadratic in the feature
    // count; calibrated so one node saturates its 96-electrode design
    // point at 8.5 mW, the knee Section 6.2 reports (below it,
    // throughput falls off quadratically).
    flow.quadPerElectrode2 = (8.5_mW - flow.leak) / (96.0 * 96.0);
    flow.network = NetworkUse{net::Pattern::AllToOne,
                              /*bytesPerElectrode=*/4.0,
                              /*bytesPerNode=*/0.0,
                              /*roundBudget=*/50.0_ms};
    // The inversion reads its operands from NVM on the aggregator
    // (the matrix exceeds PE memory); its bandwidth saturates at 384
    // electrodes system-wide (Section 6.2).
    flow.centralElectrodeCap = 384.0;
    flow.responseTime = 50.0_ms;
    flow.window = 50.0_ms;
    return flow;
}

FlowSpec
miNnFlow()
{
    FlowSpec flow;
    flow.name = "mi-nn";
    flow.peChain = {PeKind::SBP,   PeKind::BMUL, PeKind::ADD,
                    PeKind::NPACK, PeKind::UNPACK, PeKind::SC};
    flow.leak = chainLeak(flow.peChain) + kNvmLeak + radioLeak();
    // The input-split first layer does hidden-width (256) MACs per
    // electrode on the BMUL tiles; calibrated 20% above the SVM
    // flow's linear term.
    flow.linPerElectrode = miSvmFlow().linPerElectrode * 1.2;
    flow.network = NetworkUse{net::Pattern::AllToOne,
                              /*bytesPerElectrode=*/0.0,
                              /*bytesPerNode=*/1'024.0,
                              /*roundBudget=*/50.0_ms};
    flow.responseTime = 50.0_ms;
    flow.window = 50.0_ms;
    return flow;
}

FlowSpec
spikeSortingFlow()
{
    FlowSpec flow;
    flow.name = "spike-sorting";
    flow.peChain = {PeKind::NEO,  PeKind::THR,   PeKind::HCONV,
                    PeKind::EMDH, PeKind::CCHECK, PeKind::SC};
    flow.leak = chainLeak(flow.peChain) + kNvmLeak;
    // Dominant cost: per-spike template fetches from NVM. At ~128
    // spikes/s/electrode (12,250/s over a 96-electrode node, Section
    // 6.3) and ~0.45 uJ per hash-directed template read, the linear
    // term is 0.052 mW/electrode on top of the small chain dynamic.
    constexpr double spikes_per_sec_per_elec = 12'250.0 / 96.0;
    constexpr units::Microjoules template_read{0.45};
    flow.linPerElectrode =
        chainLinPerElectrode(flow.peChain) +
        template_read * units::Hertz{spikes_per_sec_per_elec};
    // Only sorted spike waveforms are persisted (~128 spikes/s x 48
    // samples x 2 B), not the raw stream.
    flow.nvmWriteBytesPerElecPerSec = 12'000.0;
    flow.responseTime = 2.5_ms;
    flow.window = 4.0_ms;
    return flow;
}

} // namespace scalo::sched
