/**
 * @file
 * The ILP-based system scheduler (Section 3.5). Each application task
 * is a flow; the scheduler maximizes the priority-weighted number of
 * electrode signals processed across flows and nodes, subject to
 *
 *  - a per-node power cap (flow leakage + linear and convex-quadratic
 *    dynamic terms, the latter handled with exact-enough tangent
 *    cuts),
 *  - the serialized TDMA network (per-flow exchange-round budgets,
 *    with per-packet overhead),
 *  - per-node NVM write bandwidth,
 *  - centralised resource caps (e.g. the Kalman aggregator's NVM), and
 *  - response-time feasibility of the PE chains.
 *
 * The deterministic latency/power of every component (Section 3.2) is
 * what makes this optimal static scheduling valid.
 */

#pragma once

#include <string>
#include <vector>

#include "scalo/net/radio.hpp"
#include "scalo/sched/workloads.hpp"

namespace scalo::sched {

/** System-level configuration the scheduler maps onto. */
struct SystemConfig
{
    std::size_t nodes = 11;
    units::Milliwatts powerCap = constants::kPowerCap;
    const net::RadioSpec *radio = &net::defaultRadio();
    /** False for wired centralized baselines: no radio power/limits. */
    bool wirelessNetwork = true;
    /** Enforce integral electrode counts (slower; default relaxed). */
    bool integerElectrodes = false;
    /**
     * Per-node electrode ceiling; 0 lifts it (the paper's "maximum
     * aggregate throughput" methodology adds electrodes/ADCs until
     * power or response time binds).
     */
    double maxElectrodesPerNode = 0.0;
};

/** Electrode allocation of one flow across nodes. */
struct FlowAllocation
{
    std::string flow;
    std::vector<double> electrodesPerNode;
    double totalElectrodes = 0.0;
    units::MegabitsPerSecond throughput{0.0};
};

/** A complete schedule for a flow set. */
struct Schedule
{
    bool feasible = false;
    /** Diagnostic when infeasible. */
    std::string reason;
    std::vector<FlowAllocation> flows;
    std::vector<units::Milliwatts> nodePower;
    units::MegabitsPerSecond totalThroughput{0.0};
    units::MegabitsPerSecond weightedThroughput{0.0};
};

/** Outcome of rescheduling around dead nodes (degraded operation). */
struct RescheduleResult
{
    /** The repaired schedule; dead nodes carry zero work and power. */
    Schedule schedule;
    /** True when the ILP re-solve produced it; false = greedy repair. */
    bool viaIlp = false;
    std::vector<std::size_t> deadNodes;
    /** Degradation deltas (before = the original schedule). */
    units::MegabitsPerSecond throughputBefore{0.0};
    units::MegabitsPerSecond throughputAfter{0.0};
    units::Milliwatts maxNodePowerBefore{0.0};
    units::Milliwatts maxNodePowerAfter{0.0};
};

/** The optimal mapper. */
class Scheduler
{
  public:
    explicit Scheduler(SystemConfig config);

    /**
     * Solve for the optimal electrode allocation of @p flows with the
     * given priorities (one weight per flow).
     */
    Schedule schedule(const std::vector<FlowSpec> &flows,
                      const std::vector<double> &priorities) const;

    /**
     * Remap @p original's work off @p dead_nodes onto the survivors:
     * re-solves the ILP restricted to live nodes, and when that is
     * infeasible falls back to greedyRepair(). Either way the
     * returned schedule assigns zero electrodes and zero power to
     * every dead node, and the result reports the degraded
     * throughput/power deltas against the original.
     */
    RescheduleResult
    reschedule(const std::vector<FlowSpec> &flows,
               const std::vector<double> &priorities,
               const Schedule &original,
               const std::vector<std::size_t> &dead_nodes) const;

    /**
     * The non-ILP repair path: move each flow's dead-node electrodes
     * onto surviving nodes in proportion to their remaining power
     * headroom, clipped by the per-node electrode ceiling. Always
     * returns a schedule (possibly with work shed when nothing fits),
     * so degradation never depends on solver feasibility.
     */
    Schedule greedyRepair(const std::vector<FlowSpec> &flows,
                          const Schedule &original,
                          const std::vector<std::size_t> &dead_nodes)
        const;

    /** Single-flow maximum aggregate throughput. */
    units::MegabitsPerSecond
    maxAggregateThroughput(const FlowSpec &flow) const;

    const SystemConfig &config() const { return systemConfig; }

  private:
    Schedule scheduleMasked(const std::vector<FlowSpec> &flows,
                            const std::vector<double> &priorities,
                            const std::vector<bool> &alive) const;

    SystemConfig systemConfig;
};

} // namespace scalo::sched
