/**
 * @file
 * The ILP-based system scheduler (Section 3.5). Each application task
 * is a flow; the scheduler maximizes the priority-weighted number of
 * electrode signals processed across flows and nodes, subject to
 *
 *  - a per-node power cap (flow leakage + linear and convex-quadratic
 *    dynamic terms, the latter handled with exact-enough tangent
 *    cuts),
 *  - the serialized TDMA network (per-flow exchange-round budgets,
 *    with per-packet overhead),
 *  - per-node NVM write bandwidth,
 *  - centralised resource caps (e.g. the Kalman aggregator's NVM), and
 *  - response-time feasibility of the PE chains.
 *
 * The deterministic latency/power of every component (Section 3.2) is
 * what makes this optimal static scheduling valid.
 */

#pragma once

#include <string>
#include <vector>

#include "scalo/net/cluster.hpp"
#include "scalo/net/radio.hpp"
#include "scalo/sched/workloads.hpp"

namespace scalo::sched {

/** System-level configuration the scheduler maps onto. */
struct SystemConfig
{
    std::size_t nodes = 11;
    units::Milliwatts powerCap = constants::kPowerCap;
    const net::RadioSpec *radio = &net::defaultRadio();
    /** False for wired centralized baselines: no radio power/limits. */
    bool wirelessNetwork = true;
    /** Enforce integral electrode counts (slower; default relaxed). */
    bool integerElectrodes = false;
    /**
     * Per-node electrode ceiling; 0 lifts it (the paper's "maximum
     * aggregate throughput" methodology adds electrodes/ADCs until
     * power or response time binds).
     */
    double maxElectrodesPerNode = 0.0;
    /**
     * Hierarchical fabric partition. Empty means flat (one cluster
     * spanning every node, the legacy medium).
     */
    net::ClusterPlan clusters;
    /**
     * At or below this node count the scheduler keeps the dense
     * monolithic solve even when a multi-cluster plan is configured,
     * so small-N schedules are bit-identical to the flat ones.
     */
    std::size_t monolithicNodeThreshold = 48;
};

/** Electrode allocation of one flow across nodes. */
struct FlowAllocation
{
    std::string flow;
    std::vector<double> electrodesPerNode;
    double totalElectrodes = 0.0;
    units::MegabitsPerSecond throughput{0.0};
};

/** A complete schedule for a flow set. */
struct Schedule
{
    bool feasible = false;
    /** Diagnostic when infeasible. */
    std::string reason;
    std::vector<FlowAllocation> flows;
    std::vector<units::Milliwatts> nodePower;
    units::MegabitsPerSecond totalThroughput{0.0};
    units::MegabitsPerSecond weightedThroughput{0.0};
};

/** Outcome of rescheduling around dead nodes (degraded operation). */
struct RescheduleResult
{
    /** The repaired schedule; dead nodes carry zero work and power. */
    Schedule schedule;
    /** True when the ILP re-solve produced it; false = greedy repair. */
    bool viaIlp = false;
    std::vector<std::size_t> deadNodes;
    /**
     * Clusters whose sub-problems were re-solved. The decomposed path
     * only touches clusters containing dead nodes; the monolithic
     * path re-solves the whole fabric and lists every cluster.
     */
    std::vector<std::size_t> resolvedClusters;
    /** Degradation deltas (before = the original schedule). */
    units::MegabitsPerSecond throughputBefore{0.0};
    units::MegabitsPerSecond throughputAfter{0.0};
    units::Milliwatts maxNodePowerBefore{0.0};
    units::Milliwatts maxNodePowerAfter{0.0};
};

/** The optimal mapper. */
class Scheduler
{
  public:
    explicit Scheduler(SystemConfig config);

    /**
     * Solve for the optimal electrode allocation of @p flows with the
     * given priorities (one weight per flow).
     */
    Schedule schedule(const std::vector<FlowSpec> &flows,
                      const std::vector<double> &priorities) const;

    /**
     * Remap @p original's work off @p dead_nodes onto the survivors:
     * re-solves the ILP restricted to live nodes, and when that is
     * infeasible falls back to greedyRepair(). Either way the
     * returned schedule assigns zero electrodes and zero power to
     * every dead node, and the result reports the degraded
     * throughput/power deltas against the original.
     */
    RescheduleResult
    reschedule(const std::vector<FlowSpec> &flows,
               const std::vector<double> &priorities,
               const Schedule &original,
               const std::vector<std::size_t> &dead_nodes) const;

    /**
     * The non-ILP repair path: move each flow's dead-node electrodes
     * onto surviving nodes in proportion to their remaining power
     * headroom, clipped by the per-node electrode ceiling. Always
     * returns a schedule (possibly with work shed when nothing fits),
     * so degradation never depends on solver feasibility.
     */
    Schedule greedyRepair(const std::vector<FlowSpec> &flows,
                          const Schedule &original,
                          const std::vector<std::size_t> &dead_nodes)
        const;

    /** Single-flow maximum aggregate throughput. */
    units::MegabitsPerSecond
    maxAggregateThroughput(const FlowSpec &flow) const;

    const SystemConfig &config() const { return systemConfig; }

    /** The effective partition (flat when none was configured). */
    const net::ClusterPlan &plan() const { return effectivePlan; }

    /**
     * True when schedule()/reschedule() use the decomposed per-cluster
     * formulation: a multi-cluster plan above the monolithic
     * threshold.
     */
    bool decomposed() const;

    /**
     * Force the dense whole-fabric solve regardless of the cluster
     * plan (the small-N reference, and the baseline the scaling bench
     * times against).
     */
    Schedule
    scheduleMonolithic(const std::vector<FlowSpec> &flows,
                       const std::vector<double> &priorities) const;

    /**
     * Force the decomposed solve: one compact sub-ILP per cluster
     * (intra-cluster share of each flow's round budget), then greedy
     * stitching of the inter-cluster relay traffic into the backbone
     * share, scaling flows down when the backbone would overrun.
     * Falls back to the monolithic solve on single-cluster plans.
     */
    Schedule
    scheduleDecomposed(const std::vector<FlowSpec> &flows,
                       const std::vector<double> &priorities) const;

    /**
     * Re-solve exactly one cluster around @p dead_nodes (all of which
     * must belong to @p cluster); every other cluster's columns are
     * copied from @p original untouched. This is the entry the
     * simulator's per-cluster runtimes use mid-quantum: it reads
     * shared state immutably and never scales other clusters, so
     * concurrent calls for distinct clusters are safe. The re-solved
     * cluster is clamped to its pre-death totals, keeping relay
     * payloads monotonically non-increasing until the runtime's next
     * barrier, where restitchBackbone() re-stitches the backbone
     * fabric-wide and reclaims the capacity the clamp gave up.
     */
    RescheduleResult
    rescheduleCluster(const std::vector<FlowSpec> &flows,
                      const std::vector<double> &priorities,
                      const Schedule &original,
                      const std::vector<std::size_t> &dead_nodes,
                      std::size_t cluster) const;

    /**
     * Fabric-wide backbone re-stitch, run at a runtime barrier after
     * relay failover, node death, or a partition transition. Starting
     * from @p original (the boot schedule, so repeated re-stitches
     * never ratchet allocations down), every cluster owning one of
     * @p dead_nodes is re-solved unclamped via the incremental
     * per-cluster sub-ILP, then the inter-cluster backbone is
     * re-stitched against a reachability mask that excludes
     * @p unreachable_clusters' members (their intra-cluster TDMA
     * keeps its allocation; only their backbone contribution is
     * dropped). With no dead nodes and no unreachable clusters the
     * result is the original schedule — a heal restores full
     * capacity exactly.
     */
    RescheduleResult restitchBackbone(
        const std::vector<FlowSpec> &flows,
        const std::vector<double> &priorities,
        const Schedule &original,
        const std::vector<std::size_t> &dead_nodes,
        const std::vector<std::size_t> &unreachable_clusters = {})
        const;

  private:
    Schedule scheduleMasked(const std::vector<FlowSpec> &flows,
                            const std::vector<double> &priorities,
                            const std::vector<bool> &alive) const;

    /**
     * Compact sub-ILP over @p cluster's members: variables and
     * constraints only for member nodes, the flow round budgets
     * scaled to the intra-cluster share. Returns full-width
     * allocations with zeros outside the cluster; nodePower is left
     * empty (the caller computes it over the merged schedule).
     */
    Schedule
    scheduleClusterMasked(const std::vector<FlowSpec> &flows,
                          const std::vector<double> &priorities,
                          const std::vector<bool> &alive,
                          std::size_t cluster) const;

    /** Cluster-restricted greedy repair (same policy as greedyRepair). */
    void
    greedyRepairCluster(const std::vector<FlowSpec> &flows,
                        Schedule &repaired,
                        const std::vector<bool> &alive,
                        std::size_t cluster) const;

    /**
     * Greedy backbone stitching: fit each networked flow's per-cluster
     * relay aggregates into the backbone share of its round budget,
     * uniformly scaling sender electrodes down (or starving the flow)
     * when they do not fit.
     */
    void stitchBackbone(const std::vector<FlowSpec> &flows,
                        Schedule &combined,
                        const std::vector<bool> &alive) const;

    /** Recompute totals/throughput/nodePower after a merge or stitch. */
    void finalizeSchedule(const std::vector<FlowSpec> &flows,
                          const std::vector<double> &priorities,
                          Schedule &combined,
                          const std::vector<bool> &alive) const;

    SystemConfig systemConfig;
    net::ClusterPlan effectivePlan;
};

} // namespace scalo::sched
