#include "scalo/sched/architectures.hpp"

#include "scalo/util/logging.hpp"

namespace scalo::sched {

std::string_view
architectureName(Architecture arch)
{
    switch (arch) {
      case Architecture::Scalo:
        return "SCALO";
      case Architecture::ScaloNoHash:
        return "SCALO No-Hash";
      case Architecture::Central:
        return "Central";
      case Architecture::CentralNoHash:
        return "Central No-Hash";
      case Architecture::HaloNvm:
        return "HALO+NVM";
    }
    SCALO_PANIC("unknown architecture");
}

std::string_view
taskName(Task task)
{
    switch (task) {
      case Task::SeizureDetection:
        return "Seizure Detection";
      case Task::SignalSimilarity:
        return "Signal Similarity";
      case Task::MiSvm:
        return "MI SVM";
      case Task::MiKf:
        return "MI KF";
      case Task::MiNn:
        return "MI NN";
      case Task::SpikeSorting:
        return "Spike Sorting";
    }
    SCALO_PANIC("unknown task");
}

std::vector<Architecture>
allArchitectures()
{
    return {Architecture::Scalo, Architecture::ScaloNoHash,
            Architecture::Central, Architecture::CentralNoHash,
            Architecture::HaloNvm};
}

std::vector<Task>
allTasks()
{
    return {Task::SeizureDetection, Task::SignalSimilarity,
            Task::MiSvm, Task::MiKf, Task::MiNn, Task::SpikeSorting};
}

namespace {

/** Strip networking from a flow (wired centralized substrate). */
FlowSpec
wired(FlowSpec flow)
{
    if (flow.network) {
        flow.leak -= net::defaultRadio().power;
        flow.network.reset();
    }
    return flow;
}

/** Scale a flow's dynamic cost (software fallback / exact compare). */
FlowSpec
scaledCost(FlowSpec flow, double factor)
{
    flow.linPerElectrode *= factor;
    flow.quadPerElectrode2 *= factor;
    return flow;
}

/** The base flow for a task under hash-enabled processing. */
FlowSpec
taskFlow(Task task, bool distributed)
{
    switch (task) {
      case Task::SeizureDetection:
        return seizureDetectionFlow();
      case Task::SignalSimilarity:
        return hashSimilarityFlow(net::Pattern::AllToAll);
      case Task::MiSvm:
        return miSvmFlow();
      case Task::MiKf:
        return miKfFlow();
      case Task::MiNn:
        return miNnFlow();
      case Task::SpikeSorting:
        return spikeSortingFlow();
    }
    (void)distributed;
    SCALO_PANIC("unknown task");
}

/** The exact (no-hash) counterpart of a task's flow. */
FlowSpec
noHashTaskFlow(Task task)
{
    switch (task) {
      case Task::SignalSimilarity:
        return dtwSimilarityFlow(net::Pattern::AllToAll);
      case Task::SpikeSorting:
        return scaledCost(spikeSortingFlow(), kExactSpikeSortFactor);
      default:
        // Tasks that never used hashes are unchanged.
        return taskFlow(task, true);
    }
}

/**
 * HALO+NVM software-fallback penalty for tasks whose SCALO PEs do not
 * exist in HALO; the hash pipelines and the LIN ALG cluster fall back
 * to the 20 MHz MC (Section 6.1: 10-100x worse than Central).
 */
double
mcPenalty(Task task)
{
    switch (task) {
      case Task::SeizureDetection:
      case Task::MiSvm:
        return 1.0; // HALO's own PEs suffice
      case Task::SignalSimilarity:
        return 100.0; // hash generation + collision check on the MC
      case Task::MiKf:
        return 4.0; // matrix algebra on the MC
      case Task::MiNn:
        return 50.0; // dense layers on the MC
      case Task::SpikeSorting:
        // Hashing on the MC is slower than exact matching on a PE:
        // 40% below Central No-Hash (Section 6.1).
        return 0.0; // handled specially below
    }
    SCALO_PANIC("unknown task");
}

} // namespace

units::MegabitsPerSecond
maxAggregateThroughput(Architecture arch, Task task,
                       std::size_t sites, units::Milliwatts power_cap)
{
    SystemConfig config;
    config.powerCap = power_cap;

    switch (arch) {
      case Architecture::Scalo: {
        config.nodes = sites;
        Scheduler scheduler(config);
        return scheduler.maxAggregateThroughput(taskFlow(task, true));
      }
      case Architecture::ScaloNoHash: {
        config.nodes = sites;
        Scheduler scheduler(config);
        return scheduler.maxAggregateThroughput(noHashTaskFlow(task));
      }
      case Architecture::Central: {
        config.nodes = 1;
        config.wirelessNetwork = false;
        Scheduler scheduler(config);
        return scheduler.maxAggregateThroughput(
            wired(taskFlow(task, false)));
      }
      case Architecture::CentralNoHash: {
        config.nodes = 1;
        config.wirelessNetwork = false;
        Scheduler scheduler(config);
        if (task == Task::SignalSimilarity) {
            // Exact all-pair comparison of the full stream: 250x the
            // hash-filtered cost (Section 6.1).
            return scheduler.maxAggregateThroughput(scaledCost(
                wired(taskFlow(task, false)),
                kExactSimilarityFactor));
        }
        return scheduler.maxAggregateThroughput(
            wired(noHashTaskFlow(task)));
      }
      case Architecture::HaloNvm: {
        if (task == Task::SpikeSorting) {
            // Hash matching on the MC: 40% below Central No-Hash.
            return 0.6 * maxAggregateThroughput(
                             Architecture::CentralNoHash, task, sites,
                             power_cap);
        }
        const units::MegabitsPerSecond central =
            maxAggregateThroughput(Architecture::Central, task, sites,
                                   power_cap);
        return central / mcPenalty(task);
      }
    }
    SCALO_PANIC("unknown architecture");
}

} // namespace scalo::sched
