/**
 * @file
 * Synthetic multi-site iEEG generator. Stands in for the Mayo Clinic
 * patient recording (label I001_P013: 76 electrodes, parietal and
 * occipital lobes, upsampled to 30 kHz and split across implants) used
 * in the paper's evaluation; see DESIGN.md for the substitution
 * rationale.
 *
 * The generator produces what the experiments actually require:
 *  - pink-noise background activity, uncorrelated across sites;
 *  - annotated seizure episodes: large-amplitude 3-8 Hz oscillations
 *    shared by all electrodes of a site (plus per-electrode noise);
 *  - seizure propagation: the episode reaches other sites after a
 *    configurable lag, so cross-site windows during a seizure are
 *    correlated and background windows are not.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "scalo/util/types.hpp"

namespace scalo::data {

/** One annotated seizure episode (ground truth). */
struct SeizureEvent
{
    /** Onset at the origin site (seconds). */
    double onsetSec;
    /** Episode length (seconds). */
    double durationSec;
    /** Site where the seizure starts. */
    NodeId originNode;
    /** Onset lag at each other node (seconds; origin has 0). */
    std::vector<double> onsetLagSec;
};

/** Generator configuration. */
struct IeegConfig
{
    std::size_t nodes = 4;
    std::size_t electrodesPerNode = 8;
    double sampleRateHz = constants::kSampleRateHz;
    double durationSec = 5.0;
    /** Mean seizures per minute of recording. */
    double seizuresPerMinute = 6.0;
    /** Seizure episode length (seconds). */
    double seizureDurationSec = 1.0;
    /** Inter-site propagation lag (seconds per hop). */
    double propagationLagSec = 0.05;
    /** Background RMS amplitude (ADC counts). */
    double backgroundAmplitude = 300.0;
    /** Seizure oscillation amplitude (ADC counts). */
    double seizureAmplitude = 3'000.0;
    std::uint64_t seed = 0x1ee9;
};

/** A generated dataset: traces plus ground-truth annotations. */
class IeegDataset
{
  public:
    /** Trace of one electrode: traces()[node][electrode]. */
    const std::vector<std::vector<std::vector<Sample>>> &
    traces() const
    {
        return electrodeTraces;
    }

    const std::vector<SeizureEvent> &seizures() const { return events; }
    const IeegConfig &config() const { return cfg; }

    /** Whether @p node is inside a seizure episode at @p time_sec. */
    bool inSeizure(NodeId node, double time_sec) const;

    /** Total samples per electrode. */
    std::size_t sampleCount() const;

  private:
    friend IeegDataset generateIeeg(const IeegConfig &config);

    IeegConfig cfg;
    std::vector<std::vector<std::vector<Sample>>> electrodeTraces;
    std::vector<SeizureEvent> events;
};

/** Generate a dataset from a configuration (deterministic per seed). */
IeegDataset generateIeeg(const IeegConfig &config);

} // namespace scalo::data
