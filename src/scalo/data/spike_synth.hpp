/**
 * @file
 * MEArec-style synthetic extracellular spike generator. Stands in for
 * the SpikeForest / Kilosort / MEArec datasets of Section 5 (see
 * DESIGN.md): ground-truth templates, Poisson firing with a refractory
 * period, per-spike amplitude jitter, slow electrode drift, additive
 * noise, and occasional overlapping spikes - the phenomena that make
 * spike sorting hard.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "scalo/util/types.hpp"

namespace scalo::data {

/** Ground-truth firing event. */
struct SpikeEvent
{
    /** Sample index of the spike peak. */
    std::size_t sampleIndex;
    /** Ground-truth neuron identity. */
    int neuron;
};

/** Generator configuration. */
struct SpikeConfig
{
    int neurons = 10;
    double sampleRateHz = constants::kSampleRateHz;
    double durationSec = 5.0;
    /** Mean firing rate per neuron (Hz). */
    double firingRateHz = 12.0;
    /** Spike waveform length in samples. */
    std::size_t waveformSamples = 48;
    /** Additive background noise RMS (relative to unit spike peak). */
    double noiseStd = 0.08;
    /** Per-spike amplitude jitter (fractional std). */
    double amplitudeJitter = 0.06;
    /** Total linear amplitude drift over the recording (fraction). */
    double drift = 0.1;
    /** Absolute refractory period (seconds). */
    double refractorySec = 0.002;
    std::uint64_t seed = 0x59143;
};

/** A generated recording with its ground truth. */
struct SpikeDataset
{
    SpikeConfig config;
    /** The combined electrode trace (single channel). */
    std::vector<double> trace;
    /** Ground-truth events sorted by time. */
    std::vector<SpikeEvent> events;
    /** Noise-free unit-amplitude template per neuron. */
    std::vector<std::vector<double>> templates;

    /** Extract the waveform window centred on @p event. */
    std::vector<double> waveformAt(const SpikeEvent &event) const;
};

/** Generate a dataset (deterministic per seed). */
SpikeDataset generateSpikes(const SpikeConfig &config);

/**
 * Build the distinct biphasic template of one neuron: a negative
 * sodium trough followed by a slower positive repolarisation hump,
 * with per-neuron width/amplitude/asymmetry.
 */
std::vector<double> makeTemplate(int neuron, std::size_t samples,
                                 std::uint64_t seed);

} // namespace scalo::data
