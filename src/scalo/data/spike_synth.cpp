#include "scalo/data/spike_synth.hpp"

#include <algorithm>
#include <cmath>

#include "scalo/util/logging.hpp"
#include "scalo/util/rng.hpp"

namespace scalo::data {

std::vector<double>
makeTemplate(int neuron, std::size_t samples, std::uint64_t seed)
{
    Rng rng(mix64(seed, static_cast<std::uint64_t>(neuron) + 1));
    // Randomised tri-phasic shape: optional pre-spike positive bump,
    // sodium trough, repolarisation hump. Wide parameter ranges keep
    // the units separable, as in curated ground-truth datasets.
    const double trough_pos = rng.uniform(0.30, 0.42);
    const double trough_width = rng.uniform(0.025, 0.09);
    const double pre_pos = trough_pos - rng.uniform(0.10, 0.18);
    const double pre_width = rng.uniform(0.03, 0.08);
    const double pre_amp = rng.uniform(0.0, 0.45);
    const double hump_pos = trough_pos + rng.uniform(0.10, 0.30);
    const double hump_width = rng.uniform(0.05, 0.20);
    const double hump_amp = rng.uniform(0.15, 0.65);
    const double trough_amp = -1.0;
    // Slow after-wave (either polarity) and an overall unit
    // amplitude: both vary strongly between real units and carry a
    // lot of the sorting information.
    const double late_pos = hump_pos + rng.uniform(0.12, 0.30);
    const double late_width = rng.uniform(0.06, 0.16);
    const double late_amp = rng.uniform(-0.35, 0.35);
    const double unit_amp = rng.uniform(0.7, 1.6);

    std::vector<double> waveform(samples);
    for (std::size_t i = 0; i < samples; ++i) {
        const double x =
            static_cast<double>(i) / static_cast<double>(samples);
        auto bump = [x](double pos, double width, double amp) {
            return amp *
                   std::exp(-0.5 * std::pow((x - pos) / width, 2.0));
        };
        waveform[i] =
            unit_amp * (bump(trough_pos, trough_width, trough_amp) +
                        bump(pre_pos, pre_width, pre_amp) +
                        bump(hump_pos, hump_width, hump_amp) +
                        bump(late_pos, late_width, late_amp));
    }
    return waveform;
}

std::vector<double>
SpikeDataset::waveformAt(const SpikeEvent &event) const
{
    const std::size_t half = config.waveformSamples / 2;
    std::vector<double> out(config.waveformSamples, 0.0);
    for (std::size_t i = 0; i < config.waveformSamples; ++i) {
        const long index = static_cast<long>(event.sampleIndex) -
                           static_cast<long>(half) +
                           static_cast<long>(i);
        if (index >= 0 && index < static_cast<long>(trace.size()))
            out[i] = trace[static_cast<std::size_t>(index)];
    }
    return out;
}

SpikeDataset
generateSpikes(const SpikeConfig &config)
{
    SCALO_ASSERT(config.neurons >= 1, "need at least one neuron");
    SCALO_ASSERT(config.durationSec > 0.0, "duration must be > 0");

    SpikeDataset dataset;
    dataset.config = config;
    const auto samples = static_cast<std::size_t>(
        config.durationSec * config.sampleRateHz);
    dataset.trace.assign(samples, 0.0);

    for (int n = 0; n < config.neurons; ++n)
        dataset.templates.push_back(
            makeTemplate(n, config.waveformSamples, config.seed));

    Rng rng(config.seed);

    // Poisson firing with refractory period, per neuron.
    const auto refractory = static_cast<std::size_t>(
        config.refractorySec * config.sampleRateHz);
    for (int n = 0; n < config.neurons; ++n) {
        Rng neuron_rng(mix64(config.seed ^ 0xf1e1d,
                             static_cast<std::uint64_t>(n)));
        double t = 0.0;
        std::size_t last = 0;
        bool first = true;
        while (true) {
            // Exponential inter-spike interval.
            const double gap =
                -std::log(1.0 - neuron_rng.uniform()) /
                config.firingRateHz;
            t += gap;
            const auto index = static_cast<std::size_t>(
                t * config.sampleRateHz);
            if (index >= samples)
                break;
            if (!first && index - last < refractory)
                continue;
            dataset.events.push_back({index, n});
            last = index;
            first = false;
        }
    }
    std::sort(dataset.events.begin(), dataset.events.end(),
              [](const SpikeEvent &a, const SpikeEvent &b) {
                  return a.sampleIndex < b.sampleIndex;
              });

    // Superimpose waveforms with jitter and slow drift.
    const std::size_t half = config.waveformSamples / 2;
    for (const SpikeEvent &event : dataset.events) {
        const double progress = static_cast<double>(event.sampleIndex) /
                                static_cast<double>(samples);
        const double drift_gain = 1.0 - config.drift * progress;
        const double amp =
            drift_gain *
            (1.0 + rng.gaussian(0.0, config.amplitudeJitter));
        const auto &tmpl =
            dataset.templates[static_cast<std::size_t>(event.neuron)];
        for (std::size_t i = 0; i < tmpl.size(); ++i) {
            const long index = static_cast<long>(event.sampleIndex) -
                               static_cast<long>(half) +
                               static_cast<long>(i);
            if (index >= 0 && index < static_cast<long>(samples))
                dataset.trace[static_cast<std::size_t>(index)] +=
                    amp * tmpl[i];
        }
    }

    // Background noise.
    for (double &v : dataset.trace)
        v += rng.gaussian(0.0, config.noiseStd);

    return dataset;
}

} // namespace scalo::data
