#include "scalo/data/ieeg_synth.hpp"

#include <cmath>
#include <numbers>

#include "scalo/signal/window.hpp"
#include "scalo/util/logging.hpp"
#include "scalo/util/rng.hpp"

namespace scalo::data {

namespace {

/**
 * Pink-ish background: white noise through a one-pole low-pass mixed
 * with a little raw white noise. Good enough 1/f shape for LSH and
 * detector experiments.
 */
class BackgroundSource
{
  public:
    BackgroundSource(double amplitude, std::uint64_t seed)
        : rng(seed), amplitude(amplitude)
    {
    }

    double
    next()
    {
        // Short correlation time keeps independently-seeded sites
        // statistically uncorrelated even over ~0.1 s windows.
        const double white = rng.gaussian();
        state = 0.98 * state + 0.1 * white;
        return amplitude * (state * 5.0 + 0.3 * white);
    }

  private:
    Rng rng;
    double state = 0.0;
    double amplitude;
};

} // namespace

bool
IeegDataset::inSeizure(NodeId node, double time_sec) const
{
    for (const SeizureEvent &event : events) {
        const double lag =
            node < event.onsetLagSec.size()
                ? event.onsetLagSec[node]
                : 0.0;
        const double start = event.onsetSec + lag;
        if (time_sec >= start && time_sec < start + event.durationSec)
            return true;
    }
    return false;
}

std::size_t
IeegDataset::sampleCount() const
{
    if (electrodeTraces.empty() || electrodeTraces[0].empty())
        return 0;
    return electrodeTraces[0][0].size();
}

IeegDataset
generateIeeg(const IeegConfig &config)
{
    SCALO_ASSERT(config.nodes >= 1, "need at least one node");
    SCALO_ASSERT(config.electrodesPerNode >= 1,
                 "need at least one electrode");
    SCALO_ASSERT(config.durationSec > 0.0, "duration must be > 0");

    IeegDataset dataset;
    dataset.cfg = config;
    const auto samples = static_cast<std::size_t>(
        config.durationSec * config.sampleRateHz);

    Rng rng(config.seed);

    // Schedule seizures: evenly spread with jitter, round-robin
    // origin nodes, fixed per-hop propagation lag.
    const double expected =
        config.seizuresPerMinute * config.durationSec / 60.0;
    const auto seizure_count = static_cast<std::size_t>(expected);
    for (std::size_t s = 0; s < seizure_count; ++s) {
        SeizureEvent event;
        const double slot =
            config.durationSec / static_cast<double>(seizure_count);
        event.onsetSec =
            slot * (static_cast<double>(s) + rng.uniform(0.2, 0.5));
        event.durationSec = config.seizureDurationSec;
        event.originNode = static_cast<NodeId>(s % config.nodes);
        for (std::size_t n = 0; n < config.nodes; ++n) {
            const double hops = std::abs(
                static_cast<double>(n) -
                static_cast<double>(event.originNode));
            event.onsetLagSec.push_back(hops *
                                        config.propagationLagSec);
        }
        dataset.events.push_back(std::move(event));
    }

    // Per-seizure oscillation parameters (shared across sites so that
    // cross-site windows correlate during propagation).
    std::vector<double> seizure_freq, seizure_phase;
    for (std::size_t s = 0; s < dataset.events.size(); ++s) {
        seizure_freq.push_back(rng.uniform(3.0, 8.0));
        seizure_phase.push_back(rng.uniform(0.0, 2.0 * std::numbers::pi));
    }

    // Each seizure also carries a shared broadband burst (the fast
    // ictal activity riding the slow oscillation). It is the same
    // waveform at every site, shifted by the propagation lag, which
    // is what makes even 4 ms windows correlate across sites.
    std::vector<std::vector<double>> seizure_burst;
    for (std::size_t s = 0; s < dataset.events.size(); ++s) {
        const auto burst_samples = static_cast<std::size_t>(
            dataset.events[s].durationSec * config.sampleRateHz);
        Rng burst_rng(mix64(config.seed ^ 0xb4257, s));
        std::vector<double> burst(burst_samples);
        double lp = 0.0;
        for (auto &v : burst) {
            lp = 0.7 * lp + burst_rng.gaussian();
            v = lp;
        }
        seizure_burst.push_back(std::move(burst));
    }

    dataset.electrodeTraces.resize(config.nodes);
    for (std::size_t n = 0; n < config.nodes; ++n) {
        dataset.electrodeTraces[n].resize(config.electrodesPerNode);
        for (std::size_t e = 0; e < config.electrodesPerNode; ++e) {
            BackgroundSource background(
                config.backgroundAmplitude,
                mix64(config.seed, (n << 16) | e));
            Rng jitter(mix64(config.seed ^ 0xfeed, (n << 16) | e));
            // Per-electrode coupling to the seizure source varies a
            // little (electrode placement/attenuation).
            const double coupling = jitter.uniform(0.7, 1.0);

            std::vector<double> trace(samples);
            for (std::size_t i = 0; i < samples; ++i) {
                const double t =
                    static_cast<double>(i) / config.sampleRateHz;
                double value = background.next();
                for (std::size_t s = 0; s < dataset.events.size();
                     ++s) {
                    const SeizureEvent &event = dataset.events[s];
                    const double start =
                        event.onsetSec + event.onsetLagSec[n];
                    if (t < start || t >= start + event.durationSec)
                        continue;
                    // Amplitude envelope: fast attack, slow release.
                    const double phase_t = t - start;
                    const double envelope =
                        std::min(1.0, phase_t / 0.05) *
                        (1.0 - 0.3 * phase_t / event.durationSec);
                    value += coupling * config.seizureAmplitude *
                             envelope *
                             std::sin(2.0 * std::numbers::pi *
                                          seizure_freq[s] *
                                          (t - event.onsetLagSec[n]) +
                                      seizure_phase[s]);
                    const auto burst_index =
                        static_cast<std::size_t>(
                            (phase_t)*config.sampleRateHz);
                    if (burst_index < seizure_burst[s].size()) {
                        value += coupling * 0.3 *
                                 config.seizureAmplitude * envelope *
                                 seizure_burst[s][burst_index];
                    }
                }
                trace[i] = value;
            }
            dataset.electrodeTraces[n][e] =
                signal::toSamples(trace);
        }
    }
    return dataset;
}

} // namespace scalo::data
