/**
 * @file
 * Naive reference implementations of the linalg kernels, retained for
 * parity testing of the optimised kernel layer (mulInto and friends).
 * These use the bounds-checked at() accessor in the classic i-j-k
 * order — slow on purpose. Test-only: nothing on a hot path may call
 * into this header.
 */

#pragma once

#include "scalo/linalg/matrix.hpp"

namespace scalo::linalg::reference {

/** at()-based i-k-j matrix product, the pre-kernel-layer mul(). */
Matrix naiveMul(const Matrix &a, const Matrix &b);

/** at()-based a * b^T via an explicit transposed copy. */
Matrix naiveMulTransposed(const Matrix &a, const Matrix &b);

} // namespace scalo::linalg::reference
