#include "scalo/linalg/reference.hpp"

#include "scalo/util/logging.hpp"

namespace scalo::linalg::reference {

Matrix
naiveMul(const Matrix &a, const Matrix &b)
{
    SCALO_ASSERT(a.cols() == b.rows(), "mul shape mismatch ", a.rows(),
                 "x", a.cols(), " * ", b.rows(), "x", b.cols());
    Matrix out(a.rows(), b.cols());
    for (std::size_t r = 0; r < a.rows(); ++r)
        for (std::size_t k = 0; k < a.cols(); ++k) {
            const double av = a.at(r, k);
            if (av == 0.0)
                continue;
            for (std::size_t c = 0; c < b.cols(); ++c)
                out.at(r, c) += av * b.at(k, c);
        }
    return out;
}

Matrix
naiveMulTransposed(const Matrix &a, const Matrix &b)
{
    return naiveMul(a, b.transposed());
}

} // namespace scalo::linalg::reference
