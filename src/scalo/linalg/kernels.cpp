#include "scalo/linalg/kernels.hpp"

#include <cmath>

#include "scalo/util/contracts.hpp"
#include "scalo/util/logging.hpp"
#include "scalo/util/simd.hpp"

namespace scalo::linalg {

namespace {

using dpack = scalo::simd::dpack;
constexpr std::size_t kW = scalo::simd::kLanes;

} // namespace

double
dot(const double *a, const double *b, std::size_t n)
{
    // W-lane accumulator + fixed left-to-right lane reduce: a
    // deterministic reordering of the naive sum (documented
    // tolerance vs. linalg::reference, not bit parity — unlike
    // axpy/mulInto, which stay element-wise exact).
    dpack acc = dpack::zero();
    std::size_t i = 0;
    for (; i + kW <= n; i += kW)
        acc += dpack::loadu(a + i) * dpack::loadu(b + i);
    double tail = 0.0;
    for (; i < n; ++i)
        tail += a[i] * b[i];
    return acc.sum() + tail;
}

void
axpy(double alpha, const double *x, double *y, std::size_t n)
{
    // Element-wise: each y[i] sees exactly fl(y[i] + fl(alpha*x[i]))
    // whatever the pack width, so widening preserves bit parity of
    // every axpy consumer (mulInto most of all).
    const dpack av = dpack::broadcast(alpha);
    std::size_t i = 0;
    for (; i + kW <= n; i += kW)
        (dpack::loadu(y + i) + av * dpack::loadu(x + i))
            .storeu(y + i);
    for (; i < n; ++i)
        y[i] += alpha * x[i];
}

double
sumAbs(const double *x, std::size_t n)
{
    double acc = 0.0;
    for (std::size_t i = 0; i < n; ++i)
        acc += std::abs(x[i]);
    return acc;
}

double
sum(const double *x, std::size_t n)
{
    double acc = 0.0;
    for (std::size_t i = 0; i < n; ++i)
        acc += x[i];
    return acc;
}

void
matVec(const Matrix &a, const double *x, double *y)
{
    const std::size_t rows = a.rows();
    const std::size_t cols = a.cols();
    for (std::size_t r = 0; r < rows; ++r)
        y[r] = dot(a.rowPtr(r), x, cols);
}

void
mulInto(const Matrix &a, const Matrix &b, Matrix &out)
{
    SCALO_EXPECTS(a.cols() == b.rows());
    SCALO_EXPECTS(&out != &a && &out != &b);
    const std::size_t rows = a.rows();
    const std::size_t inner = a.cols();
    const std::size_t cols = b.cols();
    out.resize(rows, cols);
    // i-k-j with a fused axpy inner loop: streams rows of b and out,
    // which both autovectorizes and stays cache-friendly without an
    // explicit transpose. Accumulation order per output element is
    // ascending k, matching the reference kernel bit-for-bit.
    for (std::size_t r = 0; r < rows; ++r) {
        const double *arow = a.rowPtr(r);
        double *orow = out.rowPtr(r);
        for (std::size_t c = 0; c < cols; ++c)
            orow[c] = 0.0;
        for (std::size_t k = 0; k < inner; ++k)
            axpy(arow[k], b.rowPtr(k), orow, cols);
    }
}

void
mulTransposedInto(const Matrix &a, const Matrix &b, Matrix &out)
{
    SCALO_EXPECTS(a.cols() == b.cols());
    SCALO_EXPECTS(&out != &a && &out != &b);
    const std::size_t rows = a.rows();
    const std::size_t inner = a.cols();
    const std::size_t cols = b.rows();
    out.resize(rows, cols);
    // Row-dot-row: both operands are walked contiguously, so a * b^T
    // needs no transposed copy of b.
    for (std::size_t r = 0; r < rows; ++r) {
        const double *arow = a.rowPtr(r);
        double *orow = out.rowPtr(r);
        for (std::size_t c = 0; c < cols; ++c)
            orow[c] = dot(arow, b.rowPtr(c), inner);
    }
}

void
addInto(const Matrix &a, const Matrix &b, Matrix &out)
{
    SCALO_EXPECTS(a.sameShape(b));
    out.resize(a.rows(), a.cols());
    const double *pa = a.data();
    const double *pb = b.data();
    double *po = out.data();
    const std::size_t count = a.rows() * a.cols();
    std::size_t i = 0;
    for (; i + kW <= count; i += kW)
        (dpack::loadu(pa + i) + dpack::loadu(pb + i))
            .storeu(po + i);
    for (; i < count; ++i)
        po[i] = pa[i] + pb[i];
}

void
subInto(const Matrix &a, const Matrix &b, Matrix &out)
{
    SCALO_EXPECTS(a.sameShape(b));
    out.resize(a.rows(), a.cols());
    const double *pa = a.data();
    const double *pb = b.data();
    double *po = out.data();
    const std::size_t count = a.rows() * a.cols();
    std::size_t i = 0;
    for (; i + kW <= count; i += kW)
        (dpack::loadu(pa + i) - dpack::loadu(pb + i))
            .storeu(po + i);
    for (; i < count; ++i)
        po[i] = pa[i] - pb[i];
}

void
inverseInto(const Matrix &m, Matrix &aug, Matrix &out)
{
    SCALO_EXPECTS(m.rows() == m.cols());
    const std::size_t n = m.rows();

    // Augmented [M | I], reduced in place by Gauss-Jordan elimination
    // with partial pivoting, exactly the INV PE's algorithm [105].
    aug.resize(n, 2 * n);
    for (std::size_t r = 0; r < n; ++r) {
        double *row = aug.rowPtr(r);
        const double *src = m.rowPtr(r);
        for (std::size_t c = 0; c < n; ++c)
            row[c] = src[c];
        for (std::size_t c = n; c < 2 * n; ++c)
            row[c] = 0.0;
        row[n + r] = 1.0;
    }

    for (std::size_t col = 0; col < n; ++col) {
        // Partial pivot: largest magnitude in this column.
        std::size_t pivot = col;
        double pivot_mag = std::abs(aug.rowPtr(col)[col]);
        for (std::size_t r = col + 1; r < n; ++r) {
            const double mag = std::abs(aug.rowPtr(r)[col]);
            if (mag > pivot_mag) {
                pivot = r;
                pivot_mag = mag;
            }
        }
        if (pivot_mag < 1e-12)
            SCALO_FATAL("singular matrix in inverse()");
        if (pivot != col) {
            double *pr = aug.rowPtr(pivot);
            double *cr = aug.rowPtr(col);
            for (std::size_t c = 0; c < 2 * n; ++c)
                std::swap(pr[c], cr[c]);
        }

        double *crow = aug.rowPtr(col);
        const double inv_pivot = 1.0 / crow[col];
        for (std::size_t c = 0; c < 2 * n; ++c)
            crow[c] *= inv_pivot;

        for (std::size_t r = 0; r < n; ++r) {
            if (r == col)
                continue;
            double *row = aug.rowPtr(r);
            const double factor = row[col];
            if (factor == 0.0)
                continue;
            // row -= factor * crow
            axpy(-factor, crow, row, 2 * n);
        }
    }

    out.resize(n, n);
    for (std::size_t r = 0; r < n; ++r) {
        const double *src = aug.rowPtr(r) + n;
        double *dst = out.rowPtr(r);
        for (std::size_t c = 0; c < n; ++c)
            dst[c] = src[c];
    }
}

} // namespace scalo::linalg
