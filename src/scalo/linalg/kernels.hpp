/**
 * @file
 * Allocation-free, autovectorization-friendly linear-algebra kernels:
 * the optimized substrate under the LIN ALG PE operations and the ML
 * forward paths (Kalman, NN, SVM).
 *
 * Two layers:
 *  - fused scalar kernels over raw spans (`dot`, `axpy`, `sumAbs`):
 *    plain contiguous loops the compiler vectorizes, with no
 *    per-element checking;
 *  - `*Into` matrix operations that write a caller-provided output
 *    matrix, so steady-state pipelines (e.g. one Kalman step per
 *    decode tick) perform no allocation.
 *
 * Contract convention: shapes are validated once at the API boundary
 * with `SCALO_EXPECTS` (on in Debug/sanitizer builds, compiled out in
 * Release), never per element inside the loops. The allocating
 * wrappers in matrix.hpp (`add`, `mul`, ...) keep their always-on
 * `SCALO_ASSERT` shape checks and forward here.
 */

#pragma once

#include <cstddef>

#include "scalo/linalg/matrix.hpp"

namespace scalo::linalg {

/** Dot product over @p n contiguous elements. */
double dot(const double *a, const double *b, std::size_t n);

/** y += alpha * x over @p n contiguous elements. */
void axpy(double alpha, const double *x, double *y, std::size_t n);

/** Sum of |x[i]| over @p n contiguous elements. */
double sumAbs(const double *x, std::size_t n);

/** Sum of x[i] over @p n contiguous elements. */
double sum(const double *x, std::size_t n);

/**
 * y = A x: dense matrix-vector product.
 * @pre x has a.cols() elements, y has a.rows() (y must not alias x).
 */
void matVec(const Matrix &a, const double *x, double *y);

/**
 * out = a * b. @p out is resized to a.rows() x b.cols(); its previous
 * contents are discarded. @p out must not alias @p a or @p b.
 */
void mulInto(const Matrix &a, const Matrix &b, Matrix &out);

/**
 * out = a * b^T without materialising the transpose (row-dot-row, the
 * pattern behind A P A^T / H P H^T in the Kalman step). @p out is
 * resized to a.rows() x b.rows() and must not alias the inputs.
 */
void mulTransposedInto(const Matrix &a, const Matrix &b, Matrix &out);

/** out = a + b (out may alias a or b). */
void addInto(const Matrix &a, const Matrix &b, Matrix &out);

/** out = a - b (out may alias a or b). */
void subInto(const Matrix &a, const Matrix &b, Matrix &out);

/**
 * out = m^-1 via Gauss-Jordan with partial pivoting, using
 * @p aug_scratch as the augmented [M | I] workspace (resized to
 * n x 2n). @throws via SCALO_FATAL if the matrix is singular.
 */
void inverseInto(const Matrix &m, Matrix &aug_scratch, Matrix &out);

} // namespace scalo::linalg
