#include "scalo/linalg/matrix.hpp"

#include <cmath>
#include <limits>

#include "scalo/util/logging.hpp"

namespace scalo::linalg {

Matrix::Matrix(std::size_t rows, std::size_t cols)
    : nRows(rows), nCols(cols), data(rows * cols, 0.0)
{
}

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> init)
{
    nRows = init.size();
    nCols = nRows ? init.begin()->size() : 0;
    data.reserve(nRows * nCols);
    for (const auto &row : init) {
        SCALO_ASSERT(row.size() == nCols, "ragged initializer row");
        for (double v : row)
            data.push_back(v);
    }
}

Matrix
Matrix::identity(std::size_t n)
{
    Matrix m(n, n);
    for (std::size_t i = 0; i < n; ++i)
        m.at(i, i) = 1.0;
    return m;
}

Matrix
Matrix::columnVector(const std::vector<double> &values)
{
    Matrix m(values.size(), 1);
    for (std::size_t i = 0; i < values.size(); ++i)
        m.at(i, 0) = values[i];
    return m;
}

double &
Matrix::at(std::size_t r, std::size_t c)
{
    SCALO_ASSERT(r < nRows && c < nCols, "index (", r, ",", c,
                 ") out of ", nRows, "x", nCols);
    return data[r * nCols + c];
}

double
Matrix::at(std::size_t r, std::size_t c) const
{
    SCALO_ASSERT(r < nRows && c < nCols, "index (", r, ",", c,
                 ") out of ", nRows, "x", nCols);
    return data[r * nCols + c];
}

Matrix
Matrix::transposed() const
{
    Matrix t(nCols, nRows);
    for (std::size_t r = 0; r < nRows; ++r)
        for (std::size_t c = 0; c < nCols; ++c)
            t.at(c, r) = at(r, c);
    return t;
}

std::vector<double>
Matrix::flatten() const
{
    return data;
}

double
Matrix::maxAbsDiff(const Matrix &a, const Matrix &b)
{
    if (!a.sameShape(b))
        return std::numeric_limits<double>::infinity();
    double worst = 0.0;
    for (std::size_t i = 0; i < a.data.size(); ++i)
        worst = std::max(worst, std::abs(a.data[i] - b.data[i]));
    return worst;
}

Matrix
applyStage(Matrix m, const OutputStage &stage)
{
    if (!stage.relu && !stage.normalize)
        return m;
    SCALO_ASSERT(!stage.normalize || stage.stddev > 0.0,
                 "normalisation stddev must be positive");
    for (std::size_t r = 0; r < m.rows(); ++r) {
        for (std::size_t c = 0; c < m.cols(); ++c) {
            double v = m.at(r, c);
            if (stage.normalize)
                v = (v - stage.mean) / stage.stddev;
            if (stage.relu && v < 0.0)
                v = 0.0;
            m.at(r, c) = v;
        }
    }
    return m;
}

Matrix
add(const Matrix &a, const Matrix &b, const OutputStage &stage)
{
    SCALO_ASSERT(a.sameShape(b), "add shape mismatch ", a.rows(), "x",
                 a.cols(), " vs ", b.rows(), "x", b.cols());
    Matrix out(a.rows(), a.cols());
    for (std::size_t r = 0; r < a.rows(); ++r)
        for (std::size_t c = 0; c < a.cols(); ++c)
            out.at(r, c) = a.at(r, c) + b.at(r, c);
    return applyStage(std::move(out), stage);
}

Matrix
sub(const Matrix &a, const Matrix &b)
{
    SCALO_ASSERT(a.sameShape(b), "sub shape mismatch ", a.rows(), "x",
                 a.cols(), " vs ", b.rows(), "x", b.cols());
    Matrix out(a.rows(), a.cols());
    for (std::size_t r = 0; r < a.rows(); ++r)
        for (std::size_t c = 0; c < a.cols(); ++c)
            out.at(r, c) = a.at(r, c) - b.at(r, c);
    return out;
}

Matrix
mul(const Matrix &a, const Matrix &b)
{
    SCALO_ASSERT(a.cols() == b.rows(), "mul shape mismatch ", a.rows(),
                 "x", a.cols(), " * ", b.rows(), "x", b.cols());
    Matrix out(a.rows(), b.cols());
    for (std::size_t r = 0; r < a.rows(); ++r) {
        for (std::size_t k = 0; k < a.cols(); ++k) {
            const double av = a.at(r, k);
            if (av == 0.0)
                continue;
            for (std::size_t c = 0; c < b.cols(); ++c)
                out.at(r, c) += av * b.at(k, c);
        }
    }
    return out;
}

Matrix
mad(const Matrix &a, const Matrix &b, const Matrix &c,
    const OutputStage &stage)
{
    Matrix product = mul(a, b);
    SCALO_ASSERT(product.sameShape(c), "mad constant shape mismatch");
    return add(product, c, stage);
}

Matrix
inverse(const Matrix &m)
{
    SCALO_ASSERT(m.rows() == m.cols(), "inverse of non-square ",
                 m.rows(), "x", m.cols());
    const std::size_t n = m.rows();

    // Augmented [M | I], reduced in place by Gauss-Jordan elimination
    // with partial pivoting, exactly the INV PE's algorithm [105].
    Matrix aug(n, 2 * n);
    for (std::size_t r = 0; r < n; ++r) {
        for (std::size_t c = 0; c < n; ++c)
            aug.at(r, c) = m.at(r, c);
        aug.at(r, n + r) = 1.0;
    }

    for (std::size_t col = 0; col < n; ++col) {
        // Partial pivot: largest magnitude in this column.
        std::size_t pivot = col;
        for (std::size_t r = col + 1; r < n; ++r)
            if (std::abs(aug.at(r, col)) > std::abs(aug.at(pivot, col)))
                pivot = r;
        if (std::abs(aug.at(pivot, col)) < 1e-12)
            SCALO_FATAL("singular matrix in inverse()");
        if (pivot != col)
            for (std::size_t c = 0; c < 2 * n; ++c)
                std::swap(aug.at(pivot, c), aug.at(col, c));

        const double inv_pivot = 1.0 / aug.at(col, col);
        for (std::size_t c = 0; c < 2 * n; ++c)
            aug.at(col, c) *= inv_pivot;

        for (std::size_t r = 0; r < n; ++r) {
            if (r == col)
                continue;
            const double factor = aug.at(r, col);
            if (factor == 0.0)
                continue;
            for (std::size_t c = 0; c < 2 * n; ++c)
                aug.at(r, c) -= factor * aug.at(col, c);
        }
    }

    Matrix inv(n, n);
    for (std::size_t r = 0; r < n; ++r)
        for (std::size_t c = 0; c < n; ++c)
            inv.at(r, c) = aug.at(r, n + c);
    return inv;
}

} // namespace scalo::linalg
