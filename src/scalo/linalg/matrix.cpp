#include "scalo/linalg/matrix.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "scalo/linalg/kernels.hpp"
#include "scalo/util/contracts.hpp"
#include "scalo/util/logging.hpp"

namespace scalo::linalg {

Matrix::Matrix(std::size_t rows, std::size_t cols)
    : nRows(rows), nCols(cols), storage(rows * cols, 0.0)
{
}

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> init)
{
    nRows = init.size();
    nCols = nRows ? init.begin()->size() : 0;
    storage.reserve(nRows * nCols);
    for (const auto &row : init) {
        SCALO_ASSERT(row.size() == nCols, "ragged initializer row");
        for (double v : row)
            storage.push_back(v);
    }
}

Matrix
Matrix::identity(std::size_t n)
{
    Matrix m(n, n);
    for (std::size_t i = 0; i < n; ++i)
        m.storage[i * n + i] = 1.0;
    return m;
}

Matrix
Matrix::columnVector(const std::vector<double> &values)
{
    Matrix m(values.size(), 1);
    for (std::size_t i = 0; i < values.size(); ++i)
        m.storage[i] = values[i];
    return m;
}

double &
Matrix::at(std::size_t r, std::size_t c)
{
    SCALO_ASSERT(r < nRows && c < nCols, "index (", r, ",", c,
                 ") out of ", nRows, "x", nCols);
    return storage[r * nCols + c];
}

double
Matrix::at(std::size_t r, std::size_t c) const
{
    SCALO_ASSERT(r < nRows && c < nCols, "index (", r, ",", c,
                 ") out of ", nRows, "x", nCols);
    return storage[r * nCols + c];
}

double *
Matrix::rowPtr(std::size_t r)
{
    SCALO_EXPECTS(r < nRows);
    return storage.data() + r * nCols;
}

const double *
Matrix::rowPtr(std::size_t r) const
{
    SCALO_EXPECTS(r < nRows);
    return storage.data() + r * nCols;
}

std::span<double>
Matrix::row(std::size_t r)
{
    return {rowPtr(r), nCols};
}

std::span<const double>
Matrix::row(std::size_t r) const
{
    return {rowPtr(r), nCols};
}

void
Matrix::resize(std::size_t rows, std::size_t cols)
{
    nRows = rows;
    nCols = cols;
    storage.resize(rows * cols);
}

Matrix
Matrix::transposed() const
{
    Matrix t(nCols, nRows);
    for (std::size_t r = 0; r < nRows; ++r) {
        const double *src = rowPtr(r);
        double *dst = t.storage.data() + r;
        for (std::size_t c = 0; c < nCols; ++c)
            dst[c * nRows] = src[c];
    }
    return t;
}

std::vector<double>
Matrix::flatten() const
{
    return storage;
}

double
Matrix::maxAbsDiff(const Matrix &a, const Matrix &b)
{
    if (!a.sameShape(b))
        return std::numeric_limits<double>::infinity();
    double worst = 0.0;
    for (std::size_t i = 0; i < a.storage.size(); ++i)
        worst = std::max(worst, std::abs(a.storage[i] - b.storage[i]));
    return worst;
}

Matrix
applyStage(Matrix m, const OutputStage &stage)
{
    if (!stage.relu && !stage.normalize)
        return m;
    SCALO_ASSERT(!stage.normalize || stage.stddev > 0.0,
                 "normalisation stddev must be positive");
    double *v = m.data();
    const std::size_t count = m.rows() * m.cols();
    if (stage.normalize) {
        const double inv_sd = 1.0 / stage.stddev;
        for (std::size_t i = 0; i < count; ++i)
            v[i] = (v[i] - stage.mean) * inv_sd;
    }
    if (stage.relu) {
        for (std::size_t i = 0; i < count; ++i)
            if (v[i] < 0.0)
                v[i] = 0.0;
    }
    return m;
}

Matrix
add(const Matrix &a, const Matrix &b, const OutputStage &stage)
{
    SCALO_ASSERT(a.sameShape(b), "add shape mismatch ", a.rows(), "x",
                 a.cols(), " vs ", b.rows(), "x", b.cols());
    Matrix out(a.rows(), a.cols());
    addInto(a, b, out);
    return applyStage(std::move(out), stage);
}

Matrix
sub(const Matrix &a, const Matrix &b)
{
    SCALO_ASSERT(a.sameShape(b), "sub shape mismatch ", a.rows(), "x",
                 a.cols(), " vs ", b.rows(), "x", b.cols());
    Matrix out(a.rows(), a.cols());
    subInto(a, b, out);
    return out;
}

Matrix
mul(const Matrix &a, const Matrix &b)
{
    SCALO_ASSERT(a.cols() == b.rows(), "mul shape mismatch ", a.rows(),
                 "x", a.cols(), " * ", b.rows(), "x", b.cols());
    Matrix out;
    mulInto(a, b, out);
    return out;
}

Matrix
mad(const Matrix &a, const Matrix &b, const Matrix &c,
    const OutputStage &stage)
{
    Matrix product = mul(a, b);
    SCALO_ASSERT(product.sameShape(c), "mad constant shape mismatch");
    addInto(product, c, product);
    return applyStage(std::move(product), stage);
}

Matrix
inverse(const Matrix &m)
{
    SCALO_ASSERT(m.rows() == m.cols(), "inverse of non-square ",
                 m.rows(), "x", m.cols());
    Matrix aug, inv;
    inverseInto(m, aug, inv);
    return inv;
}

} // namespace scalo::linalg
