/**
 * @file
 * Dense row-major matrix and the operations provided by SCALO's LIN ALG
 * PE cluster (Section 3.2): multiply-add with a constant matrix (MAD),
 * addition (ADD), subtraction (SUB), Gauss-Jordan inversion (INV), and
 * the fused ReLU / normalisation output stages configurable on the MAD
 * and ADD units.
 */

#pragma once

#include <cstddef>
#include <initializer_list>
#include <span>
#include <vector>

namespace scalo::linalg {

/** Dense row-major matrix of doubles. */
class Matrix
{
  public:
    /** Empty 0x0 matrix. */
    Matrix() = default;

    /** Zero-initialised rows x cols matrix. */
    Matrix(std::size_t rows, std::size_t cols);

    /** Matrix from nested initializer lists (rows of equal length). */
    Matrix(std::initializer_list<std::initializer_list<double>> init);

    /** Identity matrix of size n. */
    static Matrix identity(std::size_t n);

    /** Column vector from values. */
    static Matrix columnVector(const std::vector<double> &values);

    std::size_t rows() const { return nRows; }
    std::size_t cols() const { return nCols; }

    double &at(std::size_t r, std::size_t c);
    double at(std::size_t r, std::size_t c) const;

    double &operator()(std::size_t r, std::size_t c) { return at(r, c); }
    double operator()(std::size_t r, std::size_t c) const
    {
        return at(r, c);
    }

    /**
     * Raw pointer to row @p r (kernel-layer access: bounds are the
     * caller's contract, checked only in Debug/sanitizer builds).
     */
    double *rowPtr(std::size_t r);
    const double *rowPtr(std::size_t r) const;

    /** Row @p r as a span of cols() elements. */
    std::span<double> row(std::size_t r);
    std::span<const double> row(std::size_t r) const;

    /** Contiguous row-major storage (rows() * cols() elements). */
    double *data() { return storage.data(); }
    const double *data() const { return storage.data(); }

    /**
     * Reshape to rows x cols, reusing storage when the element count
     * is unchanged. Element values are unspecified afterwards; every
     * kernel-layer `*Into` consumer overwrites them.
     */
    void resize(std::size_t rows, std::size_t cols);

    /** Transposed copy. */
    Matrix transposed() const;

    /** Flatten to a vector (row-major). */
    std::vector<double> flatten() const;

    /** Max |a - b| over all entries; infinity on shape mismatch. */
    static double maxAbsDiff(const Matrix &a, const Matrix &b);

    bool sameShape(const Matrix &other) const
    {
        return nRows == other.nRows && nCols == other.nCols;
    }

  private:
    std::size_t nRows = 0;
    std::size_t nCols = 0;
    std::vector<double> storage;
};

/** Output stage configurable on the MAD and ADD PEs. */
struct OutputStage
{
    /** Suppress negative outputs (the PE's ReLU parameter). */
    bool relu = false;
    /** Normalise outputs: (y - mean) / stddev (stddev > 0 required). */
    bool normalize = false;
    double mean = 0.0;
    double stddev = 1.0;
};

/** a + b (the ADD PE), with optional output stage. */
Matrix add(const Matrix &a, const Matrix &b, const OutputStage &stage = {});

/** a - b (the SUB PE). */
Matrix sub(const Matrix &a, const Matrix &b);

/** a * b (the MAD PE configured as MUL only). */
Matrix mul(const Matrix &a, const Matrix &b);

/**
 * a * b + c (the MAD PE: multiply and add with a constant matrix), with
 * the optional fused ReLU/normalisation output stage.
 */
Matrix mad(const Matrix &a, const Matrix &b, const Matrix &c,
           const OutputStage &stage = {});

/**
 * Matrix inverse via Gauss-Jordan elimination with partial pivoting
 * (the INV PE). @throws via SCALO_FATAL if the matrix is singular.
 */
Matrix inverse(const Matrix &m);

/** Apply an output stage to every element of a matrix copy. */
Matrix applyStage(Matrix m, const OutputStage &stage);

} // namespace scalo::linalg
