/**
 * @file
 * SSH (Sketch, Shingle & Hash) locality-sensitive hashing for time
 * series [Luo & Shrivastava 2017], as implemented by SCALO's HCONV and
 * NGRAM PEs (Sections 2.4 and 3.2).
 *
 * Pipeline:
 *  1. HCONV: slide a window over the signal, dot-product each position
 *     with a random vector; the sketch bit is the sign of the product.
 *  2. NGRAM: count occurrences of every n-gram of consecutive sketch
 *     bits (the "shingles"), then run a randomized weighted min-hash
 *     over the weighted shingle set.
 *
 * The weighted min-hash uses a deterministic-latency replica scheme
 * (shingle counts are capped) instead of the variable-latency rejection
 * sampler of the original work, mirroring the paper's substitution of
 * the consistent-hashing method [54].
 *
 * The paper's discovery: varying windowSize/ngramSize makes the same
 * hash family serve DTW, Euclidean, and cross-correlation (Figure 14).
 */

#pragma once

#include <cstdint>
#include <vector>

#include "scalo/lsh/signature.hpp"

namespace scalo::lsh {

/** Configuration of the SSH hash family. */
struct SshParams
{
    /** Sliding dot-product window length in samples (HCONV). */
    unsigned windowSize = 24;
    /** Sliding window stride in samples (HCONV). */
    unsigned stride = 4;
    /** Shingle length in sketch bits (NGRAM). */
    unsigned ngramSize = 5;
    /** Number of OR-construction bands in the output signature. */
    unsigned bands = 2;
    /** Bits per band. */
    unsigned bandBits = 8;
    /**
     * AND-construction rows per band: each band concatenates this many
     * independent weighted min-hashes (bandBits must be divisible by
     * it). More rows -> steeper match-probability curve.
     */
    unsigned rowsPerBand = 2;
    /** Deterministic-latency cap on per-shingle counts. */
    unsigned maxShingleCount = 8;
    /** Seed for the random projection and min-hash mixers. */
    std::uint64_t seed = 0x55a10c0deULL;
};

/**
 * Reusable workspace for the SSH pipeline. The NGRAM counting table
 * spans all 2^ngramSize patterns (64K counters at the cap) — a
 * per-call allocation on the old hot path. One scratch serves any
 * number of sequential calls: the table is kept all-zero between
 * calls by re-zeroing only the entries a call touched, so batched
 * hashing is allocation-free AND skips the full-table sweep.
 */
struct SshScratch
{
    std::vector<std::uint8_t> bits;
    std::vector<std::pair<std::uint32_t, std::uint32_t>> counted;
    /** 2^ngramSize counters; all-zero between calls (invariant). */
    std::vector<std::uint32_t> table;
    /** Patterns with non-zero counts in the current call. */
    std::vector<std::uint32_t> touched;
};

/** SSH hasher for one signal length / parameter set. */
class SshHasher
{
  public:
    explicit SshHasher(const SshParams &params);

    /**
     * HCONV stage: the sketch bit string of @p input.
     * @return one bit (0/1) per window position.
     */
    std::vector<std::uint8_t>
    sketch(const std::vector<double> &input) const;

    /** As above into a caller-provided buffer (no allocation). */
    void sketch(const std::vector<double> &input,
                std::vector<std::uint8_t> &bits) const;

    /**
     * NGRAM stage on a precomputed sketch: weighted shingle counts.
     * @return pairs of (shingle pattern, capped count)
     */
    std::vector<std::pair<std::uint32_t, std::uint32_t>>
    shingles(const std::vector<std::uint8_t> &sketch_bits) const;

    /**
     * As above into @p scratch.counted (ascending pattern order,
     * identical to the allocating overload), reusing the scratch's
     * counting table.
     */
    void shingles(const std::vector<std::uint8_t> &sketch_bits,
                  SshScratch &scratch) const;

    /** Full pipeline: signature of @p input. */
    Signature signature(const std::vector<double> &input) const;

    /** As above with caller-provided scratch (no allocation). */
    Signature signature(const std::vector<double> &input,
                        SshScratch &scratch) const;

    /**
     * Batched pipeline: signatures of many windows through one
     * scratch. out[i] is bitwise identical to signature(*windows[i])
     * — batching changes allocation behaviour, never hashes (ingest-
     * side and probe-side signatures must agree however they were
     * produced).
     */
    void
    signatureMany(const std::vector<const std::vector<double> *> &windows,
                  SshScratch &scratch,
                  std::vector<Signature> &out) const;

    const SshParams &params() const { return config; }

  private:
    /** One weighted min-hash band over the shingle multiset. */
    std::uint64_t minHashBand(
        const std::vector<std::pair<std::uint32_t, std::uint32_t>> &s,
        unsigned band) const;

    SshParams config;
    std::vector<double> projection;
};

} // namespace scalo::lsh
