/**
 * @file
 * SSH (Sketch, Shingle & Hash) locality-sensitive hashing for time
 * series [Luo & Shrivastava 2017], as implemented by SCALO's HCONV and
 * NGRAM PEs (Sections 2.4 and 3.2).
 *
 * Pipeline:
 *  1. HCONV: slide a window over the signal, dot-product each position
 *     with a random vector; the sketch bit is the sign of the product.
 *  2. NGRAM: count occurrences of every n-gram of consecutive sketch
 *     bits (the "shingles"), then run a randomized weighted min-hash
 *     over the weighted shingle set.
 *
 * The weighted min-hash uses a deterministic-latency replica scheme
 * (shingle counts are capped) instead of the variable-latency rejection
 * sampler of the original work, mirroring the paper's substitution of
 * the consistent-hashing method [54].
 *
 * The paper's discovery: varying windowSize/ngramSize makes the same
 * hash family serve DTW, Euclidean, and cross-correlation (Figure 14).
 */

#pragma once

#include <cstdint>
#include <vector>

#include "scalo/lsh/signature.hpp"

namespace scalo::lsh {

/** Configuration of the SSH hash family. */
struct SshParams
{
    /** Sliding dot-product window length in samples (HCONV). */
    unsigned windowSize = 24;
    /** Sliding window stride in samples (HCONV). */
    unsigned stride = 4;
    /** Shingle length in sketch bits (NGRAM). */
    unsigned ngramSize = 5;
    /** Number of OR-construction bands in the output signature. */
    unsigned bands = 2;
    /** Bits per band. */
    unsigned bandBits = 8;
    /**
     * AND-construction rows per band: each band concatenates this many
     * independent weighted min-hashes (bandBits must be divisible by
     * it). More rows -> steeper match-probability curve.
     */
    unsigned rowsPerBand = 2;
    /** Deterministic-latency cap on per-shingle counts. */
    unsigned maxShingleCount = 8;
    /** Seed for the random projection and min-hash mixers. */
    std::uint64_t seed = 0x55a10c0deULL;
};

/** SSH hasher for one signal length / parameter set. */
class SshHasher
{
  public:
    explicit SshHasher(const SshParams &params);

    /**
     * HCONV stage: the sketch bit string of @p input.
     * @return one bit (0/1) per window position.
     */
    std::vector<std::uint8_t>
    sketch(const std::vector<double> &input) const;

    /**
     * NGRAM stage on a precomputed sketch: weighted shingle counts.
     * @return pairs of (shingle pattern, capped count)
     */
    std::vector<std::pair<std::uint32_t, std::uint32_t>>
    shingles(const std::vector<std::uint8_t> &sketch_bits) const;

    /** Full pipeline: signature of @p input. */
    Signature signature(const std::vector<double> &input) const;

    const SshParams &params() const { return config; }

  private:
    /** One weighted min-hash band over the shingle multiset. */
    std::uint64_t minHashBand(
        const std::vector<std::pair<std::uint32_t, std::uint32_t>> &s,
        unsigned band) const;

    SshParams config;
    std::vector<double> projection;
};

} // namespace scalo::lsh
