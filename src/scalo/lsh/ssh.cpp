#include "scalo/lsh/ssh.hpp"

#include <algorithm>
#include <limits>

#include "scalo/linalg/kernels.hpp"
#include "scalo/util/logging.hpp"
#include "scalo/util/rng.hpp"

namespace scalo::lsh {

SshHasher::SshHasher(const SshParams &params) : config(params)
{
    SCALO_ASSERT(config.windowSize >= 1, "windowSize must be >= 1");
    SCALO_ASSERT(config.stride >= 1, "stride must be >= 1");
    SCALO_ASSERT(config.ngramSize >= 1 && config.ngramSize <= 16,
                 "ngramSize out of range: ", config.ngramSize);
    SCALO_ASSERT(config.bands >= 1 &&
                     config.bands * config.bandBits <= 64,
                 "bad band configuration");
    SCALO_ASSERT(config.rowsPerBand >= 1 &&
                     config.bandBits % config.rowsPerBand == 0,
                 "bandBits must divide evenly into rowsPerBand");
    SCALO_ASSERT(config.maxShingleCount >= 1, "maxShingleCount >= 1");

    // Random +/-1 projection vector shared by all windows (HCONV).
    Rng rng(config.seed);
    projection.reserve(config.windowSize);
    for (unsigned i = 0; i < config.windowSize; ++i)
        projection.push_back(rng.sign());
}

void
SshHasher::sketch(const std::vector<double> &input,
                  std::vector<std::uint8_t> &bits) const
{
    bits.clear();
    if (input.size() < config.windowSize)
        return;
    const std::size_t positions =
        (input.size() - config.windowSize) / config.stride + 1;
    bits.reserve(positions);
    for (std::size_t p = 0; p < positions; ++p) {
        // HCONV: the +/-1 projection of each sliding window is one
        // contiguous dot against the shared projection vector (the
        // wide linalg kernel — ingest-side and probe-side sketches
        // agree because every path goes through this one dot).
        const double proj = linalg::dot(input.data() + p * config.stride,
                                        projection.data(),
                                        config.windowSize);
        bits.push_back(proj > 0.0 ? 1 : 0);
    }
}

std::vector<std::uint8_t>
SshHasher::sketch(const std::vector<double> &input) const
{
    std::vector<std::uint8_t> bits;
    sketch(input, bits);
    return bits;
}

void
SshHasher::shingles(const std::vector<std::uint8_t> &sketch_bits,
                    SshScratch &scratch) const
{
    scratch.counted.clear();
    if (sketch_bits.size() < config.ngramSize)
        return;

    // Counting table over all 2^n patterns (the NGRAM PE's SRAM table
    // directly; ngramSize <= 16 bounds it at 64K counters). The table
    // lives in the scratch and is all-zero between calls: instead of
    // allocating and later sweeping all 2^n entries, each call tracks
    // the patterns it touched, emits them in sorted order (the same
    // ascending-pattern output as a full-table sweep), and re-zeroes
    // exactly those entries on the way out.
    const std::uint32_t mask =
        (config.ngramSize >= 32)
            ? ~0u
            : ((1u << config.ngramSize) - 1u);
    scratch.table.resize(static_cast<std::size_t>(mask) + 1);
    scratch.touched.clear();

    std::uint32_t pattern = 0;
    for (std::size_t i = 0; i < sketch_bits.size(); ++i) {
        pattern = ((pattern << 1) | (sketch_bits[i] & 1)) & mask;
        if (i + 1 >= config.ngramSize) {
            if (scratch.table[pattern]++ == 0)
                scratch.touched.push_back(pattern);
        }
    }

    std::sort(scratch.touched.begin(), scratch.touched.end());
    scratch.counted.reserve(scratch.touched.size());
    for (const std::uint32_t p : scratch.touched) {
        const auto count = std::min<std::uint32_t>(
            scratch.table[p],
            static_cast<std::uint32_t>(config.maxShingleCount));
        scratch.counted.emplace_back(p, count);
        scratch.table[p] = 0;
    }
}

std::vector<std::pair<std::uint32_t, std::uint32_t>>
SshHasher::shingles(const std::vector<std::uint8_t> &sketch_bits) const
{
    SshScratch scratch;
    shingles(sketch_bits, scratch);
    return std::move(scratch.counted);
}

std::uint64_t
SshHasher::minHashBand(
    const std::vector<std::pair<std::uint32_t, std::uint32_t>> &s,
    unsigned band) const
{
    // Each band concatenates rowsPerBand independent weighted min-hash
    // buckets (AND-construction). A single weighted min-hash works on
    // integer weights via replicas: every (shingle, replica) pair hashes
    // once and the global minimum is shared between two multisets with
    // probability equal to their weighted Jaccard similarity. Counts
    // are capped, so latency is fixed (the deterministic alternative to
    // the variable-latency randomisation of the original SSH work).
    const unsigned row_bits = config.bandBits / config.rowsPerBand;
    std::uint64_t band_value = 0;
    for (unsigned row = 0; row < config.rowsPerBand; ++row) {
        const std::uint64_t row_seed =
            mix64(config.seed, 0x9e3779b9ULL + band * 131u + row);
        std::uint64_t best = std::numeric_limits<std::uint64_t>::max();
        std::uint64_t best_key = 0;
        for (const auto &[pattern, count] : s) {
            for (std::uint32_t replica = 0; replica < count; ++replica) {
                const std::uint64_t key =
                    (static_cast<std::uint64_t>(pattern) << 32) |
                    replica;
                const std::uint64_t h = mix64(key, row_seed);
                if (h < best) {
                    best = h;
                    best_key = key;
                }
            }
        }
        std::uint64_t bucket = 0;
        if (best != std::numeric_limits<std::uint64_t>::max()) {
            // Bucket the winning element (not its rank) into row_bits.
            bucket = mix64(best_key, row_seed ^ 0xabcdef12345ULL);
        }
        if (row_bits < 64)
            bucket &= (1ULL << row_bits) - 1;
        band_value |= bucket << (row * row_bits);
    }
    return band_value;
}

Signature
SshHasher::signature(const std::vector<double> &input,
                     SshScratch &scratch) const
{
    sketch(input, scratch.bits);
    shingles(scratch.bits, scratch);
    std::uint64_t packed = 0;
    for (unsigned b = 0; b < config.bands; ++b)
        packed |= minHashBand(scratch.counted, b)
                  << (b * config.bandBits);
    return {packed, config.bands, config.bandBits};
}

Signature
SshHasher::signature(const std::vector<double> &input) const
{
    SshScratch scratch;
    return signature(input, scratch);
}

void
SshHasher::signatureMany(
    const std::vector<const std::vector<double> *> &windows,
    SshScratch &scratch, std::vector<Signature> &out) const
{
    out.clear();
    out.reserve(windows.size());
    for (const std::vector<double> *window : windows) {
        SCALO_ASSERT(window != nullptr, "null window in hash batch");
        out.push_back(signature(*window, scratch));
    }
}

} // namespace scalo::lsh
