/**
 * @file
 * Locality-sensitive hash for Earth Mover's Distance (the EMDH PE),
 * following the chi^2/EMD LSH of Gorisse et al. [40]: project the whole
 * signal onto a random vector, then hash a linear function of the square
 * root of the projection (Section 2.4). The projection step shares the
 * HCONV dot-product hardware.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "scalo/lsh/signature.hpp"

namespace scalo::lsh {

/** Configuration of the EMD hash family. */
struct EmdHashParams
{
    /** Quantisation bucket width in sqrt-projection units. */
    double bucketWidth = 4.0;
    /** Number of OR-construction bands. */
    unsigned bands = 2;
    /** Bits per band. */
    unsigned bandBits = 8;
    /** Seed for projection vectors and per-band offsets. */
    std::uint64_t seed = 0xe3d4a500ULL;
};

/** EMD LSH hasher; one projection vector per band. */
class EmdHasher
{
  public:
    /**
     * @param params      family configuration
     * @param signal_len  expected input length (projection vector size)
     */
    EmdHasher(const EmdHashParams &params, std::size_t signal_len);

    /** Signature of @p input (shifted to non-negative mass internally). */
    Signature signature(const std::vector<double> &input) const;

    const EmdHashParams &params() const { return config; }

  private:
    EmdHashParams config;
    std::vector<std::vector<double>> projections;
    std::vector<double> offsets;
};

} // namespace scalo::lsh
