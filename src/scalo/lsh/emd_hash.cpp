#include "scalo/lsh/emd_hash.hpp"

#include <algorithm>
#include <cmath>

#include "scalo/linalg/kernels.hpp"
#include "scalo/util/logging.hpp"
#include "scalo/util/rng.hpp"

namespace scalo::lsh {

EmdHasher::EmdHasher(const EmdHashParams &params, std::size_t signal_len)
    : config(params)
{
    SCALO_ASSERT(config.bucketWidth > 0.0, "bucketWidth must be > 0");
    SCALO_ASSERT(config.bands >= 1 &&
                     config.bands * config.bandBits <= 64,
                 "bad band configuration");
    SCALO_ASSERT(signal_len >= 1, "signal_len must be >= 1");

    Rng rng(config.seed);
    projections.resize(config.bands);
    offsets.resize(config.bands);
    for (unsigned b = 0; b < config.bands; ++b) {
        projections[b].reserve(signal_len);
        // Non-negative random weights keep the projection of a mass
        // vector non-negative, so the square root is well defined.
        for (std::size_t i = 0; i < signal_len; ++i)
            projections[b].push_back(rng.uniform());
        offsets[b] = rng.uniform(0.0, config.bucketWidth);
    }
}

Signature
EmdHasher::signature(const std::vector<double> &input) const
{
    SCALO_ASSERT(input.size() == projections.front().size(),
                 "input length ", input.size(), " != configured ",
                 projections.front().size());

    // Shift to non-negative mass once, as EMD operates on mass
    // vectors; every band then projects the shifted signal with one
    // contiguous dot instead of re-shifting per band.
    double lo = 0.0;
    for (double v : input)
        lo = std::min(lo, v);
    std::vector<double> shifted(input.size());
    for (std::size_t i = 0; i < input.size(); ++i)
        shifted[i] = input[i] - lo;

    std::uint64_t packed = 0;
    for (unsigned b = 0; b < config.bands; ++b) {
        const double dot = linalg::dot(
            shifted.data(), projections[b].data(), shifted.size());
        const double root = std::sqrt(std::max(0.0, dot));
        const auto bucket = static_cast<std::int64_t>(
            std::floor((root + offsets[b]) / config.bucketWidth));
        const std::uint64_t mask =
            (config.bandBits >= 64) ? ~0ULL
                                    : ((1ULL << config.bandBits) - 1);
        packed |= (static_cast<std::uint64_t>(bucket) & mask)
                  << (b * config.bandBits);
    }
    return {packed, config.bands, config.bandBits};
}

} // namespace scalo::lsh
