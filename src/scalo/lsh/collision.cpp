#include "scalo/lsh/collision.hpp"

#include <algorithm>

namespace scalo::lsh {

CollisionChecker::CollisionChecker(std::uint64_t lookback_us)
    : lookback(lookback_us)
{
}

void
CollisionChecker::store(const HashRecord &record)
{
    records.push_back(record);
}

void
CollisionChecker::expire(std::uint64_t now_us)
{
    while (!records.empty() &&
           records.front().timestampUs + lookback < now_us) {
        records.pop_front();
    }
}

std::vector<CollisionMatch>
CollisionChecker::check(const std::vector<Signature> &received,
                        std::uint64_t now_us) const
{
    std::vector<CollisionMatch> matches;
    if (received.empty() || records.empty())
        return matches;

    // Sort (band value, received index) keys in "SRAM"; every band of
    // every received signature is an entry.
    std::vector<std::pair<std::uint64_t, std::size_t>> keys;
    for (std::size_t i = 0; i < received.size(); ++i)
        for (unsigned b = 0; b < received[i].bandCount(); ++b)
            keys.emplace_back(received[i].band(b), i);
    std::sort(keys.begin(), keys.end());

    const std::uint64_t horizon =
        (now_us > lookback) ? (now_us - lookback) : 0;

    for (const HashRecord &record : records) {
        if (record.timestampUs < horizon || record.timestampUs > now_us)
            continue;
        // A local record matches a received signature if any band value
        // is shared (the signatures' OR-construction match rule).
        std::vector<std::size_t> matched_indices;
        for (unsigned b = 0; b < record.signature.bandCount(); ++b) {
            const std::uint64_t key = record.signature.band(b);
            auto it = std::lower_bound(
                keys.begin(), keys.end(),
                std::make_pair(key, std::size_t{0}));
            for (; it != keys.end() && it->first == key; ++it)
                matched_indices.push_back(it->second);
        }
        std::sort(matched_indices.begin(), matched_indices.end());
        matched_indices.erase(std::unique(matched_indices.begin(),
                                          matched_indices.end()),
                              matched_indices.end());
        for (std::size_t idx : matched_indices) {
            if (record.signature.matches(received[idx]))
                matches.push_back({idx, record});
        }
    }
    return matches;
}

} // namespace scalo::lsh
