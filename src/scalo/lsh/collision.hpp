/**
 * @file
 * The CCHECK PE: stores received hashes in SRAM, sorts them in place,
 * reads local hashes up to a configurable past time from storage, and
 * checks for matches with binary search (Section 3.2).
 */

#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "scalo/lsh/signature.hpp"
#include "scalo/util/types.hpp"

namespace scalo::lsh {

/** A locally stored hash record. */
struct HashRecord
{
    /** Window timestamp in microseconds since device start. */
    std::uint64_t timestampUs;
    ElectrodeId electrode;
    Signature signature;
};

/** A match between a received hash and a stored local hash. */
struct CollisionMatch
{
    /** Index into the received batch. */
    std::size_t receivedIndex;
    HashRecord local;
};

/** Hash store + matcher mirroring the CCHECK PE's behaviour. */
class CollisionChecker
{
  public:
    /**
     * @param lookback_us how far into the past local hashes are read
     *        when matching (the PE's configurable window, e.g. 100 ms)
     */
    explicit CollisionChecker(std::uint64_t lookback_us = 100'000);

    /** Record a locally generated hash. */
    void store(const HashRecord &record);

    /** Drop records older than the lookback horizon relative to @p now. */
    void expire(std::uint64_t now_us);

    /**
     * Match a batch of received signatures against local hashes within
     * the lookback horizon of @p now_us. Implements the PE's algorithm:
     * sort the received band keys in SRAM, then binary-search each
     * local band key against them.
     */
    std::vector<CollisionMatch>
    check(const std::vector<Signature> &received,
          std::uint64_t now_us) const;

    /** Number of stored records. */
    std::size_t size() const { return records.size(); }

    std::uint64_t lookbackUs() const { return lookback; }

  private:
    std::uint64_t lookback;
    std::deque<HashRecord> records;
};

} // namespace scalo::lsh
