/**
 * @file
 * Measure-agnostic hashing front end. The paper's key observation is
 * that one LSH PE family serves Euclidean, DTW, and cross-correlation by
 * varying its (windowSize, ngramSize) parameters, while EMD uses the
 * shared dot-product plus a square-root hash. WindowHasher packages that
 * choice behind one interface.
 */

#pragma once

#include <memory>
#include <vector>

#include "scalo/lsh/emd_hash.hpp"
#include "scalo/lsh/signature.hpp"
#include "scalo/lsh/ssh.hpp"
#include "scalo/signal/distance.hpp"

namespace scalo::lsh {

/** Hash generator for fixed-length signal windows under one measure. */
class WindowHasher
{
  public:
    /**
     * Build a hasher tuned for @p measure on windows of
     * @p window_samples samples (default parameters follow the usable
     * regions of Figure 14).
     */
    WindowHasher(signal::Measure measure, std::size_t window_samples,
                 std::uint64_t seed = 0x5ca10ULL);

    /** Build an SSH hasher with explicit parameters. */
    WindowHasher(const SshParams &params, std::size_t window_samples);

    /** Build an EMD hasher with explicit parameters. */
    WindowHasher(const EmdHashParams &params, std::size_t window_samples);

    /** Signature of one window. */
    Signature hash(const std::vector<double> &window) const;

    /**
     * Batched hashing: signatures of many windows through one
     * reusable SSH scratch (one scratch per calling thread — the
     * hasher itself stays shareable and const). out[i] is bitwise
     * identical to hash(*windows[i]); batching changes allocation
     * behaviour, never signatures, so ingest-side batch hashes and
     * probe-side single hashes always agree.
     */
    void hashMany(const std::vector<const std::vector<double> *> &windows,
                  SshScratch &scratch,
                  std::vector<Signature> &out) const;

    /** The measure this hasher approximates. */
    signal::Measure measure() const { return hashMeasure; }

    /** Signature size on the wire, in bytes. */
    unsigned signatureBytes() const;

    /**
     * Default SSH parameters for a measure (Figure 14 usable regions):
     * the same family serves Euclidean/DTW/XCOR with different
     * window/n-gram settings.
     */
    static SshParams defaultSshParams(signal::Measure measure,
                                      std::size_t window_samples,
                                      std::uint64_t seed);

  private:
    signal::Measure hashMeasure;
    std::unique_ptr<SshHasher> ssh;
    std::unique_ptr<EmdHasher> emd;
};

} // namespace scalo::lsh
