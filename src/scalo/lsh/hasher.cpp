#include "scalo/lsh/hasher.hpp"

#include "scalo/util/logging.hpp"

namespace scalo::lsh {

SshParams
WindowHasher::defaultSshParams(signal::Measure measure,
                               std::size_t window_samples,
                               std::uint64_t seed)
{
    SshParams params;
    params.seed = seed;
    const auto n = static_cast<unsigned>(window_samples);
    switch (measure) {
      case signal::Measure::Euclidean:
        // Euclidean wants the finest-grained sketches of the three
        // (Figure 14's usable region sits at smaller window sizes).
        params.windowSize = std::max(8u, n / 6);
        params.stride = std::max(1u, params.windowSize / 6);
        params.ngramSize = 5;
        break;
      case signal::Measure::Dtw:
        // DTW tolerates warping: wider windows absorb local time shifts.
        params.windowSize = std::max(8u, n / 5);
        params.stride = std::max(1u, params.windowSize / 6);
        params.ngramSize = 5;
        break;
      case signal::Measure::Xcor:
        // Cross-correlation is shift-tolerant: the widest windows and
        // slightly shorter shingles.
        params.windowSize = std::max(8u, n / 4);
        params.stride = std::max(1u, params.windowSize / 6);
        params.ngramSize = 4;
        break;
      case signal::Measure::Emd:
        SCALO_PANIC("EMD uses EmdHasher, not SSH");
    }
    return params;
}

WindowHasher::WindowHasher(signal::Measure measure,
                           std::size_t window_samples, std::uint64_t seed)
    : hashMeasure(measure)
{
    if (measure == signal::Measure::Emd) {
        EmdHashParams params;
        params.seed = seed;
        emd = std::make_unique<EmdHasher>(params, window_samples);
    } else {
        ssh = std::make_unique<SshHasher>(
            defaultSshParams(measure, window_samples, seed));
    }
}

WindowHasher::WindowHasher(const SshParams &params,
                           std::size_t window_samples)
    : hashMeasure(signal::Measure::Dtw),
      ssh(std::make_unique<SshHasher>(params))
{
    SCALO_ASSERT(window_samples >= params.windowSize,
                 "window shorter than sketch window");
}

WindowHasher::WindowHasher(const EmdHashParams &params,
                           std::size_t window_samples)
    : hashMeasure(signal::Measure::Emd),
      emd(std::make_unique<EmdHasher>(params, window_samples))
{
}

Signature
WindowHasher::hash(const std::vector<double> &window) const
{
    if (emd)
        return emd->signature(window);
    return ssh->signature(window);
}

void
WindowHasher::hashMany(
    const std::vector<const std::vector<double> *> &windows,
    SshScratch &scratch, std::vector<Signature> &out) const
{
    if (emd) {
        // EMD hashing has no reusable table; plain per-window calls.
        out.clear();
        out.reserve(windows.size());
        for (const std::vector<double> *window : windows) {
            SCALO_ASSERT(window != nullptr,
                         "null window in hash batch");
            out.push_back(emd->signature(*window));
        }
        return;
    }
    ssh->signatureMany(windows, scratch, out);
}

unsigned
WindowHasher::signatureBytes() const
{
    if (emd) {
        return (emd->params().bands * emd->params().bandBits + 7) / 8;
    }
    return (ssh->params().bands * ssh->params().bandBits + 7) / 8;
}

} // namespace scalo::lsh
