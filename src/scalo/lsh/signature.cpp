#include "scalo/lsh/signature.hpp"

#include "scalo/util/logging.hpp"

namespace scalo::lsh {

Signature::Signature(std::uint64_t packed, unsigned bands,
                     unsigned band_bits)
    : value(packed), nBands(bands), bitsPerBand(band_bits)
{
    SCALO_ASSERT(bands >= 1, "signature needs at least one band");
    SCALO_ASSERT(band_bits >= 1 && bands * band_bits <= 64,
                 "signature too wide: ", bands, " x ", band_bits);
    if (bands * band_bits < 64)
        value &= (1ULL << (bands * band_bits)) - 1;
}

std::uint64_t
Signature::band(unsigned index) const
{
    SCALO_ASSERT(index < nBands, "band ", index, " of ", nBands);
    const std::uint64_t mask = (bitsPerBand >= 64)
                                   ? ~0ULL
                                   : ((1ULL << bitsPerBand) - 1);
    return (value >> (index * bitsPerBand)) & mask;
}

bool
Signature::matches(const Signature &other) const
{
    if (nBands != other.nBands || bitsPerBand != other.bitsPerBand ||
        nBands == 0) {
        return false;
    }
    for (unsigned b = 0; b < nBands; ++b)
        if (band(b) == other.band(b))
            return true;
    return false;
}

std::vector<HashValue>
Signature::bandBytes() const
{
    std::vector<HashValue> bytes;
    bytes.reserve(nBands);
    for (unsigned b = 0; b < nBands; ++b)
        bytes.push_back(static_cast<HashValue>(band(b) & 0xff));
    return bytes;
}

unsigned
Signature::sizeBytes() const
{
    return (nBands * bitsPerBand + 7) / 8;
}

} // namespace scalo::lsh
