/**
 * @file
 * LSH signatures. A signature is a small fixed number of "bands", each a
 * few bits wide; two windows are declared (probably) similar when any
 * band matches exactly (the classic OR-construction over AND-constructed
 * minhash rows). The paper's 8-bit per-window hash corresponds to one
 * 8-bit band; the default configuration here uses two bands of 8 bits
 * (the "1-2 B" hashes of Section 3.2), biased toward false positives as
 * the paper prescribes (false positives are resolved by an exact
 * comparison later; false negatives are lost).
 */

#pragma once

#include <cstdint>
#include <vector>

#include "scalo/util/types.hpp"

namespace scalo::lsh {

/** Compact multi-band LSH signature (at most 64 bits total). */
class Signature
{
  public:
    Signature() = default;

    /**
     * @param packed    band values packed LSB-first, band 0 lowest
     * @param bands     number of bands (>= 1)
     * @param band_bits width of each band in bits (bands*band_bits <= 64)
     */
    Signature(std::uint64_t packed, unsigned bands, unsigned band_bits);

    /** Any-band-equal match rule. Signatures of unlike shape never match. */
    bool matches(const Signature &other) const;

    /** Value of band @p index. */
    std::uint64_t band(unsigned index) const;

    /** Bands, each truncated to a byte (what CCHECK stores in SRAM). */
    std::vector<HashValue> bandBytes() const;

    unsigned bandCount() const { return nBands; }
    unsigned bandBits() const { return bitsPerBand; }
    std::uint64_t packed() const { return value; }

    /** Total signature size in whole bytes (what the network carries). */
    unsigned sizeBytes() const;

    bool operator==(const Signature &other) const = default;

  private:
    std::uint64_t value = 0;
    unsigned nBands = 0;
    unsigned bitsPerBand = 0;
};

} // namespace scalo::lsh
