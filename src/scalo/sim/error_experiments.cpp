#include "scalo/sim/error_experiments.hpp"

#include <algorithm>
#include <cmath>
#include <functional>

#include "scalo/net/channel.hpp"
#include "scalo/sim/event_queue.hpp"
#include "scalo/signal/distance.hpp"
#include "scalo/util/contracts.hpp"
#include "scalo/util/logging.hpp"
#include "scalo/util/rng.hpp"
#include "scalo/util/stats.hpp"
#include "scalo/util/types.hpp"

namespace scalo::sim {

using namespace units::literals;

NetworkErrorPoint
measureNetworkErrors(double ber, std::size_t packets,
                     std::uint64_t seed, Trace *trace)
{
    NetworkErrorPoint point;
    point.ber = ber;

    Rng rng(seed);
    net::WirelessChannel hash_channel(net::defaultRadio(), seed + 1,
                                      ber);
    net::WirelessChannel signal_channel(net::defaultRadio(), seed + 2,
                                        ber);

    // Reference signals: a window and a similar/dissimilar partner,
    // to judge whether corruption flips the DTW decision.
    const std::size_t n = scalo::constants::kWindowSamples;
    std::size_t dtw_flips = 0;
    std::size_t corrupted_signals = 0;

    // One hash + one signal packet per 4 ms window, as events on the
    // runtime's engine.
    Simulator simulator;
    const units::Millis window{4.0};
    const auto judge = [&](std::size_t p) {
        // Hash packet: 96 one-byte hashes.
        net::Packet hash_packet;
        hash_packet.type = net::PacketType::Hash;
        hash_packet.payload.resize(96);
        for (auto &b : hash_packet.payload)
            b = static_cast<std::uint8_t>(rng.below(256));
        if (trace)
            trace->record(simulator.now(), TraceEventKind::PacketTx,
                          0, 0, "hash", p,
                          static_cast<double>(
                              hash_packet.wireBytes()));
        const auto hash_receipt = hash_channel.transmit(hash_packet);
        if (trace && !hash_receipt.accepted())
            trace->record(simulator.now(),
                          TraceEventKind::PacketCorrupt,
                          Trace::kNetworkNode, 0, "hash", p,
                          static_cast<double>(
                              hash_packet.wireBytes()));

        // Signal packet: one 240 B window (int16 samples).
        std::vector<double> window_samples(n);
        for (auto &v : window_samples)
            v = rng.gaussian(0.0, 1'000.0);
        std::vector<double> partner = window_samples;
        const bool similar = (p % 2) == 0;
        if (similar) {
            for (auto &v : partner)
                v += rng.gaussian(0.0, 100.0);
        } else {
            for (auto &v : partner)
                v = rng.gaussian(0.0, 1'000.0);
        }

        net::Packet signal_packet;
        signal_packet.type = net::PacketType::Signal;
        signal_packet.payload.resize(n * 2);
        for (std::size_t i = 0; i < n; ++i) {
            const auto s = static_cast<std::int16_t>(
                std::clamp(window_samples[i], -32'768.0, 32'767.0));
            signal_packet.payload[2 * i] =
                static_cast<std::uint8_t>(s & 0xff);
            signal_packet.payload[2 * i + 1] =
                static_cast<std::uint8_t>((s >> 8) & 0xff);
        }
        if (trace)
            trace->record(simulator.now(), TraceEventKind::PacketTx,
                          0, 0, "signal", p,
                          static_cast<double>(
                              signal_packet.wireBytes()));
        const auto received = signal_channel.transmit(signal_packet);
        if (!received.headerOk || received.payloadOk) {
            if (trace && !received.headerOk)
                trace->record(simulator.now(),
                              TraceEventKind::PacketCorrupt,
                              Trace::kNetworkNode, 0, "signal", p,
                              static_cast<double>(
                                  signal_packet.wireBytes()));
            return;
        }
        // A corrupted-but-accepted signal: decode and re-judge.
        ++corrupted_signals;
        if (trace)
            trace->record(simulator.now(),
                          TraceEventKind::PacketCorrupt,
                          Trace::kNetworkNode, 0, "signal", p,
                          static_cast<double>(
                              signal_packet.wireBytes()));
        std::vector<double> decoded(n);
        for (std::size_t i = 0; i < n; ++i) {
            const auto lo = received.packet.payload[2 * i];
            const auto hi = received.packet.payload[2 * i + 1];
            decoded[i] = static_cast<double>(static_cast<std::int16_t>(
                lo | (hi << 8)));
        }
        const std::size_t band = n / 10;
        const double threshold = 0.35 * 1'000.0 *
                                 static_cast<double>(n);
        const bool clean_decision =
            signal::dtwDistance(window_samples, partner, band) <
            threshold;
        const bool dirty_decision =
            signal::dtwDistance(decoded, partner, band) < threshold;
        const bool flipped = clean_decision != dirty_decision;
        dtw_flips += flipped;
        if (trace)
            trace->record(simulator.now(),
                          flipped ? TraceEventKind::WindowDrop
                                  : TraceEventKind::WindowDone,
                          0, 0, "dtw-judgement", p);
    };
    for (std::size_t p = 0; p < packets; ++p)
        simulator.at(static_cast<double>(p) * units::Micros(window),
                     [&judge, p] { judge(p); });
    simulator.run();

    point.hashPacketErrorFraction =
        hash_channel.stats().errorFraction();
    point.signalPacketErrorFraction =
        signal_channel.stats().errorFraction();
    point.dtwDecisionFailureFraction =
        corrupted_signals
            ? static_cast<double>(dtw_flips) /
                  static_cast<double>(corrupted_signals)
            : 0.0;
    return point;
}

namespace {

DelayDistribution
summarize(const std::vector<double> &delays_ms)
{
    DelayDistribution dist;
    dist.mean = units::Millis{mean(delays_ms)};
    dist.max = units::Millis{maxOf(delays_ms)};
    dist.min = units::Millis{minOf(delays_ms)};
    return dist;
}

/** Per-repetition time budget before the hunt is abandoned. */
constexpr units::Millis kRepetitionCap = 2.0_s;

} // namespace

DelayDistribution
simulateHashEncodingErrors(double hash_error_rate,
                           const PropagationErrorConfig &config,
                           Trace *trace)
{
    SCALO_ASSERT(hash_error_rate >= 0.0 && hash_error_rate <= 1.0,
                 "error rate out of range");
    SCALO_EXPECTS(config.window.count() > 0.0);
    Rng rng(config.seed);
    std::vector<double> delays; // ms
    delays.reserve(config.repetitions);

    // All repetitions chain on one engine, each in its own 2 s budget
    // starting when the previous one resolved.
    Simulator simulator;
    for (std::size_t rep = 0; rep < config.repetitions; ++rep) {
        const units::Micros origin = simulator.now();
        bool confirmed = false;
        units::Micros confirm_time{0.0};

        // Each window, all electrodes' hashes are broadcast; the
        // correlation succeeds when any electrode's encoding survived
        // (an ongoing correlated seizure is captured by every
        // electrode; an all-miss postpones to the next window).
        std::function<void()> attempt = [&, rep, origin]() {
            if (confirmed)
                return;
            bool any_match = false;
            for (std::size_t e = 0; e < config.electrodesPerNode;
                 ++e) {
                if (!rng.chance(hash_error_rate))
                    any_match = true;
            }
            if (any_match) {
                confirmed = true;
                confirm_time = simulator.now() - origin;
                if (trace)
                    trace->record(simulator.now(),
                                  TraceEventKind::WindowDone, 0, 0,
                                  "hash-capture", rep);
                return;
            }
            if (trace)
                trace->record(simulator.now(),
                              TraceEventKind::WindowDrop, 0, 0,
                              "hash-all-miss", rep);
            // A seizure lasts a bounded time; cap the hunt at 2 s.
            if (simulator.now() + units::Micros(config.window) -
                    origin >
                units::Micros(kRepetitionCap))
                return;
            simulator.after(config.window, attempt);
        };
        simulator.after(0.0_us, attempt);
        simulator.run();
        if (!confirmed)
            confirm_time = units::Micros(kRepetitionCap);
        delays.push_back(
            (units::Millis(confirm_time) + config.check).count());
    }
    return summarize(delays);
}

DelayDistribution
simulateNetworkBerDelay(double ber,
                        const PropagationErrorConfig &config,
                        Trace *trace)
{
    Rng payload_rng(config.seed);
    net::WirelessChannel channel(net::defaultRadio(),
                                 config.seed ^ 0xbe9, ber);
    SCALO_EXPECTS(config.slot.count() > 0.0);
    std::vector<double> delays; // ms
    delays.reserve(config.repetitions);

    Simulator simulator;
    for (std::size_t rep = 0; rep < config.repetitions; ++rep) {
        const units::Micros origin = simulator.now();
        bool delivered = false;
        units::Micros deliver_time{0.0};

        // One packet carries all of the node's hashes; on a checksum
        // error the receiver drops it and the sender retransmits in
        // its next TDMA slot.
        std::function<void()> attempt = [&, rep, origin]() {
            if (delivered)
                return;
            net::Packet packet;
            packet.type = net::PacketType::Hash;
            packet.payload.resize(config.electrodesPerNode);
            for (auto &b : packet.payload)
                b = static_cast<std::uint8_t>(payload_rng.below(256));
            if (trace)
                trace->record(
                    simulator.now(), TraceEventKind::PacketTx, 0, 0,
                    "hash", rep,
                    static_cast<double>(packet.wireBytes()));
            if (channel.transmit(packet).accepted()) {
                delivered = true;
                deliver_time = simulator.now() - origin;
                if (trace)
                    trace->record(
                        simulator.now(), TraceEventKind::PacketRx,
                        Trace::kNetworkNode, 0, "hash", rep,
                        static_cast<double>(packet.wireBytes()));
                return;
            }
            if (trace) {
                trace->record(
                    simulator.now(), TraceEventKind::PacketCorrupt,
                    Trace::kNetworkNode, 0, "hash", rep,
                    static_cast<double>(packet.wireBytes()));
                trace->record(
                    simulator.now(),
                    TraceEventKind::PacketRetransmit, 0, 0, "hash",
                    rep, static_cast<double>(packet.wireBytes()));
            }
            if (simulator.now() + units::Micros(config.slot) -
                    origin >
                units::Micros(kRepetitionCap))
                return;
            simulator.after(config.slot, attempt);
        };
        simulator.after(0.0_us, attempt);
        simulator.run();
        if (!delivered)
            deliver_time = units::Micros(kRepetitionCap);
        delays.push_back(
            (units::Millis(deliver_time) + config.check).count());
    }
    return summarize(delays);
}

} // namespace scalo::sim
