#include "scalo/sim/error_experiments.hpp"

#include <algorithm>
#include <cmath>
#include <functional>

#include "scalo/net/channel.hpp"
#include "scalo/util/contracts.hpp"
#include "scalo/util/types.hpp"
#include "scalo/sim/event_queue.hpp"
#include "scalo/signal/distance.hpp"
#include "scalo/util/logging.hpp"
#include "scalo/util/rng.hpp"
#include "scalo/util/stats.hpp"

namespace scalo::sim {

using namespace units::literals;

NetworkErrorPoint
measureNetworkErrors(double ber, std::size_t packets,
                     std::uint64_t seed)
{
    NetworkErrorPoint point;
    point.ber = ber;

    Rng rng(seed);
    net::WirelessChannel hash_channel(net::defaultRadio(), seed + 1,
                                      ber);
    net::WirelessChannel signal_channel(net::defaultRadio(), seed + 2,
                                        ber);

    // Reference signals: a window and a similar/dissimilar partner,
    // to judge whether corruption flips the DTW decision.
    const std::size_t n = scalo::constants::kWindowSamples;
    std::size_t dtw_flips = 0;
    std::size_t corrupted_signals = 0;

    for (std::size_t p = 0; p < packets; ++p) {
        // Hash packet: 96 one-byte hashes.
        net::Packet hash_packet;
        hash_packet.type = net::PacketType::Hash;
        hash_packet.payload.resize(96);
        for (auto &b : hash_packet.payload)
            b = static_cast<std::uint8_t>(rng.below(256));
        hash_channel.transmit(hash_packet);

        // Signal packet: one 240 B window (int16 samples).
        std::vector<double> window(n);
        for (auto &v : window)
            v = rng.gaussian(0.0, 1'000.0);
        std::vector<double> partner = window;
        const bool similar = (p % 2) == 0;
        if (similar) {
            for (auto &v : partner)
                v += rng.gaussian(0.0, 100.0);
        } else {
            for (auto &v : partner)
                v = rng.gaussian(0.0, 1'000.0);
        }

        net::Packet signal_packet;
        signal_packet.type = net::PacketType::Signal;
        signal_packet.payload.resize(n * 2);
        for (std::size_t i = 0; i < n; ++i) {
            const auto s = static_cast<std::int16_t>(
                std::clamp(window[i], -32'768.0, 32'767.0));
            signal_packet.payload[2 * i] =
                static_cast<std::uint8_t>(s & 0xff);
            signal_packet.payload[2 * i + 1] =
                static_cast<std::uint8_t>((s >> 8) & 0xff);
        }
        const auto received = signal_channel.transmit(signal_packet);
        if (!received.headerOk || received.payloadOk)
            continue;
        // A corrupted-but-accepted signal: decode and re-judge.
        ++corrupted_signals;
        std::vector<double> decoded(n);
        for (std::size_t i = 0; i < n; ++i) {
            const auto lo = received.packet.payload[2 * i];
            const auto hi = received.packet.payload[2 * i + 1];
            decoded[i] = static_cast<double>(static_cast<std::int16_t>(
                lo | (hi << 8)));
        }
        const std::size_t band = n / 10;
        const double threshold = 0.35 * 1'000.0 *
                                 static_cast<double>(n);
        const bool clean_decision =
            signal::dtwDistance(window, partner, band) < threshold;
        const bool dirty_decision =
            signal::dtwDistance(decoded, partner, band) < threshold;
        dtw_flips += (clean_decision != dirty_decision);
    }

    point.hashPacketErrorFraction =
        hash_channel.stats().errorFraction();
    point.signalPacketErrorFraction =
        signal_channel.stats().errorFraction();
    point.dtwDecisionFailureFraction =
        corrupted_signals
            ? static_cast<double>(dtw_flips) /
                  static_cast<double>(corrupted_signals)
            : 0.0;
    return point;
}

namespace {

DelayDistribution
summarize(const std::vector<double> &delays_ms)
{
    DelayDistribution dist;
    dist.mean = units::Millis{mean(delays_ms)};
    dist.max = units::Millis{maxOf(delays_ms)};
    dist.min = units::Millis{minOf(delays_ms)};
    return dist;
}

} // namespace

DelayDistribution
simulateHashEncodingErrors(double hash_error_rate,
                           const PropagationErrorConfig &config)
{
    SCALO_ASSERT(hash_error_rate >= 0.0 && hash_error_rate <= 1.0,
                 "error rate out of range");
    SCALO_EXPECTS(config.window.count() > 0.0);
    Rng rng(config.seed);
    std::vector<double> delays; // ms
    delays.reserve(config.repetitions);

    for (std::size_t rep = 0; rep < config.repetitions; ++rep) {
        Simulator simulator;
        bool confirmed = false;
        units::Micros confirm_time{0.0};

        // Each window, all electrodes' hashes are broadcast; the
        // correlation succeeds when any electrode's encoding survived
        // (an ongoing correlated seizure is captured by every
        // electrode; an all-miss postpones to the next window).
        std::function<void()> attempt = [&]() {
            if (confirmed)
                return;
            bool any_match = false;
            for (std::size_t e = 0; e < config.electrodesPerNode;
                 ++e) {
                if (!rng.chance(hash_error_rate))
                    any_match = true;
            }
            if (any_match) {
                confirmed = true;
                confirm_time = simulator.now();
                return;
            }
            simulator.after(config.window, attempt);
        };
        simulator.after(0.0_us, attempt);
        // A seizure lasts a bounded time; cap the hunt at 2 seconds.
        simulator.run(2.0_s);
        if (!confirmed)
            confirm_time = simulator.now();
        delays.push_back(
            (units::Millis(confirm_time) + config.check).count());
    }
    return summarize(delays);
}

DelayDistribution
simulateNetworkBerDelay(double ber,
                        const PropagationErrorConfig &config)
{
    Rng payload_rng(config.seed);
    net::WirelessChannel channel(net::defaultRadio(),
                                 config.seed ^ 0xbe9, ber);
    SCALO_EXPECTS(config.slot.count() > 0.0);
    std::vector<double> delays; // ms
    delays.reserve(config.repetitions);

    for (std::size_t rep = 0; rep < config.repetitions; ++rep) {
        Simulator simulator;
        bool delivered = false;
        units::Micros deliver_time{0.0};

        // One packet carries all of the node's hashes; on a checksum
        // error the receiver drops it and the sender retransmits in
        // its next TDMA slot.
        std::function<void()> attempt = [&]() {
            if (delivered)
                return;
            net::Packet packet;
            packet.type = net::PacketType::Hash;
            packet.payload.resize(config.electrodesPerNode);
            for (auto &b : packet.payload)
                b = static_cast<std::uint8_t>(payload_rng.below(256));
            if (channel.transmit(packet).accepted()) {
                delivered = true;
                deliver_time = simulator.now();
                return;
            }
            simulator.after(config.slot, attempt);
        };
        simulator.after(0.0_us, attempt);
        simulator.run(2.0_s);
        if (!delivered)
            deliver_time = simulator.now();
        delays.push_back(
            (units::Millis(deliver_time) + config.check).count());
    }
    return summarize(delays);
}

} // namespace scalo::sim
