/**
 * @file
 * Timed end-to-end simulation of the seizure-propagation response
 * path (Section 2.2's 10 ms target: local detection -> hash broadcast
 * -> collision check -> signal broadcast -> exact comparison ->
 * stimulation command). Every stage takes its latency from the Table
 * 1 PE catalog, the TDMA slot structure and the radio; checksum
 * losses retransmit in the next slot. Runs on the discrete-event
 * engine and reports the latency distribution over many episodes.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "scalo/net/radio.hpp"
#include "scalo/sim/runtime/trace.hpp"

namespace scalo::sim {

/** Configuration of the timed response-path experiment. */
struct PropagationTimingConfig
{
    std::size_t nodes = 11;
    const net::RadioSpec *radio = &net::defaultRadio();
    /** BER override (< 0 uses the radio's). */
    double berOverride = -1.0;
    /** Electrodes whose hashes ride in the broadcast packet. */
    std::size_t electrodes = 96;
    /** Signal window bytes broadcast for exact comparison. */
    std::size_t windowBytes = 240;
    /** TDMA round period: worst-case wait for the first slot. */
    units::Millis tdmaRound{1.7};
    /** MC stimulation-command issue latency. */
    units::Millis stimulate{0.5};
    std::size_t episodes = 1'000;
    std::uint64_t seed = 0x71ed;
};

/** Stage-by-stage latency decomposition (means over episodes). */
struct PropagationTimingResult
{
    units::Millis slotWait{0.0};
    units::Millis hashBroadcast{0.0};
    units::Millis collisionCheck{0.0};
    units::Millis response{0.0};
    units::Millis signalBroadcast{0.0};
    units::Millis exactCompare{0.0};
    units::Millis stimulate{0.0};
    /** End-to-end distribution. */
    units::Millis meanTotal{0.0};
    units::Millis maxTotal{0.0};
    /** Episodes meeting the 10 ms budget. */
    double withinDeadlineFraction = 0.0;
};

/**
 * Run the experiment. Episodes chain on the runtime's event engine;
 * @p trace records the per-stage and packet events when supplied.
 */
PropagationTimingResult
simulatePropagationTiming(const PropagationTimingConfig &config = {},
                          Trace *trace = nullptr);

} // namespace scalo::sim
