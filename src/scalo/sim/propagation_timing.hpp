/**
 * @file
 * Timed end-to-end simulation of the seizure-propagation response
 * path (Section 2.2's 10 ms target: local detection -> hash broadcast
 * -> collision check -> signal broadcast -> exact comparison ->
 * stimulation command). Every stage takes its latency from the Table
 * 1 PE catalog, the TDMA slot structure and the radio; checksum
 * losses retransmit in the next slot. Runs on the discrete-event
 * engine and reports the latency distribution over many episodes.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "scalo/net/radio.hpp"

namespace scalo::sim {

/** Configuration of the timed response-path experiment. */
struct PropagationTimingConfig
{
    std::size_t nodes = 11;
    const net::RadioSpec *radio = &net::defaultRadio();
    /** BER override (< 0 uses the radio's). */
    double berOverride = -1.0;
    /** Electrodes whose hashes ride in the broadcast packet. */
    std::size_t electrodes = 96;
    /** Signal window bytes broadcast for exact comparison. */
    std::size_t windowBytes = 240;
    /** TDMA round period (ms): worst-case wait for the first slot. */
    double tdmaRoundMs = 1.7;
    /** MC stimulation-command issue latency (ms). */
    double stimulateMs = 0.5;
    std::size_t episodes = 1'000;
    std::uint64_t seed = 0x71ed;
};

/** Stage-by-stage latency decomposition (means over episodes). */
struct PropagationTimingResult
{
    double slotWaitMs = 0.0;
    double hashBroadcastMs = 0.0;
    double collisionCheckMs = 0.0;
    double responseMs = 0.0;
    double signalBroadcastMs = 0.0;
    double exactCompareMs = 0.0;
    double stimulateMs = 0.0;
    /** End-to-end distribution. */
    double meanTotalMs = 0.0;
    double maxTotalMs = 0.0;
    /** Episodes meeting the 10 ms budget. */
    double withinDeadlineFraction = 0.0;
};

/** Run the experiment. */
PropagationTimingResult
simulatePropagationTiming(const PropagationTimingConfig &config = {});

} // namespace scalo::sim
