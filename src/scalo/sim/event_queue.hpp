/**
 * @file
 * A minimal discrete-event simulation engine: a time-ordered queue of
 * callbacks with deterministic tie-breaking. Drives the timed
 * network/application experiments (Sections 6.6 and 6.7).
 *
 * Timestamps are `units::Micros` at the API; internally events sit on
 * an integer microsecond grid (rounded) so FIFO tie-breaking stays
 * exact and platform-independent.
 */

#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <queue>
#include <vector>

#include "scalo/units/units.hpp"

namespace scalo::sim {

/** Discrete-event scheduler over microsecond timestamps. */
class Simulator
{
  public:
    using Action = std::function<void()>;

    /**
     * Actor tag for cancellable events; 0 is "unowned" (never
     * cancelled). A crashed node's pending events must not execute
     * against its dead model, so actors schedule continuations under
     * their owner id and `cancelOwned` retires them wholesale.
     */
    using Owner = std::uint32_t;

    /** Current simulation time. */
    units::Micros now() const
    {
        return units::Micros{static_cast<double>(nowTicks)};
    }

    /** Current simulation time on the integer microsecond grid. */
    std::uint64_t ticks() const { return nowTicks; }

    /** Schedule @p action at now + @p delay. */
    void after(units::Micros delay, Action action);

    /** Schedule @p action at absolute time @p at (>= now). */
    void at(units::Micros at, Action action);

    /** Schedule @p action at now + @p delay, owned by @p owner. */
    void afterOwned(units::Micros delay, Owner owner, Action action);

    /** Schedule @p action at @p at (>= now), owned by @p owner. */
    void atOwned(units::Micros at, Owner owner, Action action);

    /**
     * Cancel every pending event of @p owner: the events stay queued
     * (removal from a binary heap is not worth the bookkeeping) but
     * are skipped unexecuted when popped, and stop counting as
     * pending immediately. @return events cancelled
     */
    std::size_t cancelOwned(Owner owner);

    /** Horizon meaning "run until the queue drains". */
    static constexpr units::Micros kForever{1.0e19};

    /**
     * Run until the queue drains or @p until is reached. Time always
     * advances to the horizon (when finite), even if events remain
     * pending beyond it, so a subsequent after() schedules relative to
     * the horizon rather than the last executed event.
     * @return events executed
     */
    std::size_t run(units::Micros until = kForever);

    /** Drop all pending events. */
    void clear();

    /** Pending (non-cancelled) event count. */
    std::size_t
    pending() const
    {
        return queue.size() - cancelledQueued;
    }

  private:
    struct Event
    {
        std::uint64_t time;
        std::uint64_t sequence;
        Action action;
        Owner owner = 0;
        std::uint32_t epoch = 0;
    };
    struct Later
    {
        bool
        operator()(const Event &a, const Event &b) const
        {
            if (a.time != b.time)
                return a.time > b.time;
            return a.sequence > b.sequence;
        }
    };
    struct OwnerState
    {
        std::uint32_t epoch = 0;
        std::size_t pendingEvents = 0;
    };

    bool stale(const Event &event) const;

    std::uint64_t nowTicks = 0;
    std::uint64_t nextSequence = 0;
    std::size_t cancelledQueued = 0;
    std::priority_queue<Event, std::vector<Event>, Later> queue;
    std::map<Owner, OwnerState> owners;
};

} // namespace scalo::sim
