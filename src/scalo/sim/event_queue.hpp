/**
 * @file
 * A minimal discrete-event simulation engine: a time-ordered queue of
 * callbacks with deterministic tie-breaking. Drives the timed
 * network/application experiments (Sections 6.6 and 6.7).
 */

#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace scalo::sim {

/** Discrete-event scheduler over microsecond timestamps. */
class Simulator
{
  public:
    using Action = std::function<void()>;

    /** Current simulation time (us). */
    std::uint64_t nowUs() const { return now; }

    /** Schedule @p action at now + @p delay_us. */
    void after(std::uint64_t delay_us, Action action);

    /** Schedule @p action at absolute time @p at_us (>= now). */
    void at(std::uint64_t at_us, Action action);

    /**
     * Run until the queue drains or @p until_us is reached.
     * @return events executed
     */
    std::size_t run(std::uint64_t until_us = ~0ULL);

    /** Drop all pending events. */
    void clear();

    /** Pending event count. */
    std::size_t pending() const { return queue.size(); }

  private:
    struct Event
    {
        std::uint64_t time;
        std::uint64_t sequence;
        Action action;
    };
    struct Later
    {
        bool
        operator()(const Event &a, const Event &b) const
        {
            if (a.time != b.time)
                return a.time > b.time;
            return a.sequence > b.sequence;
        }
    };

    std::uint64_t now = 0;
    std::uint64_t nextSequence = 0;
    std::priority_queue<Event, std::vector<Event>, Later> queue;
};

} // namespace scalo::sim
