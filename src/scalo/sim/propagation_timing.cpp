#include "scalo/sim/propagation_timing.hpp"

#include "scalo/compress/hcomp.hpp"
#include "scalo/hw/pe.hpp"
#include "scalo/net/channel.hpp"
#include "scalo/net/tdma.hpp"
#include "scalo/sim/event_queue.hpp"
#include "scalo/util/logging.hpp"
#include "scalo/util/rng.hpp"
#include "scalo/util/stats.hpp"

namespace scalo::sim {

PropagationTimingResult
simulatePropagationTiming(const PropagationTimingConfig &config)
{
    SCALO_ASSERT(config.nodes >= 2, "need at least two nodes");

    const net::TdmaSchedule tdma(*config.radio, config.nodes);
    net::WirelessChannel channel(*config.radio, config.seed,
                                 config.berOverride);
    Rng rng(config.seed ^ 0x7e11);

    const double ccheck_ms =
        *hw::peSpec(hw::PeKind::CCHECK).latencyMs;
    const double dtw_ms = *hw::peSpec(hw::PeKind::DTW).latencyMs;
    const double npack_ms =
        *hw::peSpec(hw::PeKind::NPACK).latencyMs;

    // Hash payload: the node's electrode hashes, HCOMP-compressed.
    std::vector<HashValue> hashes(config.electrodes);
    for (std::size_t e = 0; e < hashes.size(); ++e)
        hashes[e] = static_cast<HashValue>(rng.below(48));
    const std::size_t hash_payload =
        compress::compressHashes(hashes).payload.size();

    PropagationTimingResult result;
    std::vector<double> totals;
    RunningStats slot_wait, hash_bcast, response, signal_bcast;
    std::size_t within = 0;

    for (std::size_t episode = 0; episode < config.episodes;
         ++episode) {
        Simulator simulator;
        double t = 0.0; // ms within the episode

        // 1. Wait for the origin's next TDMA slot (uniform phase).
        const double wait = rng.uniform(0.0, config.tdmaRoundMs);
        slot_wait.add(wait);
        t += wait;

        // 2. Broadcast the hash packet; checksum losses retransmit
        //    one slot later.
        double bcast = npack_ms;
        while (true) {
            net::Packet packet;
            packet.type = net::PacketType::Hash;
            packet.payload.assign(hash_payload, 0x5a);
            bcast += tdma.slotMs(hash_payload);
            if (channel.transmit(packet).accepted())
                break;
            bcast += config.tdmaRoundMs; // next owned slot
        }
        hash_bcast.add(bcast);
        t += bcast;

        // 3. Receivers run CCHECK in parallel.
        t += ccheck_ms;

        // 4. Matching receivers respond in their own slots; the
        //    farthest responder bounds the wait (up to one round).
        const double resp = rng.uniform(0.2, 1.0) *
                            config.tdmaRoundMs;
        response.add(resp);
        t += resp;

        // 5. The origin broadcasts the full signal window; corrupted
        //    signal payloads still flow (Section 3.4).
        double sig = npack_ms;
        while (true) {
            net::Packet packet;
            packet.type = net::PacketType::Signal;
            packet.payload.assign(config.windowBytes, 0x3c);
            sig += tdma.slotMs(config.windowBytes);
            if (channel.transmit(packet).accepted())
                break;
            sig += config.tdmaRoundMs;
        }
        signal_bcast.add(sig);
        t += sig;

        // 6. Exact comparison against the local recent windows (25
        //    windows of history, pipelined on the DTW PE).
        const double compare = 25.0 * dtw_ms;
        t += compare;

        // 7. Stimulation command through the MC.
        t += config.stimulateMs;

        // Run the (bookkeeping) simulator to anchor everything on the
        // event engine's clock.
        simulator.after(static_cast<std::uint64_t>(t * 1'000.0),
                        [] {});
        simulator.run();

        totals.push_back(t);
        within += (t <= 10.0);
    }

    result.slotWaitMs = slot_wait.mean();
    result.hashBroadcastMs = hash_bcast.mean();
    result.collisionCheckMs = ccheck_ms;
    result.responseMs = response.mean();
    result.signalBroadcastMs = signal_bcast.mean();
    result.exactCompareMs = 25.0 * dtw_ms;
    result.stimulateMs = config.stimulateMs;
    result.meanTotalMs = mean(totals);
    result.maxTotalMs = maxOf(totals);
    result.withinDeadlineFraction =
        static_cast<double>(within) /
        static_cast<double>(config.episodes);
    return result;
}

} // namespace scalo::sim
