#include "scalo/sim/propagation_timing.hpp"

#include <functional>

#include "scalo/compress/hcomp.hpp"
#include "scalo/hw/pe.hpp"
#include "scalo/net/channel.hpp"
#include "scalo/net/tdma.hpp"
#include "scalo/sim/event_queue.hpp"
#include "scalo/util/contracts.hpp"
#include "scalo/util/logging.hpp"
#include "scalo/util/rng.hpp"
#include "scalo/util/stats.hpp"

namespace scalo::sim {

using namespace units::literals;

PropagationTimingResult
simulatePropagationTiming(const PropagationTimingConfig &config,
                          Trace *trace)
{
    SCALO_ASSERT(config.nodes >= 2, "need at least two nodes");
    SCALO_EXPECTS(config.tdmaRound.count() > 0.0);
    SCALO_EXPECTS(config.stimulate.count() >= 0.0);

    const net::TdmaSchedule tdma(*config.radio, config.nodes);
    net::WirelessChannel channel(*config.radio, config.seed,
                                 config.berOverride);
    Rng rng(config.seed ^ 0x7e11);

    const units::Millis ccheck =
        *hw::peSpec(hw::PeKind::CCHECK).latency;
    const units::Millis dtw = *hw::peSpec(hw::PeKind::DTW).latency;
    const units::Millis npack =
        *hw::peSpec(hw::PeKind::NPACK).latency;

    // Hash payload: the node's electrode hashes, HCOMP-compressed.
    std::vector<HashValue> hashes(config.electrodes);
    for (std::size_t e = 0; e < hashes.size(); ++e)
        hashes[e] = static_cast<HashValue>(rng.below(48));
    const std::size_t hash_payload =
        compress::compressHashes(hashes).payload.size();

    PropagationTimingResult result;
    std::vector<double> totals; // ms
    RunningStats slot_wait, hash_bcast, response, signal_bcast;
    std::size_t within = 0;

    // Episodes chain on one event engine: each runs the response path
    // (Section 2.2), records its trace, and schedules the next. The
    // latency decomposition itself accumulates in double ms exactly as
    // the per-stage model computes it; the engine sequences episodes
    // and anchors the trace timestamps.
    Simulator simulator;
    std::function<void(std::size_t)> episode = [&](std::size_t ep) {
        const units::Micros origin = simulator.now();
        const auto stamp = [&](units::Millis elapsed) {
            return origin + units::Micros(elapsed);
        };
        units::Millis t{0.0}; // elapsed within the episode

        // 1. Wait for the origin's next TDMA slot (uniform phase).
        const units::Millis wait{
            rng.uniform(0.0, config.tdmaRound.count())};
        slot_wait.add(wait.count());
        t += wait;

        // 2. Broadcast the hash packet; checksum losses retransmit
        //    one slot later.
        units::Millis bcast = npack;
        while (true) {
            net::Packet packet;
            packet.type = net::PacketType::Hash;
            packet.payload.assign(hash_payload, 0x5a);
            if (trace)
                trace->record(stamp(t + bcast),
                              TraceEventKind::PacketTx, 0, 0, "hash",
                              ep,
                              static_cast<double>(
                                  packet.wireBytes()));
            bcast += tdma.slotTime(hash_payload);
            if (channel.transmit(packet).accepted())
                break;
            if (trace) {
                trace->record(stamp(t + bcast),
                              TraceEventKind::PacketCorrupt,
                              Trace::kNetworkNode, 0, "hash", ep);
                trace->record(stamp(t + bcast),
                              TraceEventKind::PacketRetransmit, 0, 0,
                              "hash", ep);
            }
            bcast += config.tdmaRound; // next owned slot
        }
        hash_bcast.add(bcast.count());
        t += bcast;

        // 3. Receivers run CCHECK in parallel.
        if (trace) {
            trace->record(stamp(t), TraceEventKind::StageStart, 1, 1,
                          "CCHECK", ep);
            trace->record(stamp(t + ccheck),
                          TraceEventKind::StageFinish, 1, 1, "CCHECK",
                          ep);
        }
        t += ccheck;

        // 4. Matching receivers respond in their own slots; the
        //    farthest responder bounds the wait (up to one round).
        const units::Millis resp =
            rng.uniform(0.2, 1.0) * config.tdmaRound;
        response.add(resp.count());
        t += resp;

        // 5. The origin broadcasts the full signal window; corrupted
        //    signal payloads still flow (Section 3.4).
        units::Millis sig = npack;
        while (true) {
            net::Packet packet;
            packet.type = net::PacketType::Signal;
            packet.payload.assign(config.windowBytes, 0x3c);
            if (trace)
                trace->record(stamp(t + sig),
                              TraceEventKind::PacketTx, 0, 0,
                              "signal", ep,
                              static_cast<double>(
                                  packet.wireBytes()));
            sig += tdma.slotTime(config.windowBytes);
            if (channel.transmit(packet).accepted())
                break;
            if (trace) {
                trace->record(stamp(t + sig),
                              TraceEventKind::PacketCorrupt,
                              Trace::kNetworkNode, 0, "signal", ep);
                trace->record(stamp(t + sig),
                              TraceEventKind::PacketRetransmit, 0, 0,
                              "signal", ep);
            }
            sig += config.tdmaRound;
        }
        signal_bcast.add(sig.count());
        t += sig;

        // 6. Exact comparison against the local recent windows (25
        //    windows of history, pipelined on the DTW PE).
        const units::Millis compare = 25.0 * dtw;
        if (trace) {
            trace->record(stamp(t), TraceEventKind::StageStart, 1, 2,
                          "DTW", ep);
            trace->record(stamp(t + compare),
                          TraceEventKind::StageFinish, 1, 2, "DTW",
                          ep);
        }
        t += compare;

        // 7. Stimulation command through the MC.
        t += config.stimulate;
        if (trace)
            trace->record(stamp(t), TraceEventKind::WindowDone, 1, 0,
                          "stimulate", ep, t.count());

        totals.push_back(t.count());
        within += (t <= 10.0_ms);

        if (ep + 1 < config.episodes)
            simulator.after(t, [&episode, ep] { episode(ep + 1); });
    };
    if (config.episodes > 0)
        simulator.after(0.0_us, [&episode] { episode(0); });
    simulator.run();

    result.slotWait = units::Millis{slot_wait.mean()};
    result.hashBroadcast = units::Millis{hash_bcast.mean()};
    result.collisionCheck = ccheck;
    result.response = units::Millis{response.mean()};
    result.signalBroadcast = units::Millis{signal_bcast.mean()};
    result.exactCompare = 25.0 * dtw;
    result.stimulate = config.stimulate;
    result.meanTotal = units::Millis{mean(totals)};
    result.maxTotal = units::Millis{maxOf(totals)};
    result.withinDeadlineFraction =
        static_cast<double>(within) /
        static_cast<double>(config.episodes);
    SCALO_ENSURES(result.meanTotal <= result.maxTotal);
    return result;
}

} // namespace scalo::sim
