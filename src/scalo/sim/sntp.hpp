/**
 * @file
 * SNTP clock synchronisation (Section 3.6): one node serves time; the
 * others exchange (t1, t2, t3, t4) timestamp quadruples over the
 * intra-SCALO network and apply the midpoint offset estimate,
 * repeating rounds until every clock sits within the target precision
 * (a few microseconds - the pausable clock generators themselves
 * drift only picoseconds, and body temperature is stable, so one
 * daily synchronisation suffices).
 */

#pragma once

#include <cstdint>
#include <vector>

#include "scalo/net/radio.hpp"

namespace scalo::sim {

/** A node's local clock: true simulation time plus offset and skew. */
class NodeClock
{
  public:
    /**
     * @param offset_us initial offset from true time
     * @param skew_ppm  frequency error in parts per million
     */
    NodeClock(double offset_us = 0.0, double skew_ppm = 0.0)
        : offsetUs(offset_us), skewPpm(skew_ppm)
    {
    }

    /** Local reading at true time @p true_us. */
    double
    read(double true_us) const
    {
        return true_us * (1.0 + skewPpm * 1e-6) + offsetUs;
    }

    /** Apply a correction to the offset. */
    void adjust(double delta_us) { offsetUs += delta_us; }

    double offset() const { return offsetUs; }
    double skew() const { return skewPpm; }

  private:
    double offsetUs;
    double skewPpm;
};

/** Result of a synchronisation run. */
struct SntpResult
{
    /** Rounds executed until convergence (or the round limit). */
    std::size_t rounds = 0;
    /** Worst client offset from the server clock afterwards (us). */
    double maxResidualUs = 0.0;
    /** Whether the target precision was reached. */
    bool converged = false;
    /** Network time consumed (ms) - the network is unavailable to
     *  other traffic during synchronisation. */
    double networkBusyMs = 0.0;
};

/** Synchronisation parameters. */
struct SntpConfig
{
    const net::RadioSpec *radio = &net::defaultRadio();
    /** Target precision (us), "a few microseconds" in the paper. */
    double targetPrecisionUs = 5.0;
    /** One-way network jitter (us) on top of the transfer time. */
    double jitterUs = 2.0;
    std::size_t maxRounds = 16;
    std::uint64_t seed = 0x5e77;
};

/**
 * Run SNTP: node 0 is the server; every other clock converges toward
 * it. Clocks are modified in place.
 */
SntpResult synchronizeClocks(std::vector<NodeClock> &clocks,
                             const SntpConfig &config = {});

} // namespace scalo::sim
