/**
 * @file
 * SNTP clock synchronisation (Section 3.6): one node serves time; the
 * others exchange (t1, t2, t3, t4) timestamp quadruples over the
 * intra-SCALO network and apply the midpoint offset estimate,
 * repeating rounds until every clock sits within the target precision
 * (a few microseconds - the pausable clock generators themselves
 * drift only picoseconds, and body temperature is stable, so one
 * daily synchronisation suffices).
 */

#pragma once

#include <cstdint>
#include <vector>

#include "scalo/net/radio.hpp"

namespace scalo::sim {

/** A node's local clock: true simulation time plus offset and skew. */
class NodeClock
{
  public:
    /**
     * @param offset    initial offset from true time
     * @param skew_ppm  frequency error in parts per million
     */
    NodeClock(units::Micros offset = units::Micros{0.0},
              double skew_ppm = 0.0)
        : offsetValue(offset), skewPpm(skew_ppm)
    {
    }

    /** Local reading at true time @p true_time. */
    units::Micros
    read(units::Micros true_time) const
    {
        return true_time * (1.0 + skewPpm * 1e-6) + offsetValue;
    }

    /** Apply a correction to the offset. */
    void adjust(units::Micros delta) { offsetValue += delta; }

    units::Micros offset() const { return offsetValue; }
    double skew() const { return skewPpm; }

  private:
    units::Micros offsetValue;
    double skewPpm;
};

/** Result of a synchronisation run. */
struct SntpResult
{
    /** Rounds executed until convergence (or the round limit). */
    std::size_t rounds = 0;
    /** Worst client offset from the server clock afterwards. */
    units::Micros maxResidual{0.0};
    /** Whether the target precision was reached. */
    bool converged = false;
    /** Network time consumed - the network is unavailable to
     *  other traffic during synchronisation. */
    units::Millis networkBusy{0.0};
};

/** Synchronisation parameters. */
struct SntpConfig
{
    const net::RadioSpec *radio = &net::defaultRadio();
    /** Target precision, "a few microseconds" in the paper. */
    units::Micros targetPrecision{5.0};
    /** One-way network jitter on top of the transfer time. */
    units::Micros jitter{2.0};
    std::size_t maxRounds = 16;
    std::uint64_t seed = 0x5e77;
};

/**
 * Run SNTP: node 0 is the server; every other clock converges toward
 * it. Clocks are modified in place.
 */
SntpResult synchronizeClocks(std::vector<NodeClock> &clocks,
                             const SntpConfig &config = {});

} // namespace scalo::sim
