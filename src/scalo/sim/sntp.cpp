#include "scalo/sim/sntp.hpp"

#include <cmath>

#include "scalo/net/packet.hpp"
#include "scalo/util/logging.hpp"
#include "scalo/util/rng.hpp"

namespace scalo::sim {

SntpResult
synchronizeClocks(std::vector<NodeClock> &clocks,
                  const SntpConfig &config)
{
    SCALO_ASSERT(clocks.size() >= 2, "need a server and a client");
    Rng rng(config.seed);

    // SNTP packets: 4 x 64-bit timestamps in a hash-sized payload.
    const double packet_ms = config.radio->transferMs(
        static_cast<double>(net::kPacketOverheadBytes + 32));
    const double one_way_us = packet_ms * 1'000.0;

    SntpResult result;
    double true_time_us = 0.0;

    for (std::size_t round = 0; round < config.maxRounds; ++round) {
        ++result.rounds;
        double worst = 0.0;
        for (std::size_t client = 1; client < clocks.size();
             ++client) {
            // Request: client stamps t1, server receives at t2.
            const double t1 =
                clocks[client].read(true_time_us);
            const double jitter_up =
                one_way_us + rng.uniform(0.0, config.jitterUs);
            true_time_us += jitter_up;
            const double t2 = clocks[0].read(true_time_us);

            // Reply: server stamps t3, client receives at t4.
            const double t3 = clocks[0].read(true_time_us);
            const double jitter_down =
                one_way_us + rng.uniform(0.0, config.jitterUs);
            true_time_us += jitter_down;
            const double t4 =
                clocks[client].read(true_time_us);

            // Midpoint offset estimate (server minus client).
            const double offset =
                ((t2 - t1) + (t3 - t4)) / 2.0;
            clocks[client].adjust(offset);

            const double residual = std::abs(
                clocks[client].read(true_time_us) -
                clocks[0].read(true_time_us));
            worst = std::max(worst, residual);
            result.networkBusyMs += 2.0 * packet_ms;
        }
        result.maxResidualUs = worst;
        if (worst <= config.targetPrecisionUs) {
            result.converged = true;
            break;
        }
    }
    return result;
}

} // namespace scalo::sim
