#include "scalo/sim/sntp.hpp"

#include <algorithm>
#include <cmath>

#include "scalo/net/packet.hpp"
#include "scalo/util/contracts.hpp"
#include "scalo/util/logging.hpp"
#include "scalo/util/rng.hpp"

namespace scalo::sim {

SntpResult
synchronizeClocks(std::vector<NodeClock> &clocks,
                  const SntpConfig &config)
{
    SCALO_ASSERT(clocks.size() >= 2, "need a server and a client");
    SCALO_EXPECTS(config.targetPrecision.count() > 0.0);
    SCALO_EXPECTS(config.jitter.count() >= 0.0);
    Rng rng(config.seed);

    // SNTP packets: 4 x 64-bit timestamps in a hash-sized payload.
    const units::Millis packet_time = config.radio->transferTime(
        units::Bytes{static_cast<double>(net::kPacketOverheadBytes + 32)});
    const units::Micros one_way = packet_time;

    SntpResult result;
    units::Micros true_time{0.0};

    for (std::size_t round = 0; round < config.maxRounds; ++round) {
        ++result.rounds;
        units::Micros worst{0.0};
        for (std::size_t client = 1; client < clocks.size();
             ++client) {
            // Request: client stamps t1, server receives at t2.
            const units::Micros t1 = clocks[client].read(true_time);
            const units::Micros jitter_up =
                one_way +
                units::Micros{rng.uniform(0.0, config.jitter.count())};
            true_time += jitter_up;
            const units::Micros t2 = clocks[0].read(true_time);

            // Reply: server stamps t3, client receives at t4.
            const units::Micros t3 = clocks[0].read(true_time);
            const units::Micros jitter_down =
                one_way +
                units::Micros{rng.uniform(0.0, config.jitter.count())};
            true_time += jitter_down;
            const units::Micros t4 = clocks[client].read(true_time);

            // Midpoint offset estimate (server minus client).
            const units::Micros offset =
                ((t2 - t1) + (t3 - t4)) / 2.0;
            clocks[client].adjust(offset);

            const units::Micros residual{std::abs(
                (clocks[client].read(true_time) -
                 clocks[0].read(true_time))
                    .count())};
            worst = std::max(worst, residual);
            result.networkBusy += 2.0 * packet_time;
        }
        result.maxResidual = worst;
        if (worst <= config.targetPrecision) {
            result.converged = true;
            break;
        }
    }
    SCALO_ENSURES(result.networkBusy.count() >= 0.0);
    return result;
}

} // namespace scalo::sim
