#include "scalo/sim/event_queue.hpp"

#include <algorithm>
#include <cmath>

#include "scalo/util/contracts.hpp"
#include "scalo/util/logging.hpp"

namespace scalo::sim {

namespace {

std::uint64_t
toTicks(units::Micros t)
{
    // Saturate huge horizons (e.g. Simulator::kForever) before they
    // overflow llround.
    if (t.count() >= static_cast<double>(~0ULL >> 1))
        return ~0ULL;
    return static_cast<std::uint64_t>(std::llround(t.count()));
}

} // namespace

void
Simulator::after(units::Micros delay, Action action)
{
    afterOwned(delay, 0, std::move(action));
}

void
Simulator::at(units::Micros at, Action action)
{
    atOwned(at, 0, std::move(action));
}

void
Simulator::afterOwned(units::Micros delay, Owner owner, Action action)
{
    SCALO_EXPECTS(delay.count() >= 0.0);
    atOwned(units::Micros{static_cast<double>(nowTicks)} + delay,
            owner, std::move(action));
}

void
Simulator::atOwned(units::Micros at, Owner owner, Action action)
{
    const std::uint64_t ticks = toTicks(at);
    SCALO_ASSERT(ticks >= nowTicks, "scheduling into the past: ",
                 ticks, " < ", nowTicks);
    std::uint32_t epoch = 0;
    if (owner != 0) {
        OwnerState &state = owners[owner];
        epoch = state.epoch;
        ++state.pendingEvents;
    }
    queue.push({ticks, nextSequence++, std::move(action), owner,
                epoch});
}

std::size_t
Simulator::cancelOwned(Owner owner)
{
    SCALO_EXPECTS(owner != 0);
    const auto found = owners.find(owner);
    if (found == owners.end())
        return 0;
    OwnerState &state = found->second;
    const std::size_t cancelled = state.pendingEvents;
    // Bump the epoch: queued events of the old epoch are skipped at
    // pop time (lazy deletion keeps the heap intact).
    ++state.epoch;
    state.pendingEvents = 0;
    cancelledQueued += cancelled;
    return cancelled;
}

bool
Simulator::stale(const Event &event) const
{
    if (event.owner == 0)
        return false;
    const auto found = owners.find(event.owner);
    return found == owners.end() ||
           found->second.epoch != event.epoch;
}

std::size_t
Simulator::run(units::Micros until)
{
    const std::uint64_t until_ticks = toTicks(until);
    std::size_t executed = 0;
    while (!queue.empty() && queue.top().time <= until_ticks) {
        Event event = queue.top();
        queue.pop();
        if (stale(event)) {
            // Cancelled: drop without executing or advancing time.
            SCALO_ASSERT(cancelledQueued > 0,
                         "stale event not accounted as cancelled");
            --cancelledQueued;
            continue;
        }
        if (event.owner != 0) {
            OwnerState &state = owners[event.owner];
            SCALO_ASSERT(state.pendingEvents > 0,
                         "owned event count underflow");
            --state.pendingEvents;
        }
        nowTicks = event.time;
        event.action();
        ++executed;
    }
    // Advance to the horizon even when events remain beyond it, so
    // callers mixing run(until) with after() schedule relative to the
    // horizon rather than the last executed event.
    if (until_ticks != ~0ULL)
        nowTicks = std::max(nowTicks, until_ticks);
    return executed;
}

void
Simulator::clear()
{
    while (!queue.empty())
        queue.pop();
    owners.clear();
    cancelledQueued = 0;
}

} // namespace scalo::sim
