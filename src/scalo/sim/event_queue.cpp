#include "scalo/sim/event_queue.hpp"

#include <algorithm>
#include <cmath>

#include "scalo/util/contracts.hpp"
#include "scalo/util/logging.hpp"

namespace scalo::sim {

namespace {

std::uint64_t
toTicks(units::Micros t)
{
    // Saturate huge horizons (e.g. Simulator::kForever) before they
    // overflow llround.
    if (t.count() >= static_cast<double>(~0ULL >> 1))
        return ~0ULL;
    return static_cast<std::uint64_t>(std::llround(t.count()));
}

} // namespace

void
Simulator::after(units::Micros delay, Action action)
{
    SCALO_EXPECTS(delay.count() >= 0.0);
    at(units::Micros{static_cast<double>(nowTicks)} + delay,
       std::move(action));
}

void
Simulator::at(units::Micros at, Action action)
{
    const std::uint64_t ticks = toTicks(at);
    SCALO_ASSERT(ticks >= nowTicks, "scheduling into the past: ",
                 ticks, " < ", nowTicks);
    queue.push({ticks, nextSequence++, std::move(action)});
}

std::size_t
Simulator::run(units::Micros until)
{
    const std::uint64_t until_ticks = toTicks(until);
    std::size_t executed = 0;
    while (!queue.empty() && queue.top().time <= until_ticks) {
        Event event = queue.top();
        queue.pop();
        nowTicks = event.time;
        event.action();
        ++executed;
    }
    // Advance to the horizon even when events remain beyond it, so
    // callers mixing run(until) with after() schedule relative to the
    // horizon rather than the last executed event.
    if (until_ticks != ~0ULL)
        nowTicks = std::max(nowTicks, until_ticks);
    return executed;
}

void
Simulator::clear()
{
    while (!queue.empty())
        queue.pop();
}

} // namespace scalo::sim
