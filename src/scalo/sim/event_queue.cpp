#include "scalo/sim/event_queue.hpp"

#include "scalo/util/logging.hpp"

namespace scalo::sim {

void
Simulator::after(std::uint64_t delay_us, Action action)
{
    at(now + delay_us, std::move(action));
}

void
Simulator::at(std::uint64_t at_us, Action action)
{
    SCALO_ASSERT(at_us >= now, "scheduling into the past: ", at_us,
                 " < ", now);
    queue.push({at_us, nextSequence++, std::move(action)});
}

std::size_t
Simulator::run(std::uint64_t until_us)
{
    std::size_t executed = 0;
    while (!queue.empty() && queue.top().time <= until_us) {
        Event event = queue.top();
        queue.pop();
        now = event.time;
        event.action();
        ++executed;
    }
    if (queue.empty() && until_us != ~0ULL)
        now = std::max(now, until_us);
    return executed;
}

void
Simulator::clear()
{
    while (!queue.empty())
        queue.pop();
}

} // namespace scalo::sim
