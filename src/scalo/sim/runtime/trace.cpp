#include "scalo/sim/runtime/trace.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>

#include "scalo/util/contracts.hpp"

namespace scalo::sim {

std::string_view
traceEventName(TraceEventKind kind)
{
    switch (kind) {
      case TraceEventKind::StageStart: return "stage-start";
      case TraceEventKind::StageFinish: return "stage-finish";
      case TraceEventKind::PacketTx: return "packet-tx";
      case TraceEventKind::PacketRx: return "packet-rx";
      case TraceEventKind::PacketCorrupt: return "packet-corrupt";
      case TraceEventKind::PacketRetransmit:
        return "packet-retransmit";
      case TraceEventKind::NvmWrite: return "nvm-write";
      case TraceEventKind::WindowDrop: return "window-drop";
      case TraceEventKind::WindowDone: return "window-done";
      case TraceEventKind::ExchangeStart: return "exchange-start";
      case TraceEventKind::ExchangeFinish: return "exchange-finish";
      case TraceEventKind::FaultInjected: return "fault-injected";
      case TraceEventKind::NodeDown: return "node-down";
      case TraceEventKind::NodeRecovered: return "node-recovered";
      case TraceEventKind::ExchangeTimedOut:
        return "exchange-timed-out";
      case TraceEventKind::Resched: return "resched";
      case TraceEventKind::RelayForward: return "relay-forward";
      case TraceEventKind::BackboneStart: return "backbone-start";
      case TraceEventKind::BackboneFinish:
        return "backbone-finish";
      case TraceEventKind::RelayFailover: return "relay-failover";
      case TraceEventKind::PartitionStart: return "partition-start";
      case TraceEventKind::PartitionHealed:
        return "partition-healed";
      case TraceEventKind::BackboneRestitch:
        return "backbone-restitch";
    }
    return "unknown";
}

std::uint64_t
TraceCounters::total() const
{
    std::uint64_t sum = 0;
    for (std::uint64_t c : count)
        sum += c;
    return sum;
}

std::string
TraceCounters::summary() const
{
    std::string out;
    for (std::size_t k = 0; k < kTraceEventKinds; ++k) {
        if (count[k] == 0)
            continue;
        if (!out.empty())
            out += ' ';
        out += traceEventName(static_cast<TraceEventKind>(k));
        out += '=';
        out += std::to_string(count[k]);
    }
    return out.empty() ? "(no events)" : out;
}

void
Trace::record(units::Micros time, TraceEventKind kind,
              std::uint32_t node, std::uint32_t lane,
              std::string name, std::uint64_t id, double value)
{
    SCALO_EXPECTS(time.count() >= 0.0);
    TraceEvent event;
    event.timeUs =
        static_cast<std::uint64_t>(std::llround(time.count()));
    event.kind = kind;
    event.node = node;
    event.lane = lane;
    event.name = std::move(name);
    event.id = id;
    event.value = value;
    ++tally[node].count[static_cast<std::size_t>(kind)];
    if (!countersOnly)
        log.push_back(std::move(event));
}

void
Trace::append(Trace &&other)
{
    log.insert(log.end(),
               std::make_move_iterator(other.log.begin()),
               std::make_move_iterator(other.log.end()));
    for (const auto &[node, counters] : other.tally)
        tally[node] += counters;
    other.clear();
}

void
Trace::clear()
{
    log.clear();
    tally.clear();
}

TraceCounters
Trace::counters(std::uint32_t node) const
{
    const auto it = tally.find(node);
    return it == tally.end() ? TraceCounters{} : it->second;
}

TraceCounters
Trace::totals() const
{
    TraceCounters counters;
    for (const auto &[node, per_node] : tally)
        counters += per_node;
    return counters;
}

namespace {

/** Minimal JSON string escaping (labels are plain ASCII). */
std::string
jsonEscape(std::string_view text)
{
    std::string out;
    out.reserve(text.size());
    for (char c : text) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(c));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

/** Chrome "ph" phase of one event kind. */
char
phaseOf(TraceEventKind kind)
{
    switch (kind) {
      case TraceEventKind::StageStart:
      case TraceEventKind::ExchangeStart:
      case TraceEventKind::BackboneStart:
        return 'B';
      case TraceEventKind::StageFinish:
      case TraceEventKind::ExchangeFinish:
      case TraceEventKind::BackboneFinish:
        return 'E';
      default:
        return 'i';
    }
}

/** Format one value with no locale surprises. */
std::string
jsonNumber(double value)
{
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.6g", value);
    return buf;
}

} // namespace

std::string
Trace::toChromeJson() const
{
    // Stable sort by timestamp: events of equal time keep recording
    // order, so the export is deterministic for a fixed seed.
    std::vector<const TraceEvent *> ordered;
    ordered.reserve(log.size());
    for (const TraceEvent &event : log)
        ordered.push_back(&event);
    std::stable_sort(ordered.begin(), ordered.end(),
                     [](const TraceEvent *a, const TraceEvent *b) {
                         return a->timeUs < b->timeUs;
                     });

    std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
    bool first = true;
    const auto append = [&](const std::string &entry) {
        if (!first)
            out += ',';
        first = false;
        out += '\n';
        out += entry;
    };

    // Process-name metadata so Perfetto labels nodes readably.
    std::map<std::uint32_t, bool> pids;
    for (const TraceEvent &event : log)
        pids[event.node] = true;
    for (const auto &[pid, unused] : pids) {
        std::string label;
        if (pid == kNetworkNode)
            label = "network";
        else if (pid == kBackboneNode)
            label = "backbone";
        else if (pid >= kMediumBase)
            label = "medium " + std::to_string(pid - kMediumBase);
        else
            label = "node " + std::to_string(pid);
        append("{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" +
               std::to_string(pid) +
               ",\"tid\":0,\"args\":{\"name\":\"" + label + "\"}}");
    }

    for (const TraceEvent *event : ordered) {
        const char phase = phaseOf(event->kind);
        std::string entry = "{\"name\":\"" + jsonEscape(event->name) +
                            "\",\"cat\":\"" +
                            std::string(traceEventName(event->kind)) +
                            "\",\"ph\":\"" + phase + "\",\"ts\":" +
                            std::to_string(event->timeUs) +
                            ",\"pid\":" + std::to_string(event->node) +
                            ",\"tid\":" + std::to_string(event->lane);
        if (phase == 'i')
            entry += ",\"s\":\"t\"";
        entry += ",\"args\":{\"id\":" + std::to_string(event->id) +
                 ",\"value\":" + jsonNumber(event->value) + "}}";
        append(entry);
    }
    out += "\n]}\n";
    return out;
}

bool
Trace::writeChromeJson(const std::string &path) const
{
    std::ofstream file(path, std::ios::binary);
    if (!file)
        return false;
    const std::string json = toChromeJson();
    file.write(json.data(),
               static_cast<std::streamsize>(json.size()));
    return static_cast<bool>(file);
}

} // namespace scalo::sim
