#include "scalo/sim/runtime/system_sim.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "scalo/hw/nvm.hpp"
#include "scalo/net/tdma.hpp"
#include "scalo/util/contracts.hpp"
#include "scalo/util/logging.hpp"
#include "scalo/util/thread_pool.hpp"

namespace scalo::sim {

using namespace units::literals;

namespace {

constexpr double kParticipantEpsilon = 1e-6;
constexpr units::Micros kGuard{20.0};
/** Domain separator for the backoff-jitter RNG stream. */
constexpr std::uint64_t kBackoffSeedSalt = 0xbacc'0ff5'eed0'0001ULL;
/** Domain separator for the backbone channel seeds. */
constexpr std::uint64_t kBackboneChannelSalt = 0xbbbb'0000ULL;
/** Domain separator for the backbone backoff stream. */
constexpr std::uint64_t kBackboneBackoffSalt = 0xbbbb'ffffULL;

/** Indices of transmitting nodes, matching the scheduler's model. */
std::vector<std::size_t>
senderNodes(net::Pattern pattern, std::size_t nodes)
{
    std::vector<std::size_t> out;
    switch (pattern) {
      case net::Pattern::OneToAll:
        out.push_back(0);
        break;
      case net::Pattern::AllToAll:
        for (std::size_t n = 0; n < nodes; ++n)
            out.push_back(n);
        break;
      case net::Pattern::AllToOne:
        for (std::size_t n = 1; n < nodes; ++n)
            out.push_back(n);
        break;
    }
    return out;
}

std::uint64_t
toTicks(units::Micros t)
{
    SCALO_EXPECTS(t.count() >= 0.0);
    return static_cast<std::uint64_t>(std::llround(t.count()));
}

/** Round payload bytes of @p e electrodes under @p net's encoding. */
std::size_t
payloadFor(const sched::NetworkUse &net, double e)
{
    const double bytes =
        net.bytesPerElectrode * e + net.bytesPerNode;
    return std::max<std::size_t>(
        1, static_cast<std::size_t>(std::llround(bytes)));
}

} // namespace

/** Per-flow execution state threaded through the run. */
struct SystemSim::FlowRuntime
{
    /** Nodes allocated electrodes (the flow's pipelines). */
    std::vector<std::size_t> participants;
    /** NodeModel flow index per system node (npos if absent). */
    std::vector<std::size_t> flowOnNode;
    /** Transmitting nodes across the fabric; empty for local flows. */
    std::vector<std::size_t> senders;
    /** Payload bytes per sender per round (by system node). Senders
     *  of distinct clusters occupy disjoint slots, so concurrent
     *  cluster runtimes never write the same entry. */
    std::vector<std::size_t> payloadBytes;
    /** Uncommitted NVM bytes per node (sub-byte carry). */
    std::vector<double> nvmCarry;
    std::size_t windowsPerNode = 0;
    std::uint64_t windowTicks = 0;
    /** Backbone assembly deadline (exchange deadline, else window). */
    std::uint64_t deadlineTicks = 0;
    bool networked = false;
    bool exactCompare = false;
    net::PacketType packetType = net::PacketType::Hash;

    // Coordinator-side accumulators. On a clustered fabric the
    // backbone rounds fill the response/round stats; per-cluster
    // contributions are folded in by mergeClusterStats().
    std::size_t submitted = 0;
    std::size_t completed = 0;
    std::uint64_t responseSumUs = 0;
    std::uint64_t maxResponseUs = 0;
    std::uint64_t firstResponseUs = 0;
    std::uint64_t lastResponseUs = 0;
    std::uint64_t roundSumUs = 0;
    std::uint64_t maxRoundUs = 0;
    std::size_t roundCount = 0;
    std::uint64_t packetsSent = 0;
    std::uint64_t packetsCorrupted = 0;
    std::uint64_t retransmissions = 0;
    std::uint64_t packetsLost = 0;
    std::uint64_t relayForwards = 0;

    // Static predictions.
    double analyticRoundUs = 0.0;
    double analyticResponseUs = 0.0;
    bool analyticSustainable = true;
};

/** Cluster-confined state of one flow (owned by that cluster's
 *  runtime; no other thread touches it between barriers). */
struct SystemSim::ClusterFlow
{
    /** The flow's senders that live in this cluster. */
    std::vector<std::size_t> senders;
    /** This cluster's medium channel for the flow. */
    std::optional<net::WirelessChannel> channel;
    std::uint16_t nextSequence = 0;
    /** Live electrodes of the cluster (member-order sum). */
    double liveTotalElectrodes = 0.0;

    /** Assembly state of one intra-cluster exchange round. */
    struct RoundState
    {
        /** Senders done with their local pipeline, arrival order. */
        std::vector<std::size_t> ready;
        bool deadlineArmed = false;
        bool exchanged = false;
    };
    std::map<std::uint64_t, RoundState> rounds;

    // Cluster-local accumulators, merged after the run. The response
    // stats are only filled where the cluster is the point of
    // completion: local flows, and networked flows on the flat fabric.
    std::size_t completed = 0;
    std::uint64_t responseSumUs = 0;
    std::uint64_t maxResponseUs = 0;
    std::uint64_t firstResponseUs = 0;
    std::uint64_t lastResponseUs = 0;
    std::uint64_t firstTick = 0;
    std::uint64_t lastTick = 0;
    std::uint64_t roundSumUs = 0;
    std::uint64_t maxRoundUs = 0;
    std::size_t roundCount = 0;
    std::uint64_t packetsSent = 0;
    std::uint64_t packetsCorrupted = 0;
    std::uint64_t retransmissions = 0;
    std::uint64_t packetsLost = 0;
};

/** A relay node's aggregated round, queued for the backbone. */
struct SystemSim::RelayPacket
{
    std::size_t flow = 0;
    std::uint64_t window = 0;
    std::size_t cluster = 0;
    /** When the intra-cluster round started (for the round span). */
    std::uint64_t startTick = 0;
    /** When the aggregate became available at the relay. */
    std::uint64_t readyTick = 0;
    std::size_t bytes = 0;
    std::size_t relay = 0;
};

/** Backbone assembly state of one (flow, window) round. */
struct SystemSim::BackboneRound
{
    std::vector<RelayPacket> entries;
    std::uint64_t firstReadyTick =
        std::numeric_limits<std::uint64_t>::max();
    std::uint64_t minStartTick =
        std::numeric_limits<std::uint64_t>::max();
    std::uint64_t maxReadyTick = 0;
};

/**
 * One cluster's execution domain: a private event queue, medium,
 * trace buffer, failure detector and RNG streams. Everything in here
 * is touched by exactly one thread during a quantum; the coordinator
 * reads it only at barriers.
 */
struct SystemSim::Cluster
{
    Cluster(std::size_t cluster_id,
            std::vector<std::size_t> member_nodes,
            std::size_t node_count, std::size_t miss_threshold,
            std::uint64_t backoff_seed)
        : id(cluster_id), members(std::move(member_nodes)),
          mediumId(Trace::mediumNode(cluster_id)),
          detector(node_count, miss_threshold),
          backoffRng(backoff_seed)
    {
    }

    std::size_t id = 0;
    std::vector<std::size_t> members;
    std::uint32_t mediumId = Trace::kNetworkNode;
    Simulator sim;
    Trace trace;
    Medium medium;
    net::HeartbeatDetector detector;
    Rng backoffRng;
    std::vector<ClusterFlow> flows;
    /** Relay aggregates awaiting the backbone (drained at barriers). */
    std::vector<RelayPacket> outbox;
    std::vector<NodeDownEvent> downEvents;
    std::vector<RescheduleEvent> reschedEvents;
    std::uint64_t exchangeTimeouts = 0;
    std::size_t eventsExecuted = 0;
    /** The relay that carried the last forward (failover tracking). */
    std::size_t lastRelay = 0;
    /** This cluster asks the coordinator for a backbone re-stitch at
     *  the next barrier (failover or reschedule happened). */
    bool restitchNeeded = false;
    /** Latest tick of the event that set restitchNeeded. */
    std::uint64_t restitchTick = 0;
};

SystemSim::SystemSim(SystemSimConfig cfg)
    : config(std::move(cfg)),
      injector(config.faults, config.seed),
      liveSchedule(config.schedule)
{
    SCALO_ASSERT(config.schedule.feasible,
                 "SystemSim needs a feasible schedule");
    SCALO_ASSERT(config.schedule.flows.size() == config.flows.size(),
                 "schedule/flow-set mismatch");
    SCALO_ASSERT(config.duration > 0.0_ms,
                 "simulation duration must be positive");
    config.retry.validate();
    if (config.priorities.empty())
        config.priorities.assign(config.flows.size(), 1.0);
    SCALO_ASSERT(config.priorities.size() == config.flows.size(),
                 "one priority per flow");

    const std::size_t node_count = config.system.nodes;
    plan = config.system.clusters.empty()
               ? net::ClusterPlan::flat(node_count)
               : config.system.clusters;
    plan.validate();
    SCALO_ASSERT(plan.nodeCount() == node_count,
                 "cluster plan must partition the fabric's nodes");
    const std::size_t cluster_count = plan.clusterCount();
    config.faults.validate(node_count, cluster_count);

    // Per-node NVM draw streams keep the Bernoulli sequence
    // independent of cluster interleaving; the flat fabric keeps the
    // legacy shared stream (and its exact draw order).
    if (cluster_count > 1)
        injector.partitionNvmStreams(node_count);

    clusters.reserve(cluster_count);
    for (std::size_t c = 0; c < cluster_count; ++c) {
        const std::uint64_t legacy_backoff =
            config.seed ^ kBackoffSeedSalt;
        clusters.push_back(std::make_unique<Cluster>(
            c, plan.members(c), node_count,
            config.heartbeatMissThreshold,
            c == 0 ? legacy_backoff : mix64(legacy_backoff, c)));
        clusters.back()->flows.resize(config.flows.size());
        clusters.back()->lastRelay = plan.relay(c);
        if (!config.recordTrace)
            clusters.back()->trace.setCountersOnly(true);
    }
    backboneDetector = net::HeartbeatDetector(
        cluster_count, config.heartbeatMissThreshold);
    relayCrashVictims.assign(config.faults.relayCrashes.size(),
                             net::ClusterPlan::kNoRelay);
    if (!config.recordTrace) {
        globalTrace.setCountersOnly(true);
        eventTrace.setCountersOnly(true);
    }
    backboneChannels.resize(config.flows.size());
    backboneBackoffRng = Rng(mix64(config.seed ^ kBackoffSeedSalt,
                                   kBackboneBackoffSalt));

    nodeUp.assign(node_count, 1);
    crashedAtMs.assign(node_count, -1.0);
    nodes.reserve(node_count);
    for (std::size_t n = 0; n < node_count; ++n) {
        Cluster &cl = *clusters[plan.clusterOf(n)];
        nodes.emplace_back(cl.sim, static_cast<std::uint32_t>(n),
                           &cl.trace);
    }

    const net::TdmaSchedule tdma(*config.system.radio, node_count);
    flowRuntimes.resize(config.flows.size());
    for (std::size_t f = 0; f < config.flows.size(); ++f) {
        const sched::FlowSpec &spec = config.flows[f];
        const sched::FlowAllocation &alloc = config.schedule.flows[f];
        FlowRuntime &rt = flowRuntimes[f];
        rt.flowOnNode.assign(node_count, ~std::size_t{0});
        rt.payloadBytes.assign(node_count, 0);
        rt.nvmCarry.assign(node_count, 0.0);
        rt.windowTicks = toTicks(units::Micros(spec.window));
        rt.deadlineTicks =
            config.retry.exchangeDeadline.count() > 0.0
                ? toTicks(units::Micros(config.retry.exchangeDeadline))
                : rt.windowTicks;
        rt.windowsPerNode = static_cast<std::size_t>(
            std::floor(config.duration.count() /
                           spec.window.count() +
                       1e-9));
        rt.networked = spec.network.has_value() &&
                       config.system.wirelessNetwork;
        rt.exactCompare =
            rt.networked && spec.network->exactCompare;
        rt.packetType = rt.exactCompare ? net::PacketType::Signal
                                        : net::PacketType::Hash;

        std::vector<hw::PipelineStage> stages;
        for (hw::PeKind kind : spec.peChain)
            stages.push_back({kind, 0.0, 1});
        for (std::size_t n = 0; n < node_count; ++n) {
            const double e = alloc.electrodesPerNode[n];
            if (e <= kParticipantEpsilon)
                continue;
            for (hw::PipelineStage &stage : stages)
                stage.electrodes = e;
            const std::size_t idx = nodes[n].addPipeline(
                hw::Pipeline(spec.name, stages), spec.window);
            rt.flowOnNode[n] = idx;
            rt.participants.push_back(n);
            Cluster *cl = clusters[plan.clusterOf(n)].get();
            nodes[n].onWindowDone(
                idx, [this, cl, f, n](std::size_t, std::uint64_t w) {
                    accountWindow(*cl, f,
                                  static_cast<std::uint32_t>(n), w);
                });
        }

        // Static predictions: pipeline latency plus, for networked
        // flows, the TDMA round of the schedule's payload sizes — the
        // widest cluster's intra round plus, on a multi-cluster
        // fabric, the serialized backbone round of per-cluster
        // aggregates (the scheduler's own response model).
        const hw::Pipeline reference(spec.name, stages);
        rt.analyticResponseUs =
            units::Micros(reference.latency()).count();
        if (rt.networked) {
            for (std::size_t n :
                 senderNodes(spec.network->pattern, node_count)) {
                if (alloc.electrodesPerNode[n] <=
                        kParticipantEpsilon &&
                    spec.network->bytesPerNode <= 0.0)
                    continue;
                rt.senders.push_back(n);
                rt.payloadBytes[n] = payloadFor(
                    *spec.network, alloc.electrodesPerNode[n]);
            }
            const std::uint64_t legacy_channel =
                config.seed ^ (0x9e37'79b9 * (f + 1));
            double widest_intra = 0.0;
            double backbone = 0.0;
            for (std::size_t c = 0; c < cluster_count; ++c) {
                Cluster &cl = *clusters[c];
                ClusterFlow &cf = cl.flows[f];
                cf.channel.emplace(*config.system.radio,
                                   c == 0 ? legacy_channel
                                          : mix64(legacy_channel, c));
                double intra = 0.0;
                double cluster_total = 0.0;
                for (std::size_t n : cl.members) {
                    cluster_total += alloc.electrodesPerNode[n];
                    if (std::find(rt.senders.begin(),
                                  rt.senders.end(),
                                  n) == rt.senders.end())
                        continue;
                    cf.senders.push_back(n);
                    intra += units::Micros(
                                 tdma.slotTime(rt.payloadBytes[n]))
                                 .count();
                }
                cf.liveTotalElectrodes = cluster_total;
                widest_intra = std::max(widest_intra, intra);
                if (cluster_count > 1 && !cf.senders.empty())
                    backbone +=
                        units::Micros(
                            tdma.slotTime(payloadFor(*spec.network,
                                                     cluster_total)))
                            .count();
            }
            rt.analyticRoundUs = widest_intra + backbone;
            rt.analyticResponseUs += rt.analyticRoundUs;
            backboneChannels[f].emplace(
                *config.system.radio,
                mix64(config.seed, kBackboneChannelSalt + f));
        } else {
            for (std::size_t c = 0; c < cluster_count; ++c) {
                ClusterFlow &cf = clusters[c]->flows[f];
                double cluster_total = 0.0;
                for (std::size_t n : clusters[c]->members)
                    cluster_total += alloc.electrodesPerNode[n];
                cf.liveTotalElectrodes = cluster_total;
            }
        }
        for (std::size_t n : rt.participants)
            if (!nodes[n].analyticallySustainable(rt.flowOnNode[n]))
                rt.analyticSustainable = false;
    }
}

SystemSim::~SystemSim() = default;

void
SystemSim::accountWindow(Cluster &cluster, std::size_t flow,
                         std::uint32_t node, std::uint64_t window_id)
{
    FlowRuntime &rt = flowRuntimes[flow];
    ClusterFlow &cf = cluster.flows[flow];
    const sched::FlowSpec &spec = config.flows[flow];
    // The degraded allocation (identical to the original until a
    // reschedule happens) drives energy and NVM accounting.
    const double e = liveSchedule.flows[flow].electrodesPerNode[node];

    // Dynamic energy of the local per-window work. Exact-compare
    // flows charge the comparison to the receivers instead (the
    // scheduler's model), accrued when the exchange completes.
    if (!rt.exactCompare) {
        const double dynamic_mw = spec.linPerElectrode.count() * e +
                                  spec.quadPerElectrode2.count() * e *
                                      e;
        dynamicEnergyUj[node] += dynamic_mw * spec.window.count();
    }

    // NVM write traffic of this window.
    if (spec.nvmWriteBytesPerElecPerSec > 0.0) {
        rt.nvmCarry[node] += spec.nvmWriteBytesPerElecPerSec * e *
                             spec.window.in<units::Seconds>();
        const auto bytes =
            static_cast<std::size_t>(rt.nvmCarry[node]);
        if (bytes > 0) {
            rt.nvmCarry[node] -= static_cast<double>(bytes);
            if (injector.nvmWriteFails(node)) {
                // The append is lost; the page never programs.
                cluster.trace.record(cluster.sim.now(),
                                     TraceEventKind::FaultInjected,
                                     node, 0, "nvm-write-fail",
                                     window_id,
                                     static_cast<double>(bytes));
            } else {
                nvmBytes[node] += bytes;
                nvmPages[node] += storage[node].append(
                    hw::Partition::Signals, bytes);
                cluster.trace.record(cluster.sim.now(),
                                     TraceEventKind::NvmWrite, node,
                                     0, spec.name, window_id,
                                     static_cast<double>(bytes));
            }
        }
    }

    const bool sender = rt.networked &&
                        std::find(cf.senders.begin(),
                                  cf.senders.end(),
                                  node) != cf.senders.end();
    if (sender) {
        ClusterFlow::RoundState &round = cf.rounds[window_id];
        if (round.exchanged)
            return; // too late: the round ran at its deadline
        round.ready.push_back(node);
        if (!round.deadlineArmed) {
            // Armed by the first ready sender: the round never waits
            // on an absent peer for longer than the deadline (a dead
            // sender would otherwise stall the flow forever).
            round.deadlineArmed = true;
            const units::Micros deadline =
                config.retry.exchangeDeadline.count() > 0.0
                    ? units::Micros(config.retry.exchangeDeadline)
                    : units::Micros{
                          static_cast<double>(rt.windowTicks)};
            Cluster *cl = &cluster;
            cluster.sim.after(deadline, [this, cl, flow, window_id] {
                onExchangeDeadline(*cl, flow, window_id);
            });
        }
        // The round starts once every expected (not declared-dead)
        // sender of the cluster has its payload ready.
        const bool complete = std::all_of(
            cf.senders.begin(), cf.senders.end(),
            [&](std::size_t s) {
                return cluster.detector.dead(s) ||
                       std::find(round.ready.begin(),
                                 round.ready.end(),
                                 s) != round.ready.end();
            });
        if (complete)
            runExchange(cluster, flow, window_id);
        return;
    }
    if (rt.networked)
        return; // non-sender local work is power only

    // Local flow: the node-level completion is the response.
    const std::uint64_t arrival = window_id * rt.windowTicks;
    const std::uint64_t ticks = cluster.sim.ticks();
    const std::uint64_t response = ticks - arrival;
    if (cf.completed == 0) {
        cf.firstResponseUs = response;
        cf.firstTick = ticks;
    }
    cf.lastResponseUs = response;
    cf.lastTick = ticks;
    cf.maxResponseUs = std::max(cf.maxResponseUs, response);
    cf.responseSumUs += response;
    ++cf.completed;
}

void
SystemSim::onExchangeDeadline(Cluster &cluster, std::size_t flow,
                              std::uint64_t window_id)
{
    ClusterFlow &cf = cluster.flows[flow];
    ClusterFlow::RoundState &round = cf.rounds[window_id];
    if (round.exchanged)
        return; // assembled in time; nothing to do
    ++cluster.exchangeTimeouts;
    cluster.trace.record(cluster.sim.now(),
                         TraceEventKind::ExchangeTimedOut,
                         cluster.mediumId,
                         static_cast<std::uint32_t>(flow + 1),
                         config.flows[flow].name, window_id,
                         static_cast<double>(round.ready.size()));
    runExchange(cluster, flow, window_id);
}

void
SystemSim::runExchange(Cluster &cluster, std::size_t flow,
                       std::uint64_t window_id)
{
    FlowRuntime &rt = flowRuntimes[flow];
    ClusterFlow &cf = cluster.flows[flow];
    const sched::FlowSpec &spec = config.flows[flow];
    const net::RadioSpec &radio = *config.system.radio;
    const auto lane = static_cast<std::uint32_t>(flow + 1);

    ClusterFlow::RoundState &round = cf.rounds[window_id];
    SCALO_ASSERT(!round.exchanged, "exchange round ran twice");
    round.exchanged = true;

    // Heartbeat bookkeeping happens at round start: every slot is a
    // free heartbeat (Section 3.4), so transmitting senders reset
    // their miss counters (and un-declare a rebooted node), while
    // expected-but-silent senders accrue a miss each.
    std::vector<std::size_t> transmitting;
    for (const std::size_t n : cf.senders) {
        const bool ready = std::find(round.ready.begin(),
                                     round.ready.end(),
                                     n) != round.ready.end();
        if (ready) {
            transmitting.push_back(n);
            if (cluster.detector.recordHeard(n))
                declareRecovered(cluster, n);
        } else if (!cluster.detector.dead(n)) {
            if (cluster.detector.recordMiss(n))
                declareDead(cluster, n);
        }
    }

    const std::uint64_t start =
        cluster.medium.acquire(cluster.sim.ticks());
    cluster.trace.record(units::Micros{static_cast<double>(start)},
                         TraceEventKind::ExchangeStart,
                         cluster.mediumId, lane, spec.name,
                         window_id);

    double cursor = static_cast<double>(start);
    for (std::size_t n : transmitting) {
        net::Packet packet;
        packet.source = static_cast<std::uint8_t>(n);
        packet.destination =
            spec.network->pattern == net::Pattern::AllToOne
                ? std::uint8_t{0}
                : net::kBroadcast;
        packet.type = rt.packetType;
        packet.timestampUs =
            static_cast<std::uint32_t>(cluster.sim.ticks());
        packet.payload.resize(rt.payloadBytes[n]);
        for (std::size_t i = 0; i < packet.payload.size(); ++i)
            packet.payload[i] =
                static_cast<std::uint8_t>((i * 31 + n) & 0xff);
        for (net::Packet &fragment : net::fragment(packet)) {
            fragment.sequence = cf.nextSequence++;
            const units::Micros wire_time{
                radio
                    .transferTime(units::Bytes{static_cast<double>(
                        fragment.wireBytes())})
                    .in<units::Micros>()};
            bool delivered = false;
            for (std::size_t attempt = 0;
                 attempt < config.retry.maxAttempts; ++attempt) {
                if (attempt > 0) {
                    // Exponential backoff with seeded jitter before
                    // each retry; the retry's radio energy is real
                    // and lands on the sender (the scheduler only
                    // provisioned the always-on radio budget).
                    cursor += config.retry
                                  .backoff(attempt,
                                           cluster.backoffRng)
                                  .count();
                    dynamicEnergyUj[n] +=
                        radio
                            .transferEnergy(units::Bytes{
                                static_cast<double>(
                                    fragment.wireBytes())})
                            .count() *
                        1e3;
                }
                // Channel condition at this instant: dropout windows
                // lose everything, BER spikes raise the error rate.
                const units::Micros at{cursor};
                const double spike = injector.berOverrideAt(at);
                cf.channel->setBer(spike >= 0.0 ? spike : radio.ber);
                cf.channel->setOutage(injector.inDropout(at));
                ++cf.packetsSent;
                cluster.trace.record(
                    units::Micros{cursor}, TraceEventKind::PacketTx,
                    static_cast<std::uint32_t>(n), 0,
                    std::string(spec.name), fragment.sequence,
                    static_cast<double>(fragment.wireBytes()));
                const net::ReceiveResult receipt =
                    cf.channel->transmit(fragment);
                cursor += wire_time.count();
                const bool corrupt =
                    !receipt.headerOk || !receipt.payloadOk;
                if (corrupt) {
                    ++cf.packetsCorrupted;
                    cluster.trace.record(
                        units::Micros{cursor},
                        TraceEventKind::PacketCorrupt,
                        cluster.mediumId, lane,
                        std::string(spec.name), fragment.sequence,
                        static_cast<double>(fragment.wireBytes()));
                }
                if (receipt.accepted()) {
                    cluster.trace.record(
                        units::Micros{cursor},
                        TraceEventKind::PacketRx, cluster.mediumId,
                        lane, std::string(spec.name),
                        fragment.sequence,
                        static_cast<double>(fragment.wireBytes()));
                    delivered = true;
                    break;
                }
                if (!config.retry.shouldRetry(attempt))
                    break;
                ++cf.retransmissions;
                cluster.trace.record(
                    units::Micros{cursor},
                    TraceEventKind::PacketRetransmit,
                    static_cast<std::uint32_t>(n), 0,
                    std::string(spec.name), fragment.sequence,
                    static_cast<double>(fragment.wireBytes()));
            }
            if (!delivered)
                ++cf.packetsLost;
        }
        cursor += kGuard.count();
    }

    const std::uint64_t end = toTicks(units::Micros{cursor});
    cluster.medium.release(end);
    cluster.trace.record(units::Micros{static_cast<double>(end)},
                         TraceEventKind::ExchangeFinish,
                         cluster.mediumId, lane, spec.name,
                         window_id);

    if (transmitting.empty())
        return; // nobody had data: no response to account

    if (clusters.size() == 1) {
        // Flat fabric: the intra round IS the whole exchange.
        const std::uint64_t roundUs = end - start;
        cf.roundSumUs += roundUs;
        cf.maxRoundUs = std::max(cf.maxRoundUs, roundUs);
        ++cf.roundCount;

        const std::uint64_t arrival = window_id * rt.windowTicks;
        const std::uint64_t response = end - arrival;
        if (cf.completed == 0) {
            cf.firstResponseUs = response;
            cf.firstTick = end;
        }
        cf.lastResponseUs = response;
        cf.lastTick = end;
        cf.maxResponseUs = std::max(cf.maxResponseUs, response);
        cf.responseSumUs += response;
        ++cf.completed;

        // Exact-compare flows: each node checks every window it
        // received against its local history; the scheduler charges
        // that power to the receivers, one window's worth per
        // exchange. Physically-down nodes receive (and burn) nothing.
        if (rt.exactCompare) {
            const double total =
                liveSchedule.flows[flow].totalElectrodes;
            for (std::size_t n = 0; n < nodes.size(); ++n) {
                if (!nodeUp[n])
                    continue;
                const double e =
                    liveSchedule.flows[flow].electrodesPerNode[n];
                dynamicEnergyUj[n] += spec.linPerElectrode.count() *
                                      (total - e) *
                                      spec.window.count();
            }
        }
        return;
    }

    // Clustered fabric: members compare against cluster-local
    // history; the relay queues the cluster's aggregate for the
    // backbone, where the round (and the flow's response) completes.
    if (rt.exactCompare) {
        const double total = cf.liveTotalElectrodes;
        for (std::size_t n : cluster.members) {
            if (!nodeUp[n])
                continue;
            const double e =
                liveSchedule.flows[flow].electrodesPerNode[n];
            dynamicEnergyUj[n] += spec.linPerElectrode.count() *
                                  (total - e) * spec.window.count();
        }
    }

    RelayPacket forward;
    forward.flow = flow;
    forward.window = window_id;
    forward.cluster = cluster.id;
    forward.startTick = start;
    forward.readyTick = end;
    forward.bytes =
        payloadFor(*spec.network, cf.liveTotalElectrodes);
    forward.relay = plan.relay(
        cluster.id, [this](std::size_t n) { return nodeUp[n] != 0; });
    if (forward.relay == net::ClusterPlan::kNoRelay)
        return; // every member died since the round assembled
    if (forward.relay != cluster.lastRelay) {
        // Relay duty migrated (death or recovery of an earlier
        // member): trace the failover and ask the coordinator for a
        // backbone re-stitch at the next barrier.
        cluster.trace.record(
            units::Micros{static_cast<double>(end)},
            TraceEventKind::RelayFailover,
            static_cast<std::uint32_t>(forward.relay), lane,
            spec.name, window_id,
            static_cast<double>(cluster.lastRelay));
        cluster.lastRelay = forward.relay;
        cluster.restitchNeeded = true;
        cluster.restitchTick = std::max(cluster.restitchTick, end);
    }
    cluster.trace.record(units::Micros{static_cast<double>(end)},
                         TraceEventKind::RelayForward,
                         static_cast<std::uint32_t>(forward.relay),
                         lane, spec.name, window_id,
                         static_cast<double>(forward.bytes));
    cluster.outbox.push_back(forward);
}

void
SystemSim::declareDead(Cluster &cluster, std::size_t node)
{
    cluster.trace.record(
        cluster.sim.now(), TraceEventKind::NodeDown,
        static_cast<std::uint32_t>(node), 0, "node-down",
        cluster.downEvents.size(),
        static_cast<double>(
            cluster.detector.consecutiveMisses(node)));
    NodeDownEvent event;
    event.node = static_cast<std::uint32_t>(node);
    event.crashedAt = units::Millis{crashedAtMs[node]};
    event.detectedAt = units::Millis(cluster.sim.now());
    cluster.downEvents.push_back(event);
    applyReschedule(cluster);
}

void
SystemSim::declareRecovered(Cluster &cluster, std::size_t node)
{
    cluster.trace.record(cluster.sim.now(),
                         TraceEventKind::NodeRecovered,
                         static_cast<std::uint32_t>(node), 0,
                         "node-recovered",
                         cluster.downEvents.size());
    applyReschedule(cluster);
}

void
SystemSim::applyReschedule(Cluster &cluster)
{
    const std::vector<std::size_t> dead =
        cluster.detector.deadNodes();
    const sched::Scheduler scheduler(config.system);
    sched::RescheduleResult repaired;
    if (clusters.size() == 1) {
        repaired = scheduler.reschedule(config.flows,
                                        config.priorities,
                                        config.schedule, dead);
        SCALO_ASSERT(repaired.schedule.feasible,
                     "reschedule must always produce an allocation");
        liveSchedule = repaired.schedule;
    } else {
        // Cluster-confined repair: only this cluster's columns of the
        // live allocation change; concurrent repairs of other
        // clusters touch disjoint columns.
        repaired = scheduler.rescheduleCluster(
            config.flows, config.priorities, config.schedule, dead,
            cluster.id);
        SCALO_ASSERT(repaired.schedule.feasible,
                     "cluster reschedule must produce an allocation");
        for (std::size_t f = 0; f < liveSchedule.flows.size(); ++f)
            for (std::size_t n : cluster.members)
                liveSchedule.flows[f].electrodesPerNode[n] =
                    repaired.schedule.flows[f].electrodesPerNode[n];
        // The clamped per-cluster repair left capacity on the table;
        // the coordinator reclaims it fabric-wide at the barrier.
        cluster.restitchNeeded = true;
        cluster.restitchTick =
            std::max(cluster.restitchTick, cluster.sim.ticks());
    }

    // Surviving senders adapt their payloads (and the cluster its
    // live totals) to the new allocation from the next round on.
    refreshClusterAllocation(cluster);

    cluster.trace.record(cluster.sim.now(), TraceEventKind::Resched,
                         cluster.mediumId, 0, "resched",
                         cluster.reschedEvents.size(),
                         static_cast<double>(dead.size()));
    RescheduleEvent event;
    event.at = units::Millis(cluster.sim.now());
    event.deadNodes = repaired.deadNodes;
    event.viaIlp = repaired.viaIlp;
    event.resolvedClusters = repaired.resolvedClusters;
    event.throughputBefore = repaired.throughputBefore;
    event.throughputAfter = repaired.throughputAfter;
    event.maxNodePowerBefore = repaired.maxNodePowerBefore;
    event.maxNodePowerAfter = repaired.maxNodePowerAfter;
    cluster.reschedEvents.push_back(std::move(event));
}

void
SystemSim::refreshClusterAllocation(Cluster &cluster)
{
    for (std::size_t f = 0; f < flowRuntimes.size(); ++f) {
        FlowRuntime &rt = flowRuntimes[f];
        ClusterFlow &cf = cluster.flows[f];
        double cluster_total = 0.0;
        for (std::size_t n : cluster.members)
            cluster_total +=
                liveSchedule.flows[f].electrodesPerNode[n];
        cf.liveTotalElectrodes = cluster_total;
        if (!rt.networked)
            continue;
        const sched::FlowSpec &spec = config.flows[f];
        for (const std::size_t n : cf.senders)
            rt.payloadBytes[n] = payloadFor(
                *spec.network,
                liveSchedule.flows[f].electrodesPerNode[n]);
    }
}

void
SystemSim::scheduleFaultEvents()
{
    for (const NodeCrashFault &crash : config.faults.crashes) {
        Cluster *cl = clusters[plan.clusterOf(crash.node)].get();
        cl->sim.at(units::Micros(crash.at), [this, cl, crash] {
            if (!nodeUp[crash.node])
                return; // already down
            nodeUp[crash.node] = 0;
            crashedAtMs[crash.node] = crash.at.count();
            nodes[crash.node].halt();
            cl->trace.record(cl->sim.now(),
                             TraceEventKind::FaultInjected,
                             crash.node, 0, "crash", 0);
        });
        if (crash.reboots())
            cl->sim.at(units::Micros(crash.rebootAt),
                       [this, cl, crash] {
                           if (nodeUp[crash.node])
                               return;
                           nodeUp[crash.node] = 1;
                           nodes[crash.node].resume();
                           // The node rejoins silently; its next
                           // completed window puts it back into a
                           // round, where being heard declares the
                           // recovery.
                           cl->trace.record(
                               cl->sim.now(),
                               TraceEventKind::FaultInjected,
                               crash.node, 0, "reboot", 0);
                       });
    }
    // Channel-condition markers live on cluster 0's queue (the
    // injector applies them to every cluster's channel regardless).
    Cluster *front = clusters.front().get();
    for (std::size_t i = 0; i < config.faults.dropouts.size(); ++i) {
        const RadioDropoutFault &drop = config.faults.dropouts[i];
        front->sim.at(units::Micros(drop.from),
                      [this, front, i, drop] {
                          front->trace.record(
                              front->sim.now(),
                              TraceEventKind::FaultInjected,
                              Trace::kNetworkNode, 0,
                              "radio-dropout", i,
                              (drop.to - drop.from).count());
                      });
    }
    for (std::size_t i = 0; i < config.faults.berSpikes.size();
         ++i) {
        const BerSpikeFault &spike = config.faults.berSpikes[i];
        front->sim.at(units::Micros(spike.from),
                      [this, front, i, spike] {
                          front->trace.record(
                              front->sim.now(),
                              TraceEventKind::FaultInjected,
                              Trace::kNetworkNode, 0, "ber-spike", i,
                              spike.ber);
                      });
    }
    // Relay crashes target the *role*: the victim is whoever holds
    // relay duty at the crash instant, resolved on the owning
    // cluster's queue (so it composes with earlier crashes that
    // already migrated the duty).
    for (std::size_t i = 0; i < config.faults.relayCrashes.size();
         ++i) {
        const RelayCrashFault &crash = config.faults.relayCrashes[i];
        Cluster *cl = clusters[crash.cluster].get();
        cl->sim.at(units::Micros(crash.at), [this, cl, i, crash] {
            const std::size_t victim = plan.relay(
                cl->id,
                [this](std::size_t n) { return nodeUp[n] != 0; });
            if (victim == net::ClusterPlan::kNoRelay)
                return; // the whole cluster is already down
            relayCrashVictims[i] = victim;
            nodeUp[victim] = 0;
            crashedAtMs[victim] = crash.at.count();
            nodes[victim].halt();
            cl->trace.record(cl->sim.now(),
                             TraceEventKind::FaultInjected,
                             static_cast<std::uint32_t>(victim), 0,
                             "relay-crash", i);
        });
        if (crash.reboots())
            cl->sim.at(units::Micros(crash.rebootAt),
                       [this, cl, i] {
                           const std::size_t victim =
                               relayCrashVictims[i];
                           if (victim == net::ClusterPlan::kNoRelay ||
                               nodeUp[victim])
                               return;
                           nodeUp[victim] = 1;
                           nodes[victim].resume();
                           cl->trace.record(
                               cl->sim.now(),
                               TraceEventKind::FaultInjected,
                               static_cast<std::uint32_t>(victim), 0,
                               "relay-reboot", i);
                       });
    }
    // Partition windows and backbone BER spikes are injected by the
    // coordinator (processBackbone / runBackboneRound consult the
    // injector); these markers just put the instants on the trace.
    for (std::size_t i = 0; i < config.faults.partitions.size();
         ++i) {
        const ClusterPartitionFault &part =
            config.faults.partitions[i];
        front->sim.at(units::Micros(part.from),
                      [this, front, i, part] {
                          front->trace.record(
                              front->sim.now(),
                              TraceEventKind::FaultInjected,
                              Trace::kBackboneNode, 0,
                              "cluster-partition", i,
                              static_cast<double>(part.cluster));
                      });
        front->sim.at(units::Micros(part.to),
                      [this, front, i, part] {
                          front->trace.record(
                              front->sim.now(),
                              TraceEventKind::FaultInjected,
                              Trace::kBackboneNode, 0,
                              "cluster-partition-heal", i,
                              static_cast<double>(part.cluster));
                      });
    }
    for (std::size_t i = 0;
         i < config.faults.backboneBerSpikes.size(); ++i) {
        const BackboneBerSpikeFault &spike =
            config.faults.backboneBerSpikes[i];
        front->sim.at(units::Micros(spike.from),
                      [this, front, i, spike] {
                          front->trace.record(
                              front->sim.now(),
                              TraceEventKind::FaultInjected,
                              Trace::kBackboneNode, 0,
                              "backbone-ber-spike", i, spike.ber);
                      });
    }
    for (const ThermalThrottleFault &throttle :
         config.faults.throttles) {
        Cluster *cl = clusters[plan.clusterOf(throttle.node)].get();
        cl->sim.at(units::Micros(throttle.from),
                   [this, cl, throttle] {
                       nodes[throttle.node].setThrottle(
                           injector.throttleAt(throttle.node,
                                               cl->sim.now()));
                       cl->trace.record(
                           cl->sim.now(),
                           TraceEventKind::FaultInjected,
                           throttle.node, 0, "thermal-throttle", 0,
                           throttle.slowdown);
                   });
        cl->sim.at(units::Micros(throttle.to), [this, cl, throttle] {
            // Re-evaluate, not reset: overlapping intervals multiply
            // and the injector knows which ones still cover `now`.
            nodes[throttle.node].setThrottle(injector.throttleAt(
                throttle.node, cl->sim.now()));
            cl->trace.record(cl->sim.now(),
                             TraceEventKind::FaultInjected,
                             throttle.node, 0, "thermal-restore", 0);
        });
    }
}

void
SystemSim::processBackbone(std::uint64_t upto_ticks)
{
    // Drain outboxes in cluster order: the gathering order (and so
    // the backbone trace) is independent of which worker finished
    // its quantum first.
    for (std::unique_ptr<Cluster> &cl : clusters) {
        std::vector<RelayPacket> keep;
        for (RelayPacket &p : cl->outbox) {
            if (p.readyTick > upto_ticks) {
                keep.push_back(p);
                continue;
            }
            if (injector.inPartition(
                    p.cluster,
                    units::Micros{
                        static_cast<double>(p.readyTick)})) {
                // The cluster's backbone link is severed: the
                // aggregate never reaches the backbone. Intra-cluster
                // TDMA already ran; only the forward is lost.
                ++relayForwardsDropped;
                continue;
            }
            BackboneRound &round =
                pendingRounds[{p.flow, p.window}];
            round.entries.push_back(p);
            round.firstReadyTick =
                std::min(round.firstReadyTick, p.readyTick);
            round.minStartTick =
                std::min(round.minStartTick, p.startTick);
            round.maxReadyTick =
                std::max(round.maxReadyTick, p.readyTick);
            ++flowRuntimes[p.flow].relayForwards;
        }
        cl->outbox = std::move(keep);
    }

    struct Runnable
    {
        std::uint64_t at;
        std::size_t flow;
        std::uint64_t window;
        bool timedOut;
    };
    std::vector<Runnable> runnable;
    for (auto &[key, round] : pendingRounds) {
        const auto [f, w] = key;
        const FlowRuntime &rt = flowRuntimes[f];
        // Expected contributions: clusters with at least one sender
        // their detector has not declared dead, and that the
        // backbone detector has not declared partitioned (a silent
        // cluster must not stall every round until its deadline).
        std::size_t expected = 0;
        for (const std::unique_ptr<Cluster> &cl : clusters) {
            if (backboneDetector.dead(cl->id))
                continue;
            const ClusterFlow &cf = cl->flows[f];
            for (std::size_t s : cf.senders)
                if (!cl->detector.dead(s)) {
                    ++expected;
                    break;
                }
        }
        if (round.entries.size() >= expected) {
            runnable.push_back({round.maxReadyTick, f, w, false});
        } else if (round.firstReadyTick + rt.deadlineTicks <=
                   upto_ticks) {
            runnable.push_back(
                {std::max(round.maxReadyTick,
                          round.firstReadyTick + rt.deadlineTicks),
                 f, w, true});
        }
    }
    std::sort(runnable.begin(), runnable.end(),
              [](const Runnable &a, const Runnable &b) {
                  if (a.at != b.at)
                      return a.at < b.at;
                  if (a.flow != b.flow)
                      return a.flow < b.flow;
                  return a.window < b.window;
              });
    for (const Runnable &r : runnable) {
        const auto key = std::make_pair(r.flow, r.window);
        runBackboneRound(r.flow, r.window, pendingRounds[key],
                         r.timedOut);
        pendingRounds.erase(key);
    }

    // Re-stitch last: the rounds above ran on the conservative
    // allocation; from the next quantum on the fabric uses the
    // reclaimed one. Single-threaded, so determinism is free.
    performRestitch(upto_ticks);
}

void
SystemSim::runBackboneRound(std::size_t flow,
                            std::uint64_t window_id,
                            BackboneRound &round, bool timed_out)
{
    FlowRuntime &rt = flowRuntimes[flow];
    const sched::FlowSpec &spec = config.flows[flow];
    const net::RadioSpec &radio = *config.system.radio;
    const auto lane = static_cast<std::uint32_t>(flow + 1);
    if (round.entries.empty())
        return;

    std::sort(round.entries.begin(), round.entries.end(),
              [](const RelayPacket &a, const RelayPacket &b) {
                  return a.cluster < b.cluster;
              });
    const std::uint64_t at =
        timed_out ? std::max(round.maxReadyTick,
                             round.firstReadyTick + rt.deadlineTicks)
                  : round.maxReadyTick;
    const std::uint64_t start = backboneMedium.acquire(at);
    globalTrace.record(units::Micros{static_cast<double>(start)},
                       TraceEventKind::BackboneStart,
                       Trace::kBackboneNode, lane, spec.name,
                       window_id);
    if (timed_out) {
        ++backboneTimeouts;
        globalTrace.record(units::Micros{static_cast<double>(start)},
                           TraceEventKind::ExchangeTimedOut,
                           Trace::kBackboneNode, lane, spec.name,
                           window_id,
                           static_cast<double>(round.entries.size()));
    }

    // Backbone-cadence heartbeats: every round each cluster with
    // alive senders either reached the backbone (heard) or did not
    // (miss). Crossing the miss threshold declares the cluster
    // partitioned; being heard again declares the heal. Either
    // transition asks for a re-stitch at the barrier.
    for (const std::unique_ptr<Cluster> &cl : clusters) {
        const bool present = std::any_of(
            round.entries.begin(), round.entries.end(),
            [&](const RelayPacket &p) {
                return p.cluster == cl->id;
            });
        if (present) {
            if (backboneDetector.recordHeard(cl->id)) {
                globalTrace.record(
                    units::Micros{static_cast<double>(start)},
                    TraceEventKind::PartitionHealed,
                    Trace::kBackboneNode, 0, "partition-healed",
                    cl->id);
                partitionEvents.push_back(
                    {cl->id,
                     units::Millis(units::Micros{
                         static_cast<double>(start)}),
                     true});
                backboneRestitchPending = true;
                restitchTickHint =
                    std::max(restitchTickHint, start);
            }
            continue;
        }
        bool alive_sender = false;
        for (const std::size_t s : cl->flows[flow].senders)
            if (!cl->detector.dead(s)) {
                alive_sender = true;
                break;
            }
        if (!alive_sender || backboneDetector.dead(cl->id))
            continue; // silence is expected (or already declared)
        if (backboneDetector.recordMiss(cl->id)) {
            globalTrace.record(
                units::Micros{static_cast<double>(start)},
                TraceEventKind::PartitionStart,
                Trace::kBackboneNode, 0, "partition-start", cl->id,
                static_cast<double>(
                    backboneDetector.consecutiveMisses(cl->id)));
            partitionEvents.push_back(
                {cl->id,
                 units::Millis(
                     units::Micros{static_cast<double>(start)}),
                 false});
            backboneRestitchPending = true;
            restitchTickHint = std::max(restitchTickHint, start);
        }
    }

    double cursor = static_cast<double>(start);
    for (const RelayPacket &entry : round.entries) {
        net::Packet packet;
        packet.source = static_cast<std::uint8_t>(entry.relay);
        packet.destination = net::kBroadcast;
        packet.type = rt.packetType;
        packet.timestampUs = static_cast<std::uint32_t>(start);
        packet.payload.resize(entry.bytes);
        for (std::size_t i = 0; i < packet.payload.size(); ++i)
            packet.payload[i] = static_cast<std::uint8_t>(
                (i * 31 + entry.relay) & 0xff);
        for (net::Packet &fragment : net::fragment(packet)) {
            fragment.sequence = backboneSequence++;
            const units::Micros wire_time{
                radio
                    .transferTime(units::Bytes{static_cast<double>(
                        fragment.wireBytes())})
                    .in<units::Micros>()};
            bool delivered = false;
            for (std::size_t attempt = 0;
                 attempt < config.retry.maxAttempts; ++attempt) {
                if (attempt > 0) {
                    cursor += config.retry
                                  .backoff(attempt,
                                           backboneBackoffRng)
                                  .count();
                    dynamicEnergyUj[entry.relay] +=
                        radio
                            .transferEnergy(units::Bytes{
                                static_cast<double>(
                                    fragment.wireBytes())})
                            .count() *
                        1e3;
                }
                const units::Micros tx_at{cursor};
                const double spike =
                    injector.backboneBerOverrideAt(tx_at);
                backboneChannels[flow]->setBer(
                    spike >= 0.0 ? spike : radio.ber);
                backboneChannels[flow]->setOutage(
                    injector.inDropout(tx_at));
                ++rt.packetsSent;
                globalTrace.record(
                    units::Micros{cursor}, TraceEventKind::PacketTx,
                    static_cast<std::uint32_t>(entry.relay), 0,
                    std::string(spec.name), fragment.sequence,
                    static_cast<double>(fragment.wireBytes()));
                const net::ReceiveResult receipt =
                    backboneChannels[flow]->transmit(fragment);
                cursor += wire_time.count();
                const bool corrupt =
                    !receipt.headerOk || !receipt.payloadOk;
                if (corrupt) {
                    ++rt.packetsCorrupted;
                    globalTrace.record(
                        units::Micros{cursor},
                        TraceEventKind::PacketCorrupt,
                        Trace::kBackboneNode, lane,
                        std::string(spec.name), fragment.sequence,
                        static_cast<double>(fragment.wireBytes()));
                }
                if (receipt.accepted()) {
                    globalTrace.record(
                        units::Micros{cursor},
                        TraceEventKind::PacketRx,
                        Trace::kBackboneNode, lane,
                        std::string(spec.name), fragment.sequence,
                        static_cast<double>(fragment.wireBytes()));
                    delivered = true;
                    break;
                }
                if (!config.retry.shouldRetry(attempt))
                    break;
                ++rt.retransmissions;
                globalTrace.record(
                    units::Micros{cursor},
                    TraceEventKind::PacketRetransmit,
                    static_cast<std::uint32_t>(entry.relay), 0,
                    std::string(spec.name), fragment.sequence,
                    static_cast<double>(fragment.wireBytes()));
            }
            if (!delivered)
                ++rt.packetsLost;
        }
        cursor += kGuard.count();
    }

    const std::uint64_t end = toTicks(units::Micros{cursor});
    backboneMedium.release(end);
    globalTrace.record(units::Micros{static_cast<double>(end)},
                       TraceEventKind::BackboneFinish,
                       Trace::kBackboneNode, lane, spec.name,
                       window_id);

    // The backbone completes the exchange: the round spans the first
    // intra-cluster slot to the backbone's end.
    const std::uint64_t roundUs = end - round.minStartTick;
    rt.roundSumUs += roundUs;
    rt.maxRoundUs = std::max(rt.maxRoundUs, roundUs);
    ++rt.roundCount;

    const std::uint64_t arrival = window_id * rt.windowTicks;
    const std::uint64_t response = end - arrival;
    if (rt.completed == 0)
        rt.firstResponseUs = response;
    rt.lastResponseUs = response;
    rt.maxResponseUs = std::max(rt.maxResponseUs, response);
    rt.responseSumUs += response;
    ++rt.completed;

    // Exact-compare on the hierarchy: each relay compares its
    // cluster's history against the remote aggregates it received.
    if (rt.exactCompare) {
        for (const RelayPacket &entry : round.entries) {
            double remote = 0.0;
            for (const std::unique_ptr<Cluster> &cl : clusters) {
                if (cl->id == entry.cluster)
                    continue;
                remote += cl->flows[flow].liveTotalElectrodes;
            }
            dynamicEnergyUj[entry.relay] +=
                spec.linPerElectrode.count() * remote *
                spec.window.count();
        }
    }
}

void
SystemSim::performRestitch(std::uint64_t upto_ticks)
{
    bool needed = backboneRestitchPending;
    std::uint64_t at = std::max(restitchTickHint, upto_ticks);
    for (const std::unique_ptr<Cluster> &cl : clusters) {
        if (!cl->restitchNeeded)
            continue;
        needed = true;
        at = std::max(at, cl->restitchTick);
    }
    if (!needed)
        return;
    backboneRestitchPending = false;
    restitchTickHint = 0;
    for (const std::unique_ptr<Cluster> &cl : clusters)
        cl->restitchNeeded = false;

    // Ground truth for the re-stitch is what the detectors report:
    // per-cluster heartbeat deaths plus backbone-declared partitions.
    std::vector<std::size_t> dead;
    for (const std::unique_ptr<Cluster> &cl : clusters) {
        const std::vector<std::size_t> cluster_dead =
            cl->detector.deadNodes();
        dead.insert(dead.end(), cluster_dead.begin(),
                    cluster_dead.end());
    }
    const std::vector<std::size_t> unreachable =
        backboneDetector.deadNodes();

    const sched::Scheduler scheduler(config.system);
    sched::RescheduleResult repaired = scheduler.restitchBackbone(
        config.flows, config.priorities, config.schedule, dead,
        unreachable);
    SCALO_ASSERT(repaired.schedule.feasible,
                 "re-stitch must always produce an allocation");
    liveSchedule = repaired.schedule;
    // Safe at the barrier: every cluster worker has joined, so the
    // coordinator may touch all cluster-confined allocation state.
    for (const std::unique_ptr<Cluster> &cl : clusters)
        refreshClusterAllocation(*cl);

    globalTrace.record(
        units::Micros{static_cast<double>(at)},
        TraceEventKind::BackboneRestitch, Trace::kBackboneNode, 0,
        "backbone-restitch", restitchEvents.size(),
        (repaired.throughputAfter - repaired.throughputBefore)
            .count());
    RestitchEvent event;
    event.at = units::Millis(
        units::Micros{static_cast<double>(at)});
    event.deadNodes = repaired.deadNodes;
    event.unreachableClusters = unreachable;
    event.viaIlp = repaired.viaIlp;
    event.throughputBefore = repaired.throughputBefore;
    event.throughputAfter = repaired.throughputAfter;
    restitchEvents.push_back(std::move(event));
}

void
SystemSim::mergeClusterStats(SystemSimResult &result)
{
    for (std::size_t f = 0; f < flowRuntimes.size(); ++f) {
        FlowRuntime &rt = flowRuntimes[f];
        bool have_first = rt.completed > 0;
        std::uint64_t best_first = 0;
        std::uint64_t best_last = 0;
        for (const std::unique_ptr<Cluster> &cl : clusters) {
            const ClusterFlow &cf = cl->flows[f];
            rt.packetsSent += cf.packetsSent;
            rt.packetsCorrupted += cf.packetsCorrupted;
            rt.retransmissions += cf.retransmissions;
            rt.packetsLost += cf.packetsLost;
            if (cf.completed == 0)
                continue;
            rt.completed += cf.completed;
            rt.responseSumUs += cf.responseSumUs;
            rt.maxResponseUs =
                std::max(rt.maxResponseUs, cf.maxResponseUs);
            rt.roundSumUs += cf.roundSumUs;
            rt.maxRoundUs = std::max(rt.maxRoundUs, cf.maxRoundUs);
            rt.roundCount += cf.roundCount;
            if (!have_first || cf.firstTick < best_first) {
                rt.firstResponseUs = cf.firstResponseUs;
                best_first = cf.firstTick;
                have_first = true;
            }
            if (cf.lastTick >= best_last) {
                rt.lastResponseUs = cf.lastResponseUs;
                best_last = cf.lastTick;
            }
        }
    }

    if (clusters.size() == 1) {
        result.nodesDown = clusters.front()->downEvents;
        result.reschedules = clusters.front()->reschedEvents;
    } else {
        for (const std::unique_ptr<Cluster> &cl : clusters) {
            result.nodesDown.insert(result.nodesDown.end(),
                                    cl->downEvents.begin(),
                                    cl->downEvents.end());
            result.reschedules.insert(result.reschedules.end(),
                                      cl->reschedEvents.begin(),
                                      cl->reschedEvents.end());
        }
        std::stable_sort(result.nodesDown.begin(),
                         result.nodesDown.end(),
                         [](const NodeDownEvent &a,
                            const NodeDownEvent &b) {
                             return a.detectedAt.count() <
                                    b.detectedAt.count();
                         });
        std::stable_sort(
            result.reschedules.begin(), result.reschedules.end(),
            [](const RescheduleEvent &a, const RescheduleEvent &b) {
                return a.at.count() < b.at.count();
            });
    }
    result.exchangeTimeouts = backboneTimeouts;
    for (const std::unique_ptr<Cluster> &cl : clusters)
        result.exchangeTimeouts += cl->exchangeTimeouts;
}

SystemSimResult
SystemSim::run()
{
    SCALO_ASSERT(!ran, "SystemSim::run is one-shot");
    ran = true;

    const std::size_t node_count = nodes.size();
    dynamicEnergyUj.assign(node_count, 0.0);
    nvmBytes.assign(node_count, 0);
    nvmPages.assign(node_count, 0);
    storage.clear();
    for (std::size_t n = 0; n < node_count; ++n)
        storage.emplace_back(/*reorganise_layout=*/true);

    // Fault events go on the queues before the window streams so that
    // a fault and an arrival on the same microsecond tick resolve
    // fault-first (deterministic FIFO tie-break).
    scheduleFaultEvents();

    for (std::size_t f = 0; f < flowRuntimes.size(); ++f) {
        FlowRuntime &rt = flowRuntimes[f];
        for (std::size_t n : rt.participants)
            nodes[n].streamWindows(rt.flowOnNode[n],
                                   rt.windowsPerNode);
        if (rt.networked)
            rt.submitted = rt.senders.empty() ? 0 : rt.windowsPerNode;
        else
            rt.submitted = rt.windowsPerNode * rt.participants.size();
    }

    SystemSimResult result;
    result.duration = config.duration;
    result.clusters = clusters.size();

    if (clusters.size() == 1) {
        // Flat fabric: one queue, run to quiescence — the original
        // serial engine, byte for byte.
        result.eventsExecuted = clusters.front()->sim.run();
    } else {
        // Conservative quantum loop: clusters advance independently
        // to the barrier (clusters only couple through the backbone,
        // which the coordinator runs between quanta), so any quantum
        // is safe and serial/parallel execution is byte-identical.
        std::uint64_t quantum = 0;
        if (config.syncQuantum.count() > 0.0) {
            quantum = toTicks(units::Micros(config.syncQuantum));
        } else {
            for (const FlowRuntime &rt : flowRuntimes)
                if (rt.windowTicks > 0 &&
                    (quantum == 0 || rt.windowTicks < quantum))
                    quantum = rt.windowTicks;
            if (quantum == 0)
                quantum = 1000;
        }
        quantum = std::max<std::uint64_t>(quantum, 1);

        util::ThreadPool pool(
            config.parallel
                ? (config.threads ? config.threads
                                  : util::ThreadPool::defaultThreads())
                : 1);
        result.ranParallel = pool.size() > 1;

        const auto work_pending = [this] {
            if (!pendingRounds.empty())
                return true;
            for (const std::unique_ptr<Cluster> &cl : clusters)
                if (cl->sim.pending() > 0 || !cl->outbox.empty())
                    return true;
            return false;
        };
        std::uint64_t horizon = 0;
        while (work_pending()) {
            horizon += quantum;
            const units::Micros until{
                static_cast<double>(horizon)};
            pool.parallelFor(
                clusters.size(), [this, until](std::size_t c) {
                    clusters[c]->eventsExecuted +=
                        clusters[c]->sim.run(until);
                });
            processBackbone(horizon);
        }
        for (const std::unique_ptr<Cluster> &cl : clusters)
            result.eventsExecuted += cl->eventsExecuted;
    }

    // Merge the per-cluster traces in cluster order, then the
    // coordinator's backbone trace: a fixed order, so the combined
    // (stably time-sorted on export) trace is byte-identical between
    // the serial and parallel engines.
    for (std::unique_ptr<Cluster> &cl : clusters)
        eventTrace.append(std::move(cl->trace));
    eventTrace.append(std::move(globalTrace));

    // Leakage, replicating the scheduler's accounting: every flow
    // pays its own leakage, but the one physical intra-SCALO radio is
    // charged once (FlowSpec folds the default radio into networked
    // flows' leak, so it is first subtracted back out).
    units::Milliwatts radio_leak{0.0};
    std::size_t networked_flows = 0;
    for (const sched::FlowSpec &spec : config.flows)
        if (spec.network)
            ++networked_flows;
    if (config.system.wirelessNetwork && networked_flows > 0)
        radio_leak = config.system.radio->power;
    units::Milliwatts leak_total{0.0};
    for (const sched::FlowSpec &spec : config.flows) {
        units::Milliwatts leak = spec.leak;
        if (spec.network)
            leak -= net::defaultRadio().power;
        leak_total += leak;
    }
    leak_total += radio_leak;

    const double nvm_write_bps =
        hw::nvmSpec().writeBandwidth().count() * 1e6;
    for (std::size_t n = 0; n < node_count; ++n) {
        NodeSimStats stats;
        stats.node = static_cast<std::uint32_t>(n);
        stats.measuredPower =
            leak_total + units::Milliwatts{dynamicEnergyUj[n] /
                                           config.duration.count()};
        if (n < config.schedule.nodePower.size())
            stats.analyticPower = config.schedule.nodePower[n];
        stats.nvmBytesWritten = nvmBytes[n];
        stats.nvmPagesProgrammed = nvmPages[n];
        stats.nvmUtilization =
            static_cast<double>(nvmBytes[n]) /
            config.duration.in<units::Seconds>() / nvm_write_bps;
        stats.counters =
            eventTrace.counters(static_cast<std::uint32_t>(n));
        result.nodes.push_back(stats);
    }
    for (std::size_t c = 0; c < clusters.size(); ++c)
        result.network += eventTrace.counters(Trace::mediumNode(c));
    if (clusters.size() > 1)
        result.network +=
            eventTrace.counters(Trace::kBackboneNode);

    mergeClusterStats(result);

    for (std::size_t f = 0; f < flowRuntimes.size(); ++f) {
        const FlowRuntime &rt = flowRuntimes[f];
        FlowSimStats stats;
        stats.flow = config.flows[f].name;
        stats.windowsSubmitted = rt.submitted;
        stats.windowsCompleted = rt.completed;
        // Node-level drops (halted/crashed nodes, backlog sheds)
        // accumulate on the NodeModels.
        std::size_t dropped = 0;
        for (const std::size_t n : rt.participants)
            dropped += nodes[n].progress(rt.flowOnNode[n]).dropped;
        stats.windowsDropped = dropped;
        if (rt.completed > 0) {
            stats.meanResponse = units::Micros{
                static_cast<double>(rt.responseSumUs) /
                static_cast<double>(rt.completed)};
            stats.maxResponse = units::Micros{
                static_cast<double>(rt.maxResponseUs)};
        }
        if (rt.roundCount > 0) {
            stats.meanRound =
                units::Micros{static_cast<double>(rt.roundSumUs) /
                              static_cast<double>(rt.roundCount)};
            stats.maxRound = units::Micros{
                static_cast<double>(rt.maxRoundUs)};
        }
        stats.analyticResponse =
            units::Micros{rt.analyticResponseUs};
        stats.analyticRound = units::Micros{rt.analyticRoundUs};
        stats.packetsSent = rt.packetsSent;
        stats.packetsCorrupted = rt.packetsCorrupted;
        stats.retransmissions = rt.retransmissions;
        stats.packetsLost = rt.packetsLost;
        stats.relayForwards = rt.relayForwards;
        result.packetsLost += rt.packetsLost;
        stats.analyticallySustainable = rt.analyticSustainable;
        // Event-driven verdict: everything completed and the response
        // of the last window did not drift from the first (a stage or
        // the medium falling behind the cadence grows the backlog
        // monotonically).
        stats.sustainable =
            dropped == 0 && rt.completed == rt.submitted &&
            (rt.completed == 0 ||
             rt.lastResponseUs <=
                 rt.firstResponseUs + rt.windowTicks / 2);
        result.flows.push_back(std::move(stats));
    }

    result.nvmWriteFailures = injector.nvmFailuresDrawn();
    result.partitions = partitionEvents;
    result.restitches = restitchEvents;
    result.relayForwardsDropped = relayForwardsDropped;

    if (!config.recordTrace)
        eventTrace.clear();
    return result;
}

} // namespace scalo::sim
