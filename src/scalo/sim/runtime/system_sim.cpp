#include "scalo/sim/runtime/system_sim.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <optional>

#include "scalo/hw/nvm.hpp"
#include "scalo/net/channel.hpp"
#include "scalo/net/tdma.hpp"
#include "scalo/util/contracts.hpp"
#include "scalo/util/logging.hpp"

namespace scalo::sim {

using namespace units::literals;

namespace {

constexpr double kParticipantEpsilon = 1e-6;
constexpr units::Micros kGuard{20.0};
/** Domain separator for the backoff-jitter RNG stream. */
constexpr std::uint64_t kBackoffSeedSalt = 0xbacc'0ff5'eed0'0001ULL;

/** Indices of transmitting nodes, matching the scheduler's model. */
std::vector<std::size_t>
senderNodes(net::Pattern pattern, std::size_t nodes)
{
    std::vector<std::size_t> out;
    switch (pattern) {
      case net::Pattern::OneToAll:
        out.push_back(0);
        break;
      case net::Pattern::AllToAll:
        for (std::size_t n = 0; n < nodes; ++n)
            out.push_back(n);
        break;
      case net::Pattern::AllToOne:
        for (std::size_t n = 1; n < nodes; ++n)
            out.push_back(n);
        break;
    }
    return out;
}

std::uint64_t
toTicks(units::Micros t)
{
    SCALO_EXPECTS(t.count() >= 0.0);
    return static_cast<std::uint64_t>(std::llround(t.count()));
}

} // namespace

/** Per-flow execution state threaded through the run. */
struct SystemSim::FlowRuntime
{
    /** Nodes allocated electrodes (the flow's pipelines). */
    std::vector<std::size_t> participants;
    /** NodeModel flow index per system node (npos if absent). */
    std::vector<std::size_t> flowOnNode;
    /** Transmitting nodes; empty for local flows. */
    std::vector<std::size_t> senders;
    /** Payload bytes per sender per round (by system node). */
    std::vector<std::size_t> payloadBytes;
    /** Uncommitted NVM bytes per node (sub-byte carry). */
    std::vector<double> nvmCarry;
    std::size_t windowsPerNode = 0;
    std::uint64_t windowTicks = 0;
    bool networked = false;
    bool exactCompare = false;
    net::PacketType packetType = net::PacketType::Hash;
    std::optional<net::WirelessChannel> channel;
    std::uint16_t nextSequence = 0;

    /** Assembly state of one exchange round. */
    struct RoundState
    {
        /** Senders done with their local pipeline, arrival order. */
        std::vector<std::size_t> ready;
        bool deadlineArmed = false;
        bool exchanged = false;
    };
    std::map<std::uint64_t, RoundState> rounds;

    // Measured accumulators.
    std::size_t submitted = 0;
    std::size_t completed = 0;
    std::size_t dropped = 0;
    std::uint64_t responseSumUs = 0;
    std::uint64_t maxResponseUs = 0;
    std::uint64_t firstResponseUs = 0;
    std::uint64_t lastResponseUs = 0;
    std::uint64_t roundSumUs = 0;
    std::uint64_t maxRoundUs = 0;
    std::size_t roundCount = 0;
    std::uint64_t packetsSent = 0;
    std::uint64_t packetsCorrupted = 0;
    std::uint64_t retransmissions = 0;
    std::uint64_t packetsLost = 0;

    // Static predictions.
    double analyticRoundUs = 0.0;
    double analyticResponseUs = 0.0;
    bool analyticSustainable = true;
};

SystemSim::SystemSim(SystemSimConfig cfg)
    : config(std::move(cfg)),
      injector(config.faults, config.seed),
      detector(config.system.nodes, config.heartbeatMissThreshold),
      backoffRng(config.seed ^ kBackoffSeedSalt),
      liveSchedule(config.schedule)
{
    SCALO_ASSERT(config.schedule.feasible,
                 "SystemSim needs a feasible schedule");
    SCALO_ASSERT(config.schedule.flows.size() == config.flows.size(),
                 "schedule/flow-set mismatch");
    SCALO_ASSERT(config.duration > 0.0_ms,
                 "simulation duration must be positive");
    config.faults.validate(config.system.nodes);
    config.retry.validate();
    if (config.priorities.empty())
        config.priorities.assign(config.flows.size(), 1.0);
    SCALO_ASSERT(config.priorities.size() == config.flows.size(),
                 "one priority per flow");

    const std::size_t node_count = config.system.nodes;
    nodeUp.assign(node_count, 1);
    crashedAtMs.assign(node_count, -1.0);
    nodes.reserve(node_count);
    for (std::size_t n = 0; n < node_count; ++n)
        nodes.emplace_back(simulator, static_cast<std::uint32_t>(n),
                           &eventTrace);

    const net::TdmaSchedule tdma(*config.system.radio, node_count);
    flowRuntimes.resize(config.flows.size());
    for (std::size_t f = 0; f < config.flows.size(); ++f) {
        const sched::FlowSpec &spec = config.flows[f];
        const sched::FlowAllocation &alloc = config.schedule.flows[f];
        FlowRuntime &rt = flowRuntimes[f];
        rt.flowOnNode.assign(node_count, ~std::size_t{0});
        rt.payloadBytes.assign(node_count, 0);
        rt.nvmCarry.assign(node_count, 0.0);
        rt.windowTicks = toTicks(units::Micros(spec.window));
        rt.windowsPerNode = static_cast<std::size_t>(
            std::floor(config.duration.count() /
                           spec.window.count() +
                       1e-9));
        rt.networked = spec.network.has_value() &&
                       config.system.wirelessNetwork;
        rt.exactCompare =
            rt.networked && spec.network->exactCompare;
        rt.packetType = rt.exactCompare ? net::PacketType::Signal
                                        : net::PacketType::Hash;

        std::vector<hw::PipelineStage> stages;
        for (hw::PeKind kind : spec.peChain)
            stages.push_back({kind, 0.0, 1});
        for (std::size_t n = 0; n < node_count; ++n) {
            const double e = alloc.electrodesPerNode[n];
            if (e <= kParticipantEpsilon)
                continue;
            for (hw::PipelineStage &stage : stages)
                stage.electrodes = e;
            const std::size_t idx = nodes[n].addPipeline(
                hw::Pipeline(spec.name, stages), spec.window);
            rt.flowOnNode[n] = idx;
            rt.participants.push_back(n);
            nodes[n].onWindowDone(
                idx, [this, f, n](std::size_t, std::uint64_t w) {
                    accountWindow(f, static_cast<std::uint32_t>(n),
                                  w);
                });
        }

        // Static predictions: pipeline latency plus, for networked
        // flows, the serialized TDMA round of the schedule's payload
        // sizes (the scheduler's own response model).
        const hw::Pipeline reference(spec.name, stages);
        rt.analyticResponseUs =
            units::Micros(reference.latency()).count();
        if (rt.networked) {
            rt.channel.emplace(*config.system.radio,
                               config.seed ^ (0x9e37'79b9 * (f + 1)));
            for (std::size_t n :
                 senderNodes(spec.network->pattern, node_count)) {
                if (alloc.electrodesPerNode[n] <=
                        kParticipantEpsilon &&
                    spec.network->bytesPerNode <= 0.0)
                    continue;
                rt.senders.push_back(n);
                const double bytes =
                    spec.network->bytesPerElectrode *
                        alloc.electrodesPerNode[n] +
                    spec.network->bytesPerNode;
                rt.payloadBytes[n] = std::max<std::size_t>(
                    1, static_cast<std::size_t>(std::llround(bytes)));
                rt.analyticRoundUs +=
                    units::Micros(tdma.slotTime(rt.payloadBytes[n]))
                        .count();
            }
            rt.analyticResponseUs += rt.analyticRoundUs;
        }
        for (std::size_t n : rt.participants)
            if (!nodes[n].analyticallySustainable(rt.flowOnNode[n]))
                rt.analyticSustainable = false;
    }
}

SystemSim::~SystemSim() = default;

void
SystemSim::accountWindow(std::size_t flow, std::uint32_t node,
                         std::uint64_t window_id)
{
    FlowRuntime &rt = flowRuntimes[flow];
    const sched::FlowSpec &spec = config.flows[flow];
    // The degraded allocation (identical to the original until a
    // reschedule happens) drives energy and NVM accounting.
    const double e = liveSchedule.flows[flow].electrodesPerNode[node];

    // Dynamic energy of the local per-window work. Exact-compare
    // flows charge the comparison to the receivers instead (the
    // scheduler's model), accrued when the exchange completes.
    if (!rt.exactCompare) {
        const double dynamic_mw = spec.linPerElectrode.count() * e +
                                  spec.quadPerElectrode2.count() * e *
                                      e;
        dynamicEnergyUj[node] += dynamic_mw * spec.window.count();
    }

    // NVM write traffic of this window.
    if (spec.nvmWriteBytesPerElecPerSec > 0.0) {
        rt.nvmCarry[node] += spec.nvmWriteBytesPerElecPerSec * e *
                             spec.window.in<units::Seconds>();
        const auto bytes =
            static_cast<std::size_t>(rt.nvmCarry[node]);
        if (bytes > 0) {
            rt.nvmCarry[node] -= static_cast<double>(bytes);
            if (injector.nvmWriteFails(node)) {
                // The append is lost; the page never programs.
                eventTrace.record(simulator.now(),
                                  TraceEventKind::FaultInjected,
                                  node, 0, "nvm-write-fail",
                                  window_id,
                                  static_cast<double>(bytes));
            } else {
                nvmBytes[node] += bytes;
                nvmPages[node] += storage[node].append(
                    hw::Partition::Signals, bytes);
                eventTrace.record(simulator.now(),
                                  TraceEventKind::NvmWrite, node, 0,
                                  spec.name, window_id,
                                  static_cast<double>(bytes));
            }
        }
    }

    const bool sender = rt.networked &&
                        std::find(rt.senders.begin(),
                                  rt.senders.end(),
                                  node) != rt.senders.end();
    if (sender) {
        FlowRuntime::RoundState &round = rt.rounds[window_id];
        if (round.exchanged)
            return; // too late: the round ran at its deadline
        round.ready.push_back(node);
        if (!round.deadlineArmed) {
            // Armed by the first ready sender: the round never waits
            // on an absent peer for longer than the deadline (a dead
            // sender would otherwise stall the flow forever).
            round.deadlineArmed = true;
            const units::Micros deadline =
                config.retry.exchangeDeadline.count() > 0.0
                    ? units::Micros(config.retry.exchangeDeadline)
                    : units::Micros{
                          static_cast<double>(rt.windowTicks)};
            simulator.after(deadline, [this, flow, window_id] {
                onExchangeDeadline(flow, window_id);
            });
        }
        // The round starts once every expected (not declared-dead)
        // sender has its payload ready.
        const bool complete = std::all_of(
            rt.senders.begin(), rt.senders.end(),
            [&](std::size_t s) {
                return detector.dead(s) ||
                       std::find(round.ready.begin(),
                                 round.ready.end(),
                                 s) != round.ready.end();
            });
        if (complete)
            runExchange(flow, window_id);
        return;
    }
    if (rt.networked)
        return; // non-sender local work is power only

    // Local flow: the node-level completion is the response.
    const std::uint64_t arrival = window_id * rt.windowTicks;
    const std::uint64_t response = simulator.ticks() - arrival;
    if (rt.completed == 0)
        rt.firstResponseUs = response;
    rt.lastResponseUs = response;
    rt.maxResponseUs = std::max(rt.maxResponseUs, response);
    rt.responseSumUs += response;
    ++rt.completed;
}

void
SystemSim::onExchangeDeadline(std::size_t flow,
                              std::uint64_t window_id)
{
    FlowRuntime &rt = flowRuntimes[flow];
    FlowRuntime::RoundState &round = rt.rounds[window_id];
    if (round.exchanged)
        return; // assembled in time; nothing to do
    ++exchangeTimeouts;
    eventTrace.record(simulator.now(),
                      TraceEventKind::ExchangeTimedOut,
                      Trace::kNetworkNode,
                      static_cast<std::uint32_t>(flow + 1),
                      config.flows[flow].name, window_id,
                      static_cast<double>(round.ready.size()));
    runExchange(flow, window_id);
}

void
SystemSim::runExchange(std::size_t flow, std::uint64_t window_id)
{
    FlowRuntime &rt = flowRuntimes[flow];
    const sched::FlowSpec &spec = config.flows[flow];
    const net::RadioSpec &radio = *config.system.radio;
    const auto lane = static_cast<std::uint32_t>(flow + 1);

    FlowRuntime::RoundState &round = rt.rounds[window_id];
    SCALO_ASSERT(!round.exchanged, "exchange round ran twice");
    round.exchanged = true;

    // Heartbeat bookkeeping happens at round start: every slot is a
    // free heartbeat (Section 3.4), so transmitting senders reset
    // their miss counters (and un-declare a rebooted node), while
    // expected-but-silent senders accrue a miss each.
    std::vector<std::size_t> transmitting;
    for (const std::size_t n : rt.senders) {
        const bool ready = std::find(round.ready.begin(),
                                     round.ready.end(),
                                     n) != round.ready.end();
        if (ready) {
            transmitting.push_back(n);
            if (detector.recordHeard(n))
                declareRecovered(n);
        } else if (!detector.dead(n)) {
            if (detector.recordMiss(n))
                declareDead(n);
        }
    }

    const std::uint64_t start =
        std::max(simulator.ticks(), networkFreeUs);
    eventTrace.record(units::Micros{static_cast<double>(start)},
                      TraceEventKind::ExchangeStart,
                      Trace::kNetworkNode, lane, spec.name,
                      window_id);

    double cursor = static_cast<double>(start);
    for (std::size_t n : transmitting) {
        net::Packet packet;
        packet.source = static_cast<std::uint8_t>(n);
        packet.destination =
            spec.network->pattern == net::Pattern::AllToOne
                ? std::uint8_t{0}
                : net::kBroadcast;
        packet.type = rt.packetType;
        packet.timestampUs =
            static_cast<std::uint32_t>(simulator.ticks());
        packet.payload.resize(rt.payloadBytes[n]);
        for (std::size_t i = 0; i < packet.payload.size(); ++i)
            packet.payload[i] =
                static_cast<std::uint8_t>((i * 31 + n) & 0xff);
        for (net::Packet &fragment : net::fragment(packet)) {
            fragment.sequence = rt.nextSequence++;
            const units::Micros wire_time{
                radio
                    .transferTime(units::Bytes{static_cast<double>(
                        fragment.wireBytes())})
                    .in<units::Micros>()};
            bool delivered = false;
            for (std::size_t attempt = 0;
                 attempt < config.retry.maxAttempts; ++attempt) {
                if (attempt > 0) {
                    // Exponential backoff with seeded jitter before
                    // each retry; the retry's radio energy is real
                    // and lands on the sender (the scheduler only
                    // provisioned the always-on radio budget).
                    cursor += config.retry
                                  .backoff(attempt, backoffRng)
                                  .count();
                    dynamicEnergyUj[n] +=
                        radio
                            .transferEnergy(units::Bytes{
                                static_cast<double>(
                                    fragment.wireBytes())})
                            .count() *
                        1e3;
                }
                // Channel condition at this instant: dropout windows
                // lose everything, BER spikes raise the error rate.
                const units::Micros at{cursor};
                const double spike = injector.berOverrideAt(at);
                rt.channel->setBer(spike >= 0.0 ? spike : radio.ber);
                rt.channel->setOutage(injector.inDropout(at));
                ++rt.packetsSent;
                eventTrace.record(
                    units::Micros{cursor}, TraceEventKind::PacketTx,
                    static_cast<std::uint32_t>(n), 0,
                    std::string(spec.name), fragment.sequence,
                    static_cast<double>(fragment.wireBytes()));
                const net::ReceiveResult receipt =
                    rt.channel->transmit(fragment);
                cursor += wire_time.count();
                const bool corrupt =
                    !receipt.headerOk || !receipt.payloadOk;
                if (corrupt) {
                    ++rt.packetsCorrupted;
                    eventTrace.record(
                        units::Micros{cursor},
                        TraceEventKind::PacketCorrupt,
                        Trace::kNetworkNode, lane,
                        std::string(spec.name), fragment.sequence,
                        static_cast<double>(fragment.wireBytes()));
                }
                if (receipt.accepted()) {
                    eventTrace.record(
                        units::Micros{cursor},
                        TraceEventKind::PacketRx,
                        Trace::kNetworkNode, lane,
                        std::string(spec.name), fragment.sequence,
                        static_cast<double>(fragment.wireBytes()));
                    delivered = true;
                    break;
                }
                if (!config.retry.shouldRetry(attempt))
                    break;
                ++rt.retransmissions;
                eventTrace.record(units::Micros{cursor},
                                  TraceEventKind::PacketRetransmit,
                                  static_cast<std::uint32_t>(n), 0,
                                  std::string(spec.name),
                                  fragment.sequence,
                                  static_cast<double>(
                                      fragment.wireBytes()));
            }
            if (!delivered)
                ++rt.packetsLost;
        }
        cursor += kGuard.count();
    }

    const std::uint64_t end = toTicks(units::Micros{cursor});
    networkFreeUs = end;
    eventTrace.record(units::Micros{static_cast<double>(end)},
                      TraceEventKind::ExchangeFinish,
                      Trace::kNetworkNode, lane, spec.name,
                      window_id);

    if (transmitting.empty())
        return; // nobody had data: no response to account

    const std::uint64_t roundUs = end - start;
    rt.roundSumUs += roundUs;
    rt.maxRoundUs = std::max(rt.maxRoundUs, roundUs);
    ++rt.roundCount;

    const std::uint64_t arrival = window_id * rt.windowTicks;
    const std::uint64_t response = end - arrival;
    if (rt.completed == 0)
        rt.firstResponseUs = response;
    rt.lastResponseUs = response;
    rt.maxResponseUs = std::max(rt.maxResponseUs, response);
    rt.responseSumUs += response;
    ++rt.completed;

    // Exact-compare flows: each node checks every window it received
    // against its local history; the scheduler charges that power to
    // the receivers, one window's worth per exchange. Physically-down
    // nodes receive (and burn) nothing.
    if (rt.exactCompare) {
        const double total =
            liveSchedule.flows[flow].totalElectrodes;
        for (std::size_t n = 0; n < nodes.size(); ++n) {
            if (!nodeUp[n])
                continue;
            const double e =
                liveSchedule.flows[flow].electrodesPerNode[n];
            dynamicEnergyUj[n] += spec.linPerElectrode.count() *
                                  (total - e) * spec.window.count();
        }
    }
}

void
SystemSim::declareDead(std::size_t node)
{
    eventTrace.record(simulator.now(), TraceEventKind::NodeDown,
                      static_cast<std::uint32_t>(node), 0,
                      "node-down", downEvents.size(),
                      static_cast<double>(
                          detector.consecutiveMisses(node)));
    NodeDownEvent event;
    event.node = static_cast<std::uint32_t>(node);
    event.crashedAt = units::Millis{crashedAtMs[node]};
    event.detectedAt = units::Millis(simulator.now());
    downEvents.push_back(event);
    applyReschedule();
}

void
SystemSim::declareRecovered(std::size_t node)
{
    eventTrace.record(simulator.now(),
                      TraceEventKind::NodeRecovered,
                      static_cast<std::uint32_t>(node), 0,
                      "node-recovered", downEvents.size());
    applyReschedule();
}

void
SystemSim::applyReschedule()
{
    const std::vector<std::size_t> dead = detector.deadNodes();
    const sched::Scheduler scheduler(config.system);
    const sched::RescheduleResult repaired = scheduler.reschedule(
        config.flows, config.priorities, config.schedule, dead);
    SCALO_ASSERT(repaired.schedule.feasible,
                 "reschedule must always produce an allocation");
    liveSchedule = repaired.schedule;

    // Surviving senders adapt their payloads to the new allocation
    // from the next round on.
    for (std::size_t f = 0; f < flowRuntimes.size(); ++f) {
        FlowRuntime &rt = flowRuntimes[f];
        if (!rt.networked)
            continue;
        const sched::FlowSpec &spec = config.flows[f];
        for (const std::size_t n : rt.senders) {
            const double bytes =
                spec.network->bytesPerElectrode *
                    liveSchedule.flows[f].electrodesPerNode[n] +
                spec.network->bytesPerNode;
            rt.payloadBytes[n] = std::max<std::size_t>(
                1, static_cast<std::size_t>(std::llround(bytes)));
        }
    }

    eventTrace.record(simulator.now(), TraceEventKind::Resched,
                      Trace::kNetworkNode, 0, "resched",
                      reschedEvents.size(),
                      static_cast<double>(dead.size()));
    RescheduleEvent event;
    event.at = units::Millis(simulator.now());
    event.deadNodes = repaired.deadNodes;
    event.viaIlp = repaired.viaIlp;
    event.throughputBefore = repaired.throughputBefore;
    event.throughputAfter = repaired.throughputAfter;
    event.maxNodePowerBefore = repaired.maxNodePowerBefore;
    event.maxNodePowerAfter = repaired.maxNodePowerAfter;
    reschedEvents.push_back(std::move(event));
}

void
SystemSim::scheduleFaultEvents()
{
    for (const NodeCrashFault &crash : config.faults.crashes) {
        simulator.at(units::Micros(crash.at), [this, crash] {
            if (!nodeUp[crash.node])
                return; // already down
            nodeUp[crash.node] = 0;
            crashedAtMs[crash.node] = crash.at.count();
            nodes[crash.node].halt();
            eventTrace.record(simulator.now(),
                              TraceEventKind::FaultInjected,
                              crash.node, 0, "crash", 0);
        });
        if (crash.reboots())
            simulator.at(
                units::Micros(crash.rebootAt), [this, crash] {
                    if (nodeUp[crash.node])
                        return;
                    nodeUp[crash.node] = 1;
                    nodes[crash.node].resume();
                    // The node rejoins silently; its next completed
                    // window puts it back into a round, where being
                    // heard declares the recovery.
                    eventTrace.record(simulator.now(),
                                      TraceEventKind::FaultInjected,
                                      crash.node, 0, "reboot", 0);
                });
    }
    for (std::size_t i = 0; i < config.faults.dropouts.size(); ++i) {
        const RadioDropoutFault &drop = config.faults.dropouts[i];
        simulator.at(units::Micros(drop.from), [this, i, drop] {
            eventTrace.record(simulator.now(),
                              TraceEventKind::FaultInjected,
                              Trace::kNetworkNode, 0,
                              "radio-dropout", i,
                              (drop.to - drop.from).count());
        });
    }
    for (std::size_t i = 0; i < config.faults.berSpikes.size();
         ++i) {
        const BerSpikeFault &spike = config.faults.berSpikes[i];
        simulator.at(units::Micros(spike.from), [this, i, spike] {
            eventTrace.record(simulator.now(),
                              TraceEventKind::FaultInjected,
                              Trace::kNetworkNode, 0, "ber-spike", i,
                              spike.ber);
        });
    }
    for (const ThermalThrottleFault &throttle :
         config.faults.throttles) {
        simulator.at(units::Micros(throttle.from), [this, throttle] {
            nodes[throttle.node].setThrottle(injector.throttleAt(
                throttle.node, simulator.now()));
            eventTrace.record(simulator.now(),
                              TraceEventKind::FaultInjected,
                              throttle.node, 0, "thermal-throttle",
                              0, throttle.slowdown);
        });
        simulator.at(units::Micros(throttle.to), [this, throttle] {
            // Re-evaluate, not reset: overlapping intervals multiply
            // and the injector knows which ones still cover `now`.
            nodes[throttle.node].setThrottle(injector.throttleAt(
                throttle.node, simulator.now()));
            eventTrace.record(simulator.now(),
                              TraceEventKind::FaultInjected,
                              throttle.node, 0, "thermal-restore",
                              0);
        });
    }
}

SystemSimResult
SystemSim::run()
{
    SCALO_ASSERT(!ran, "SystemSim::run is one-shot");
    ran = true;

    const std::size_t node_count = nodes.size();
    dynamicEnergyUj.assign(node_count, 0.0);
    nvmBytes.assign(node_count, 0);
    nvmPages.assign(node_count, 0);
    storage.clear();
    for (std::size_t n = 0; n < node_count; ++n)
        storage.emplace_back(/*reorganise_layout=*/true);

    // Fault events go on the queue before the window streams so that
    // a fault and an arrival on the same microsecond tick resolve
    // fault-first (deterministic FIFO tie-break).
    scheduleFaultEvents();

    for (std::size_t f = 0; f < flowRuntimes.size(); ++f) {
        FlowRuntime &rt = flowRuntimes[f];
        for (std::size_t n : rt.participants)
            nodes[n].streamWindows(rt.flowOnNode[n],
                                   rt.windowsPerNode);
        if (rt.networked)
            rt.submitted = rt.senders.empty() ? 0 : rt.windowsPerNode;
        else
            rt.submitted = rt.windowsPerNode * rt.participants.size();
    }

    SystemSimResult result;
    result.eventsExecuted = simulator.run();
    result.duration = config.duration;

    // Leakage, replicating the scheduler's accounting: every flow
    // pays its own leakage, but the one physical intra-SCALO radio is
    // charged once (FlowSpec folds the default radio into networked
    // flows' leak, so it is first subtracted back out).
    units::Milliwatts radio_leak{0.0};
    std::size_t networked_flows = 0;
    for (const sched::FlowSpec &spec : config.flows)
        if (spec.network)
            ++networked_flows;
    if (config.system.wirelessNetwork && networked_flows > 0)
        radio_leak = config.system.radio->power;
    units::Milliwatts leak_total{0.0};
    for (const sched::FlowSpec &spec : config.flows) {
        units::Milliwatts leak = spec.leak;
        if (spec.network)
            leak -= net::defaultRadio().power;
        leak_total += leak;
    }
    leak_total += radio_leak;

    const double nvm_write_bps =
        hw::nvmSpec().writeBandwidth().count() * 1e6;
    for (std::size_t n = 0; n < node_count; ++n) {
        NodeSimStats stats;
        stats.node = static_cast<std::uint32_t>(n);
        stats.measuredPower =
            leak_total + units::Milliwatts{dynamicEnergyUj[n] /
                                           config.duration.count()};
        if (n < config.schedule.nodePower.size())
            stats.analyticPower = config.schedule.nodePower[n];
        stats.nvmBytesWritten = nvmBytes[n];
        stats.nvmPagesProgrammed = nvmPages[n];
        stats.nvmUtilization =
            static_cast<double>(nvmBytes[n]) /
            config.duration.in<units::Seconds>() / nvm_write_bps;
        stats.counters =
            eventTrace.counters(static_cast<std::uint32_t>(n));
        result.nodes.push_back(stats);
    }
    result.network = eventTrace.counters(Trace::kNetworkNode);

    for (std::size_t f = 0; f < flowRuntimes.size(); ++f) {
        const FlowRuntime &rt = flowRuntimes[f];
        FlowSimStats stats;
        stats.flow = config.flows[f].name;
        stats.windowsSubmitted = rt.submitted;
        stats.windowsCompleted = rt.completed;
        // Node-level drops (halted/crashed nodes, backlog sheds)
        // accumulate on the NodeModels.
        std::size_t dropped = rt.dropped;
        for (const std::size_t n : rt.participants)
            dropped += nodes[n].progress(rt.flowOnNode[n]).dropped;
        stats.windowsDropped = dropped;
        if (rt.completed > 0) {
            stats.meanResponse = units::Micros{
                static_cast<double>(rt.responseSumUs) /
                static_cast<double>(rt.completed)};
            stats.maxResponse = units::Micros{
                static_cast<double>(rt.maxResponseUs)};
        }
        if (rt.roundCount > 0) {
            stats.meanRound =
                units::Micros{static_cast<double>(rt.roundSumUs) /
                              static_cast<double>(rt.roundCount)};
            stats.maxRound = units::Micros{
                static_cast<double>(rt.maxRoundUs)};
        }
        stats.analyticResponse =
            units::Micros{rt.analyticResponseUs};
        stats.analyticRound = units::Micros{rt.analyticRoundUs};
        stats.packetsSent = rt.packetsSent;
        stats.packetsCorrupted = rt.packetsCorrupted;
        stats.retransmissions = rt.retransmissions;
        stats.packetsLost = rt.packetsLost;
        result.packetsLost += rt.packetsLost;
        stats.analyticallySustainable = rt.analyticSustainable;
        // Event-driven verdict: everything completed and the response
        // of the last window did not drift from the first (a stage or
        // the medium falling behind the cadence grows the backlog
        // monotonically).
        stats.sustainable =
            dropped == 0 && rt.completed == rt.submitted &&
            (rt.completed == 0 ||
             rt.lastResponseUs <=
                 rt.firstResponseUs + rt.windowTicks / 2);
        result.flows.push_back(std::move(stats));
    }

    result.nodesDown = downEvents;
    result.reschedules = reschedEvents;
    result.exchangeTimeouts = exchangeTimeouts;
    result.nvmWriteFailures = injector.nvmFailuresDrawn();

    if (!config.recordTrace)
        eventTrace.clear();
    return result;
}

} // namespace scalo::sim
