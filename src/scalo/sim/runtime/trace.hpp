/**
 * @file
 * Structured event tracing for the node-level simulation runtime: a
 * `Trace` records typed, timestamped events (pipeline stage activity,
 * packet transmissions and corruptions, NVM writes, window drops) as
 * the discrete-event runtime executes, keeps per-node counters, and
 * exports Chrome trace-event JSON viewable in Perfetto or
 * chrome://tracing. Recording is optional everywhere: every runtime
 * entry point accepts a null trace and skips the bookkeeping.
 *
 * Timestamps sit on the same integer-microsecond grid as
 * `sim::Simulator`, so a trace of a fixed-seed run is byte-identical
 * across hosts and runs (asserted in tests/system_sim_test.cpp).
 */

#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "scalo/units/units.hpp"

namespace scalo::sim {

/** The trace event taxonomy of the simulation runtime. */
enum class TraceEventKind : std::uint8_t
{
    StageStart,       ///< a window enters a PE pipeline stage
    StageFinish,      ///< a window leaves a PE pipeline stage
    PacketTx,         ///< a packet is put on the air
    PacketRx,         ///< a packet is accepted by receivers
    PacketCorrupt,    ///< a packet arrived with bit errors
    PacketRetransmit, ///< a dropped packet is re-sent in a later slot
    NvmWrite,         ///< bytes persisted through the SC
    WindowDrop,       ///< a window abandoned (backlog or encoding miss)
    WindowDone,       ///< a window completed its flow end-to-end
    ExchangeStart,    ///< a TDMA exchange round begins
    ExchangeFinish,   ///< a TDMA exchange round completes
    FaultInjected,    ///< a FaultPlan entry fired (crash, dropout, ...)
    NodeDown,         ///< heartbeat detector declared a node dead
    NodeRecovered,    ///< a declared-dead node transmitted again
    ExchangeTimedOut, ///< a round ran without all expected senders
    Resched,          ///< the scheduler remapped work off dead nodes
    RelayForward,     ///< a relay queued its cluster's aggregate
    BackboneStart,    ///< an inter-cluster backbone round begins
    BackboneFinish,   ///< an inter-cluster backbone round completes
    RelayFailover,    ///< relay duty migrated to another member
    PartitionStart,   ///< a cluster went silent on the backbone
    PartitionHealed,  ///< a silent cluster reached the backbone again
    BackboneRestitch, ///< the backbone schedule was re-stitched
};

/** Number of event kinds (array-indexable). */
inline constexpr std::size_t kTraceEventKinds = 23;

/** Short stable name of an event kind ("stage-start", ...). */
std::string_view traceEventName(TraceEventKind kind);

/** One recorded event. */
struct TraceEvent
{
    /** Timestamp on the simulator's integer-microsecond grid. */
    std::uint64_t timeUs = 0;
    TraceEventKind kind = TraceEventKind::StageStart;
    /** Emitting node; Trace::kNetworkNode for the shared medium. */
    std::uint32_t node = 0;
    /** Lane within the node (stage/flow lane, export "tid"). */
    std::uint32_t lane = 0;
    /** Human label: PE stage, flow, or packet-type name. */
    std::string name;
    /** Correlation id (window or packet sequence number). */
    std::uint64_t id = 0;
    /** Kind-specific magnitude (bytes for NvmWrite/Packet*). */
    double value = 0.0;
};

/** Per-node (or total) event counts, indexed by kind. */
struct TraceCounters
{
    std::array<std::uint64_t, kTraceEventKinds> count{};

    std::uint64_t
    operator[](TraceEventKind kind) const
    {
        return count[static_cast<std::size_t>(kind)];
    }

    std::uint64_t total() const;

    /** One-line "stage-start=12 packet-tx=3 ..." (non-zero only). */
    std::string summary() const;

    TraceCounters &
    operator+=(const TraceCounters &other)
    {
        for (std::size_t k = 0; k < kTraceEventKinds; ++k)
            count[k] += other.count[k];
        return *this;
    }
};

/**
 * The recorder. Append-only; events may be recorded out of timestamp
 * order (an actor schedules a stage's start and finish the moment the
 * window is admitted), so exports stably sort by timestamp.
 */
class Trace
{
  public:
    /** Pseudo-node id of the shared wireless medium. */
    static constexpr std::uint32_t kNetworkNode = 0xffff'fffe;

    /** Pseudo-node id of the inter-cluster backbone medium. */
    static constexpr std::uint32_t kBackboneNode = 0xffff'fffd;

    /** Base pseudo-node id of non-zero cluster media. */
    static constexpr std::uint32_t kMediumBase = 0xffff'0000;

    /**
     * Pseudo-node id of cluster @p cluster's medium. Cluster 0 maps
     * to kNetworkNode, so a single-cluster (flat) fabric traces
     * exactly as before the hierarchy existed.
     */
    static constexpr std::uint32_t
    mediumNode(std::size_t cluster)
    {
        return cluster == 0
                   ? kNetworkNode
                   : kMediumBase + static_cast<std::uint32_t>(cluster);
    }

    /** Record one event at @p time (rounded to the µs grid). */
    void record(units::Micros time, TraceEventKind kind,
                std::uint32_t node, std::uint32_t lane,
                std::string name, std::uint64_t id = 0,
                double value = 0.0);

    /**
     * Steal @p other's events and fold in its counters. Merging the
     * per-cluster buffers in a fixed cluster order (after the export's
     * stable sort by timestamp) makes the combined trace byte-equal
     * between the serial and parallel engines.
     */
    void append(Trace &&other);

    /**
     * Tally counters but keep no event log. Large fabrics run with
     * recording off; counters still feed the result summary.
     */
    void setCountersOnly(bool counters_only)
    {
        countersOnly = counters_only;
    }

    const std::vector<TraceEvent> &events() const { return log; }
    std::size_t size() const { return log.size(); }
    bool empty() const { return log.empty(); }
    void clear();

    /** Event counts of one node. */
    TraceCounters counters(std::uint32_t node) const;

    /** Event counts across all nodes (including the medium). */
    TraceCounters totals() const;

    /**
     * Export in the Chrome trace-event JSON format (open in Perfetto
     * or chrome://tracing): stage and exchange events become "B"/"E"
     * duration pairs, everything else thread-scoped instants; nodes
     * map to processes and lanes to threads. Events are stably sorted
     * by timestamp, so the output is deterministic for a fixed seed.
     */
    std::string toChromeJson() const;

    /** Write toChromeJson() to @p path. @return success */
    bool writeChromeJson(const std::string &path) const;

  private:
    std::vector<TraceEvent> log;
    /** Incremental per-node tallies (kept even when countersOnly). */
    std::map<std::uint32_t, TraceCounters> tally;
    bool countersOnly = false;
};

} // namespace scalo::sim
