/**
 * @file
 * The node-level actor of the simulation runtime: a `NodeModel` owns
 * the GALS pipelines one implant runs (Figure 2b) and executes windows
 * through their PE stages as discrete events on a shared
 * `sim::Simulator`. Each stage is a server with its Table 1 service
 * time; because every PE sits in its own clock domain, stages overlap
 * across consecutive windows, and a stage that cannot keep up with the
 * window cadence grows a backlog — exactly the behaviour the ILP's
 * static sustainability analysis claims never happens for a feasible
 * schedule (Section 3.5), which `sim::SystemSim` cross-validates.
 *
 * Every stage entry/exit, completion, and drop is recorded into an
 * optional `sim::Trace`; per-flow accounting (latencies, busy time,
 * completions) accumulates on the model for the scenario layers
 * (`pipeline_sim`, `SystemSim`) to summarise.
 */

#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "scalo/hw/fabric.hpp"
#include "scalo/sim/event_queue.hpp"
#include "scalo/sim/runtime/trace.hpp"

namespace scalo::sim {

/** Accumulated per-flow execution state of one node. */
struct FlowProgress
{
    std::size_t submitted = 0;
    std::size_t completed = 0;
    std::size_t dropped = 0;
    /** End-to-end latency of the last completed window (µs). */
    std::uint64_t lastLatencyUs = 0;
    /** Worst completed-window latency (µs). */
    std::uint64_t maxLatencyUs = 0;
    /** Sum over completed windows (µs), for means. */
    std::uint64_t latencySumUs = 0;

    units::Millis
    meanLatency() const
    {
        if (!completed)
            return units::Millis{0.0};
        return units::Micros{static_cast<double>(latencySumUs) /
                             static_cast<double>(completed)};
    }
};

/** One implant as an actor on the discrete-event engine. */
class NodeModel
{
  public:
    /** Fires when a window leaves its flow's last stage. */
    using Completion =
        std::function<void(std::size_t flow, std::uint64_t windowId)>;

    /**
     * @param simulator shared event engine (must outlive the model)
     * @param node      implant id (trace "pid")
     * @param trace     optional recorder; null skips tracing
     */
    NodeModel(Simulator &simulator, std::uint32_t node,
              Trace *trace = nullptr);

    /**
     * Register a pipeline the node runs at @p window cadence.
     * @return flow index for the submit/progress calls
     */
    std::size_t addPipeline(const hw::Pipeline &pipeline,
                            units::Millis window);

    /** Set the completion hook of one flow. */
    void onWindowDone(std::size_t flow, Completion hook);

    /**
     * Abandon windows still waiting for the first stage after
     * @p backlog (0, the default, never drops — the legacy
     * `pipeline_sim` semantics where backlogs grow without bound).
     */
    void setDropBacklog(std::size_t flow, units::Millis backlog);

    /** Submit one window arriving at absolute time @p at. */
    void submitWindow(std::size_t flow, std::uint64_t window_id,
                      units::Micros at);

    /**
     * Submit @p count windows at the flow cadence, the first at
     * @p start.
     */
    void streamWindows(std::size_t flow, std::size_t count,
                       units::Micros start = units::Micros{0.0});

    const FlowProgress &progress(std::size_t flow) const;
    const hw::Pipeline &pipeline(std::size_t flow) const;
    std::size_t flowCount() const { return flows.size(); }
    std::uint32_t node() const { return nodeId; }

    /**
     * Crash the node: every pending stage-continuation event is
     * cancelled on the simulator (never executed against the dead
     * model), in-flight windows are dropped (traced as WindowDrop),
     * and windows arriving while halted are dropped on arrival.
     * Stage servers are reset so a later resume() starts cold.
     */
    void halt();

    /** Reboot a halted node; new arrivals execute normally again. */
    void resume();

    bool halted() const { return isHalted; }

    /**
     * Thermal throttle: scale every stage's service time by
     * @p factor (>= 1; 1 restores full speed). Applies to stages
     * entered from now on.
     */
    void setThrottle(double factor);
    double throttle() const { return throttleFactor; }

    /** Simulator owner tag of this node's cancellable events. */
    Simulator::Owner
    eventOwner() const
    {
        return nodeId + 1;
    }

    /** Per-stage busy time accumulated so far (µs). */
    std::vector<double> stageBusyUs(std::size_t flow) const;

    /**
     * Busy-time energy of a flow: each stage's Table 1 power at its
     * electrode count, integrated over the time the stage was serving
     * (the legacy `pipeline_sim` energy model).
     */
    units::Millijoules stageEnergy(std::size_t flow) const;

    /**
     * Whether every stage's service time fits the window cadence (the
     * analytic sustainability criterion the runtime cross-validates).
     */
    bool analyticallySustainable(std::size_t flow) const;

    /** Trace lane of one stage (flow-local; export "tid"). */
    static std::uint32_t
    stageLane(std::size_t flow, std::size_t stage)
    {
        return static_cast<std::uint32_t>(flow * kLanesPerFlow +
                                          stage + 1);
    }

    /** Lanes reserved per flow (stage lanes + the completion lane). */
    static constexpr std::size_t kLanesPerFlow = 64;

  private:
    struct StageState
    {
        std::uint64_t serviceUs = 0;
        std::uint64_t freeAtUs = 0;
        double busyUs = 0.0;
    };
    struct FlowState
    {
        hw::Pipeline pipeline;
        std::uint64_t windowUs = 0;
        std::uint64_t dropBacklogUs = 0; ///< 0 = never drop
        std::vector<StageState> stages;
        /** Windows inside the pipeline right now (small). */
        std::vector<std::uint64_t> inFlight;
        FlowProgress progress;
        Completion done;
    };

    void enterStage(std::size_t flow, std::size_t stage,
                    std::uint64_t window_id,
                    std::uint64_t arrival_us);

    /** Effective (throttled) service time of one stage. */
    std::uint64_t serviceTicks(const StageState &stage) const;

    Simulator *simulator;
    Trace *trace;
    std::uint32_t nodeId;
    bool isHalted = false;
    double throttleFactor = 1.0;
    std::vector<FlowState> flows;
};

} // namespace scalo::sim
