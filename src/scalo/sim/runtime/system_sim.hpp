/**
 * @file
 * Event-driven execution of a complete N-node SCALO system directly
 * from a `sched::Schedule`: one `sim::NodeModel` actor per implant
 * runs the scheduled flows' PE chains at their window cadences, the
 * shared single-frequency medium serialises TDMA exchange rounds whose
 * packets pass through a BER-driven `net::WirelessChannel` (corrupted
 * non-signal packets are retransmitted in extra slots), and NVM write
 * traffic streams through each node's `hw::StorageController`.
 *
 * The point is cross-validation (Section 3.5): the ILP schedules
 * statically on the claim that every component has deterministic
 * latency and power. `SystemSim` measures per-node power, end-to-end
 * response time, and sustainability from the event-driven execution
 * and reports them next to the analytic predictions, so the claim is
 * checked rather than assumed (tests/system_sim_test.cpp asserts
 * agreement within 5% for the Section 6 flow library).
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "scalo/hw/nvm.hpp"
#include "scalo/sched/scheduler.hpp"
#include "scalo/sim/runtime/node_model.hpp"
#include "scalo/sim/runtime/trace.hpp"

namespace scalo::sim {

/** What to simulate: a scheduled flow set on an N-node system. */
struct SystemSimConfig
{
    /** The system the schedule was produced for. */
    sched::SystemConfig system;
    /** The flow set, in the order it was passed to the scheduler. */
    std::vector<sched::FlowSpec> flows;
    /** The (feasible) allocation to execute. */
    sched::Schedule schedule;
    /** Streaming duration; windows arrive at each flow's cadence. */
    units::Millis duration{400.0};
    /** Channel error-injection seed. */
    std::uint64_t seed = 0x5ca1'0b01;
    /** Record a full event trace (counters accumulate regardless). */
    bool recordTrace = false;
};

/** Measured vs analytic behaviour of one flow. */
struct FlowSimStats
{
    std::string flow;
    /** Windows entering the system (summed over sender nodes). */
    std::size_t windowsSubmitted = 0;
    std::size_t windowsCompleted = 0;
    std::size_t windowsDropped = 0;
    /** Measured end-to-end response (compute + exchange round). */
    units::Millis meanResponse{0.0};
    units::Millis maxResponse{0.0};
    /** Static prediction: pipeline latency + serialized TDMA round. */
    units::Millis analyticResponse{0.0};
    /** Measured TDMA exchange round (zero for local flows). */
    units::Millis meanRound{0.0};
    units::Millis maxRound{0.0};
    /** Static prediction of the round (zero for local flows). */
    units::Millis analyticRound{0.0};
    std::uint64_t packetsSent = 0;
    std::uint64_t packetsCorrupted = 0;
    std::uint64_t retransmissions = 0;
    /** Event-driven verdict: cadence held, no backlog growth. */
    bool sustainable = false;
    /** Static verdict: every stage service fits the window. */
    bool analyticallySustainable = false;
};

/** Measured vs analytic behaviour of one node. */
struct NodeSimStats
{
    std::uint32_t node = 0;
    /** Leakage + dynamic energy integrated over the run. */
    units::Milliwatts measuredPower{0.0};
    /** The scheduler's prediction (Schedule::nodePower). */
    units::Milliwatts analyticPower{0.0};
    std::uint64_t nvmBytesWritten = 0;
    std::uint64_t nvmPagesProgrammed = 0;
    /** Write traffic / NVM write bandwidth. */
    double nvmUtilization = 0.0;
    /** Trace-event counts of this node (the metrics hook). */
    TraceCounters counters;
};

/** Full result of one SystemSim run. */
struct SystemSimResult
{
    std::vector<FlowSimStats> flows;
    std::vector<NodeSimStats> nodes;
    /** Counters of the shared medium (packet events). */
    TraceCounters network;
    units::Millis duration{0.0};
    std::size_t eventsExecuted = 0;
};

/** The N-node system simulation. */
class SystemSim
{
  public:
    /** @pre config.schedule.feasible */
    explicit SystemSim(SystemSimConfig config);
    ~SystemSim();

    SystemSim(const SystemSim &) = delete;
    SystemSim &operator=(const SystemSim &) = delete;

    /** Execute the schedule; callable once per SystemSim. */
    SystemSimResult run();

    /** The recorded trace (empty unless config.recordTrace). */
    const Trace &trace() const { return eventTrace; }

  private:
    struct FlowRuntime;

    void runExchange(std::size_t flow, std::uint64_t window_id);
    void accountWindow(std::size_t flow, std::uint32_t node,
                       std::uint64_t window_id);

    SystemSimConfig config;
    Simulator simulator;
    Trace eventTrace;
    std::vector<NodeModel> nodes;
    std::vector<FlowRuntime> flowRuntimes;
    /** Per-node dynamic energy accrued so far (µJ = mW·ms). */
    std::vector<double> dynamicEnergyUj;
    std::vector<hw::StorageController> storage;
    std::vector<std::uint64_t> nvmBytes;
    std::vector<std::uint64_t> nvmPages;
    /** When the serialized medium next becomes free (µs ticks). */
    std::uint64_t networkFreeUs = 0;
    bool ran = false;
};

} // namespace scalo::sim
