/**
 * @file
 * Event-driven execution of a complete N-node SCALO system directly
 * from a `sched::Schedule`: one `sim::NodeModel` actor per implant
 * runs the scheduled flows' PE chains at their window cadences, TDMA
 * exchange rounds occupy per-cluster `sim::Medium`s whose packets
 * pass through BER-driven `net::WirelessChannel`s (corrupted
 * non-signal packets are retransmitted in extra slots), and NVM write
 * traffic streams through each node's `hw::StorageController`.
 *
 * The fabric is hierarchical (`net::ClusterPlan`): each cluster runs
 * its own TDMA rounds on an independent medium and owns a private
 * discrete-event queue; relays forward per-cluster aggregates onto a
 * shared backbone medium processed at cluster-synchronisation
 * barriers. A single-cluster plan degenerates to the original flat
 * fabric and reproduces its runs byte for byte. Multi-cluster runs
 * can advance their cluster queues on `util::ThreadPool` workers
 * (`SystemSimConfig::parallel`): clusters only interact through the
 * backbone, which is handled single-threadedly at quantum barriers,
 * so the parallel engine's merged trace is byte-identical to the
 * serial reference engine for the same seed.
 *
 * The point is cross-validation (Section 3.5): the ILP schedules
 * statically on the claim that every component has deterministic
 * latency and power. `SystemSim` measures per-node power, end-to-end
 * response time, and sustainability from the event-driven execution
 * and reports them next to the analytic predictions, so the claim is
 * checked rather than assumed (tests/system_sim_test.cpp asserts
 * agreement within 5% for the Section 6 flow library).
 *
 * The runtime also executes declarative `FaultPlan`s: node crashes
 * and reboots, radio dropouts, BER spikes, NVM write failures, and
 * thermal throttling. TDMA slots double as heartbeats
 * (`net::HeartbeatDetector`, one per cluster): an exchange round that
 * hits its deadline with absent senders records misses, a node
 * crossing the miss threshold is declared dead, and the scheduler
 * remaps its work onto the cluster's survivors
 * (`sched::Scheduler::rescheduleCluster`; the flat fabric keeps the
 * whole-system `reschedule`), all visible in the trace as
 * FaultInjected/NodeDown/Resched events. An empty plan reproduces
 * the fault-free run byte for byte.
 */

#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "scalo/hw/nvm.hpp"
#include "scalo/net/channel.hpp"
#include "scalo/net/cluster.hpp"
#include "scalo/net/failure_detector.hpp"
#include "scalo/net/retry.hpp"
#include "scalo/sched/scheduler.hpp"
#include "scalo/sim/faults/fault_injector.hpp"
#include "scalo/sim/runtime/medium.hpp"
#include "scalo/sim/runtime/node_model.hpp"
#include "scalo/sim/runtime/trace.hpp"

namespace scalo::sim {

/** What to simulate: a scheduled flow set on an N-node system. */
struct SystemSimConfig
{
    /** The system the schedule was produced for (cluster plan and
     *  all; an empty plan is the flat single-medium fabric). */
    sched::SystemConfig system;
    /** The flow set, in the order it was passed to the scheduler. */
    std::vector<sched::FlowSpec> flows;
    /** The (feasible) allocation to execute. */
    sched::Schedule schedule;
    /** Streaming duration; windows arrive at each flow's cadence. */
    units::Millis duration{400.0};
    /** Channel error-injection seed. */
    std::uint64_t seed = 0x5ca1'0b01;
    /** Record a full event trace (counters accumulate regardless). */
    bool recordTrace = false;
    /**
     * Faults to inject. Empty (the default) is the contract for the
     * happy path: the run is identical to the pre-fault-framework
     * execution, byte for byte.
     */
    FaultPlan faults;
    /** Retransmission budget and exchange deadline. */
    net::RetryPolicy retry;
    /** Consecutive missed slots before a node is declared dead. */
    std::size_t heartbeatMissThreshold = 3;
    /**
     * Flow priorities for degraded rescheduling, in flow order.
     * Empty means equal weights.
     */
    std::vector<double> priorities;
    /**
     * Advance cluster event queues on ThreadPool workers. The serial
     * engine (false, the reference) produces the identical result
     * and trace; parallelism only changes wall-clock time. No effect
     * on single-cluster plans.
     */
    bool parallel = false;
    /** Worker count for parallel runs; 0 picks a default width. */
    std::size_t threads = 0;
    /**
     * Cluster-synchronisation quantum (the conservative lookahead):
     * cluster queues advance this far between backbone barriers.
     * Zero derives it from the fastest flow window cadence. Must be
     * identical between runs being compared for trace equality.
     */
    units::Millis syncQuantum{0.0};
};

/** A node declared dead by the heartbeat detector. */
struct NodeDownEvent
{
    std::uint32_t node = 0;
    /** Injected crash instant; negative if the node never crashed
     *  (a false positive, e.g. during a radio dropout). */
    units::Millis crashedAt{-1.0};
    /** When the detector crossed its miss threshold. */
    units::Millis detectedAt{0.0};
};

/** One degraded-mode reschedule (on death or recovery). */
struct RescheduleEvent
{
    units::Millis at{0.0};
    std::vector<std::size_t> deadNodes;
    /** ILP re-solve vs. the greedy repair fallback. */
    bool viaIlp = false;
    /** Clusters whose sub-problems were re-solved. */
    std::vector<std::size_t> resolvedClusters;
    units::MegabitsPerSecond throughputBefore{0.0};
    units::MegabitsPerSecond throughputAfter{0.0};
    units::Milliwatts maxNodePowerBefore{0.0};
    units::Milliwatts maxNodePowerAfter{0.0};
};

/**
 * A partition transition observed by the backbone-cadence failure
 * detector: a cluster with alive senders that stops (or resumes)
 * reaching the backbone.
 */
struct PartitionEvent
{
    std::size_t cluster = 0;
    units::Millis at{0.0};
    /** False for a PartitionStart, true for a PartitionHealed. */
    bool healed = false;
};

/**
 * One fabric-wide backbone re-stitch, performed at a quantum barrier
 * after relay failover, node death, or a partition transition
 * (sched::Scheduler::restitchBackbone).
 */
struct RestitchEvent
{
    units::Millis at{0.0};
    /** Dead nodes (union of every cluster detector) at the barrier. */
    std::vector<std::size_t> deadNodes;
    /** Clusters the backbone detector held unreachable. */
    std::vector<std::size_t> unreachableClusters;
    bool viaIlp = false;
    units::MegabitsPerSecond throughputBefore{0.0};
    units::MegabitsPerSecond throughputAfter{0.0};
};

/** Measured vs analytic behaviour of one flow. */
struct FlowSimStats
{
    std::string flow;
    /** Windows entering the system (summed over sender nodes). */
    std::size_t windowsSubmitted = 0;
    std::size_t windowsCompleted = 0;
    std::size_t windowsDropped = 0;
    /** Measured end-to-end response (compute + exchange round). */
    units::Millis meanResponse{0.0};
    units::Millis maxResponse{0.0};
    /** Static prediction: pipeline latency + TDMA round. */
    units::Millis analyticResponse{0.0};
    /**
     * Measured TDMA exchange round (zero for local flows). On a
     * clustered fabric this spans the first intra-cluster slot to
     * the end of the backbone round.
     */
    units::Millis meanRound{0.0};
    units::Millis maxRound{0.0};
    /** Static prediction of the round (zero for local flows). */
    units::Millis analyticRound{0.0};
    std::uint64_t packetsSent = 0;
    std::uint64_t packetsCorrupted = 0;
    std::uint64_t retransmissions = 0;
    /** Fragments abandoned after the retry budget was exhausted. */
    std::uint64_t packetsLost = 0;
    /** Relay aggregates carried over the backbone. */
    std::uint64_t relayForwards = 0;
    /** Event-driven verdict: cadence held, no backlog growth. */
    bool sustainable = false;
    /** Static verdict: every stage service fits the window. */
    bool analyticallySustainable = false;
};

/** Measured vs analytic behaviour of one node. */
struct NodeSimStats
{
    std::uint32_t node = 0;
    /** Leakage + dynamic energy integrated over the run. */
    units::Milliwatts measuredPower{0.0};
    /** The scheduler's prediction (Schedule::nodePower). */
    units::Milliwatts analyticPower{0.0};
    std::uint64_t nvmBytesWritten = 0;
    std::uint64_t nvmPagesProgrammed = 0;
    /** Write traffic / NVM write bandwidth. */
    double nvmUtilization = 0.0;
    /** Trace-event counts of this node (the metrics hook). */
    TraceCounters counters;
};

/** Full result of one SystemSim run. */
struct SystemSimResult
{
    std::vector<FlowSimStats> flows;
    std::vector<NodeSimStats> nodes;
    /** Counters summed over every medium (cluster + backbone). */
    TraceCounters network;
    units::Millis duration{0.0};
    std::size_t eventsExecuted = 0;
    /** Clusters the fabric ran as (1 = flat). */
    std::size_t clusters = 1;
    /** Whether the parallel engine executed the cluster queues. */
    bool ranParallel = false;

    // Failure timeline (all empty/zero on a fault-free run).
    std::vector<NodeDownEvent> nodesDown;
    std::vector<RescheduleEvent> reschedules;
    /** Backbone-detector partition transitions, detection order. */
    std::vector<PartitionEvent> partitions;
    /** Backbone re-stitches (failover, death, partition heal). */
    std::vector<RestitchEvent> restitches;
    /** Exchange rounds that ran at their deadline with absentees. */
    std::uint64_t exchangeTimeouts = 0;
    /** NVM appends the injector failed. */
    std::uint64_t nvmWriteFailures = 0;
    /** Fragments lost after the retry budget, summed over flows. */
    std::uint64_t packetsLost = 0;
    /** Relay aggregates lost to severed backbone links. */
    std::uint64_t relayForwardsDropped = 0;
};

/** The N-node system simulation. */
class SystemSim
{
  public:
    /** @pre config.schedule.feasible */
    explicit SystemSim(SystemSimConfig config);
    ~SystemSim();

    SystemSim(const SystemSim &) = delete;
    SystemSim &operator=(const SystemSim &) = delete;

    /** Execute the schedule; callable once per SystemSim. */
    SystemSimResult run();

    /** The recorded trace (empty unless config.recordTrace). */
    const Trace &trace() const { return eventTrace; }

    /**
     * Fault-injector RNG draw counts, shared stream first, then one
     * per node. The determinism contract's observable: a run with an
     * empty FaultPlan must leave every stream at zero — the fault
     * machinery consumes no randomness on the happy path, which is
     * what keeps empty-plan traces byte-identical to pre-fault
     * builds at every thread count.
     */
    std::vector<std::uint64_t>
    faultRngDraws() const
    {
        return injector.rngDrawsPerStream();
    }

  private:
    struct FlowRuntime;
    struct ClusterFlow;
    struct Cluster;
    struct RelayPacket;
    struct BackboneRound;

    void runExchange(Cluster &cluster, std::size_t flow,
                     std::uint64_t window_id);
    void onExchangeDeadline(Cluster &cluster, std::size_t flow,
                            std::uint64_t window_id);
    void accountWindow(Cluster &cluster, std::size_t flow,
                       std::uint32_t node, std::uint64_t window_id);
    void scheduleFaultEvents();
    void declareDead(Cluster &cluster, std::size_t node);
    void declareRecovered(Cluster &cluster, std::size_t node);
    /** Re-solve around the cluster's dead set; update live state. */
    void applyReschedule(Cluster &cluster);
    /** Refresh @p cluster's live totals/payloads from liveSchedule. */
    void refreshClusterAllocation(Cluster &cluster);
    /**
     * Gather relay forwards up to @p upto_ticks and run every
     * backbone round that is complete (or past its deadline).
     * Single-threaded: runs between cluster quanta.
     */
    void processBackbone(std::uint64_t upto_ticks);
    void runBackboneRound(std::size_t flow, std::uint64_t window_id,
                          BackboneRound &round, bool timed_out);
    /**
     * Fabric-wide backbone re-stitch if any cluster flagged one (a
     * relay failover or reschedule) or the backbone detector changed
     * state. Runs single-threadedly at the quantum barrier.
     */
    void performRestitch(std::uint64_t upto_ticks);
    void mergeClusterStats(SystemSimResult &result);

    SystemSimConfig config;
    /** Effective partition (flat when the config has none). */
    net::ClusterPlan plan;
    std::vector<std::unique_ptr<Cluster>> clusters;
    /** Coordinator-side trace: backbone rounds and relay packets. */
    Trace globalTrace;
    /** Merged trace of the whole run (filled by run()). */
    Trace eventTrace;
    FaultInjector injector;
    /** The allocation currently executing: clusters mutate only
     *  their member columns (disjoint), reschedules degrade it. */
    sched::Schedule liveSchedule;
    std::vector<NodeModel> nodes;
    std::vector<FlowRuntime> flowRuntimes;
    /** Ground-truth node state (crash/reboot), unobservable by the
     *  detector. */
    std::vector<char> nodeUp;
    /** Injected crash instant per node (ms; -1 = never crashed). */
    std::vector<double> crashedAtMs;
    /** Per-node dynamic energy accrued so far (µJ = mW·ms). */
    std::vector<double> dynamicEnergyUj;
    std::vector<hw::StorageController> storage;
    std::vector<std::uint64_t> nvmBytes;
    std::vector<std::uint64_t> nvmPages;

    // Backbone (coordinator) state; touched only between quanta.
    Medium backboneMedium;
    std::map<std::pair<std::size_t, std::uint64_t>, BackboneRound>
        pendingRounds;
    std::vector<std::optional<net::WirelessChannel>>
        backboneChannels;
    Rng backboneBackoffRng;
    std::uint64_t backboneTimeouts = 0;
    std::uint16_t backboneSequence = 0;

    /**
     * Backbone-cadence failure detector over *clusters*: each
     * backbone round a cluster with alive senders either reached the
     * backbone (heard) or did not (miss); crossing the miss threshold
     * declares the cluster partitioned. Sized to the cluster count.
     */
    net::HeartbeatDetector backboneDetector{0, 3};
    /** The backbone detector changed state since the last restitch. */
    bool backboneRestitchPending = false;
    /** Latest tick of any event that requested the pending restitch
     *  (the restitch is stamped no earlier, for trace ordering). */
    std::uint64_t restitchTickHint = 0;
    std::vector<PartitionEvent> partitionEvents;
    std::vector<RestitchEvent> restitchEvents;
    std::uint64_t relayForwardsDropped = 0;
    /** Victim resolved at each RelayCrashFault's crash instant. */
    std::vector<std::size_t> relayCrashVictims;

    bool ran = false;
};

} // namespace scalo::sim
