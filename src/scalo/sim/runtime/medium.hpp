/**
 * @file
 * A shared transmission medium as seen by the discrete-event runtime:
 * one half-duplex channel on which at most one exchange is in flight
 * at a time. The hierarchical fabric instantiates one Medium per
 * cluster plus one for the inter-cluster backbone; the flat fabric is
 * the single-Medium special case (this replaces the old lone
 * `networkFreeUs` scalar inside SystemSim).
 */

#pragma once

#include <algorithm>
#include <cstdint>

namespace scalo::sim {

/** Occupancy of one half-duplex medium on the integer-µs grid. */
class Medium
{
  public:
    /**
     * Earliest start for a transmission requested at @p at_us: the
     * request time, pushed back while the medium is still busy.
     */
    std::uint64_t
    acquire(std::uint64_t at_us) const
    {
        return std::max(at_us, freeAt);
    }

    /** Mark the medium busy until @p until_us. */
    void
    release(std::uint64_t until_us)
    {
        freeAt = std::max(freeAt, until_us);
    }

    /** First microsecond at which the medium is idle. */
    std::uint64_t freeAtUs() const { return freeAt; }

  private:
    std::uint64_t freeAt = 0;
};

} // namespace scalo::sim
