#include "scalo/sim/runtime/node_model.hpp"

#include <algorithm>
#include <cmath>

#include "scalo/util/contracts.hpp"
#include "scalo/util/logging.hpp"

namespace scalo::sim {

namespace {

std::uint64_t
toTicks(units::Micros t)
{
    SCALO_EXPECTS(t.count() >= 0.0);
    return static_cast<std::uint64_t>(std::llround(t.count()));
}

} // namespace

NodeModel::NodeModel(Simulator &simulator, std::uint32_t node,
                     Trace *trace)
    : simulator(&simulator), trace(trace), nodeId(node)
{
}

std::size_t
NodeModel::addPipeline(const hw::Pipeline &pipeline,
                       units::Millis window)
{
    SCALO_ASSERT(window.count() > 0.0, "window must be positive");
    SCALO_ASSERT(!pipeline.stages().empty(), "empty pipeline");
    FlowState flow;
    flow.pipeline = pipeline;
    flow.windowUs = toTicks(units::Micros(window));
    SCALO_ASSERT(flow.windowUs > 0, "window below the µs grid");
    flow.stages.resize(pipeline.stages().size());
    for (std::size_t s = 0; s < flow.stages.size(); ++s) {
        // Data-dependent PEs (no Table 1 latency) serve in zero time,
        // as in the legacy pipeline simulation.
        const auto &spec = hw::peSpec(pipeline.stages()[s].kind);
        if (spec.latency)
            flow.stages[s].serviceUs =
                toTicks(units::Micros(*spec.latency));
    }
    flows.push_back(std::move(flow));
    return flows.size() - 1;
}

void
NodeModel::onWindowDone(std::size_t flow, Completion hook)
{
    SCALO_EXPECTS(flow < flows.size());
    flows[flow].done = std::move(hook);
}

void
NodeModel::setDropBacklog(std::size_t flow, units::Millis backlog)
{
    SCALO_EXPECTS(flow < flows.size());
    SCALO_EXPECTS(backlog.count() >= 0.0);
    flows[flow].dropBacklogUs = toTicks(units::Micros(backlog));
}

void
NodeModel::submitWindow(std::size_t flow, std::uint64_t window_id,
                        units::Micros at)
{
    SCALO_EXPECTS(flow < flows.size());
    const std::uint64_t arrival = toTicks(at);
    ++flows[flow].progress.submitted;
    // Arrivals are unowned: a window reaching a crashed node is a
    // real event (the data was produced and lost), recorded as a
    // drop rather than silently cancelled.
    simulator->at(at, [this, flow, window_id, arrival] {
        if (isHalted) {
            FlowState &state = flows[flow];
            ++state.progress.dropped;
            if (trace)
                trace->record(
                    simulator->now(), TraceEventKind::WindowDrop,
                    nodeId, stageLane(flow, state.stages.size()),
                    std::string(state.pipeline.name()), window_id);
            return;
        }
        enterStage(flow, 0, window_id, arrival);
    });
}

void
NodeModel::halt()
{
    if (isHalted)
        return;
    isHalted = true;
    simulator->cancelOwned(eventOwner());
    const units::Micros now = simulator->now();
    for (std::size_t f = 0; f < flows.size(); ++f) {
        FlowState &state = flows[f];
        for (std::uint64_t window_id : state.inFlight) {
            ++state.progress.dropped;
            if (trace)
                trace->record(
                    now, TraceEventKind::WindowDrop, nodeId,
                    stageLane(f, state.stages.size()),
                    std::string(state.pipeline.name()), window_id);
        }
        state.inFlight.clear();
        // Cold servers on reboot: whatever was queued died with the
        // node.
        for (StageState &stage : state.stages)
            stage.freeAtUs = 0;
    }
}

void
NodeModel::resume()
{
    isHalted = false;
}

void
NodeModel::setThrottle(double factor)
{
    SCALO_EXPECTS(factor >= 1.0);
    throttleFactor = factor;
}

std::uint64_t
NodeModel::serviceTicks(const StageState &stage) const
{
    if (throttleFactor == 1.0)
        return stage.serviceUs;
    return static_cast<std::uint64_t>(std::llround(
        static_cast<double>(stage.serviceUs) * throttleFactor));
}

void
NodeModel::streamWindows(std::size_t flow, std::size_t count,
                         units::Micros start)
{
    SCALO_EXPECTS(flow < flows.size());
    const std::uint64_t first = toTicks(start);
    const std::uint64_t period = flows[flow].windowUs;
    for (std::size_t w = 0; w < count; ++w) {
        const std::uint64_t arrival =
            first + static_cast<std::uint64_t>(w) * period;
        submitWindow(flow, static_cast<std::uint64_t>(w),
                     units::Micros{static_cast<double>(arrival)});
    }
}

void
NodeModel::enterStage(std::size_t flow, std::size_t stage,
                      std::uint64_t window_id,
                      std::uint64_t arrival_us)
{
    FlowState &state = flows[flow];
    StageState &server = state.stages[stage];
    const std::uint64_t now = simulator->ticks();
    const std::uint64_t start = std::max(now, server.freeAtUs);

    if (stage == 0 && state.dropBacklogUs > 0 &&
        start - arrival_us > state.dropBacklogUs) {
        ++state.progress.dropped;
        if (trace)
            trace->record(
                units::Micros{static_cast<double>(now)},
                TraceEventKind::WindowDrop, nodeId,
                stageLane(flow, state.stages.size()),
                std::string(state.pipeline.name()), window_id,
                static_cast<double>(start - arrival_us));
        return;
    }

    if (stage == 0)
        state.inFlight.push_back(window_id);

    const std::uint64_t service = serviceTicks(server);
    const std::uint64_t finish = start + service;
    server.freeAtUs = finish;
    server.busyUs += static_cast<double>(service);

    if (trace) {
        const auto name = std::string(
            hw::peName(state.pipeline.stages()[stage].kind));
        trace->record(units::Micros{static_cast<double>(start)},
                      TraceEventKind::StageStart, nodeId,
                      stageLane(flow, stage), name, window_id);
        trace->record(units::Micros{static_cast<double>(finish)},
                      TraceEventKind::StageFinish, nodeId,
                      stageLane(flow, stage), name, window_id);
    }

    // Stage continuations are owned: halt() cancels them so a dead
    // node's pipeline stops mid-flight instead of executing against
    // the halted model.
    const bool last = stage + 1 == state.stages.size();
    simulator->atOwned(
        units::Micros{static_cast<double>(finish)}, eventOwner(),
        [this, flow, stage, window_id, arrival_us, last] {
            if (!last) {
                enterStage(flow, stage + 1, window_id, arrival_us);
                return;
            }
            FlowState &done_state = flows[flow];
            const std::uint64_t done = simulator->ticks();
            const std::uint64_t latency = done - arrival_us;
            ++done_state.progress.completed;
            std::erase(done_state.inFlight, window_id);
            done_state.progress.lastLatencyUs = latency;
            done_state.progress.maxLatencyUs =
                std::max(done_state.progress.maxLatencyUs, latency);
            done_state.progress.latencySumUs += latency;
            if (trace)
                trace->record(
                    units::Micros{static_cast<double>(done)},
                    TraceEventKind::WindowDone, nodeId,
                    stageLane(flow, done_state.stages.size()),
                    std::string(done_state.pipeline.name()),
                    window_id, static_cast<double>(latency));
            if (done_state.done)
                done_state.done(flow, window_id);
        });
}

const FlowProgress &
NodeModel::progress(std::size_t flow) const
{
    SCALO_EXPECTS(flow < flows.size());
    return flows[flow].progress;
}

const hw::Pipeline &
NodeModel::pipeline(std::size_t flow) const
{
    SCALO_EXPECTS(flow < flows.size());
    return flows[flow].pipeline;
}

std::vector<double>
NodeModel::stageBusyUs(std::size_t flow) const
{
    SCALO_EXPECTS(flow < flows.size());
    std::vector<double> busy;
    busy.reserve(flows[flow].stages.size());
    for (const StageState &stage : flows[flow].stages)
        busy.push_back(stage.busyUs);
    return busy;
}

units::Millijoules
NodeModel::stageEnergy(std::size_t flow) const
{
    SCALO_EXPECTS(flow < flows.size());
    const FlowState &state = flows[flow];
    units::Millijoules energy{0.0};
    for (std::size_t s = 0; s < state.stages.size(); ++s) {
        const auto &spec =
            hw::peSpec(state.pipeline.stages()[s].kind);
        const units::Microwatts power =
            spec.power(state.pipeline.stages()[s].electrodes);
        energy += power * units::Micros{state.stages[s].busyUs};
    }
    SCALO_ENSURES(energy.count() >= 0.0);
    return energy;
}

bool
NodeModel::analyticallySustainable(std::size_t flow) const
{
    SCALO_EXPECTS(flow < flows.size());
    const FlowState &state = flows[flow];
    return std::all_of(state.stages.begin(), state.stages.end(),
                       [&](const StageState &stage) {
                           return stage.serviceUs <= state.windowUs;
                       });
}

} // namespace scalo::sim
