/**
 * @file
 * Discrete-event simulation of a GALS pipeline (Figure 2b): windows
 * arrive every window period and flow through the PE stages, each a
 * server with its Table 1 latency. Because every PE runs in its own
 * clock domain, stages overlap; a pipeline is sustainable exactly
 * when no stage's service time exceeds the arrival period, in which
 * case the end-to-end latency is the sum of stage latencies. The
 * simulator also integrates energy from the per-stage power model.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "scalo/hw/fabric.hpp"

namespace scalo::sim {

/** Result of streaming windows through a pipeline. */
struct PipelineSimResult
{
    std::size_t windowsIn = 0;
    std::size_t windowsOut = 0;
    /** Mean end-to-end latency of completed windows (ms). */
    double meanLatencyMs = 0.0;
    /** Latency of the last completed window (ms) - grows without
     *  bound when a stage is oversubscribed. */
    double lastLatencyMs = 0.0;
    /** Per-stage busy fraction. */
    std::vector<double> stageUtilization;
    /** Whether every stage kept up with the arrival period. */
    bool sustainable = false;
    /** Energy consumed over the run (mJ), power model x busy time. */
    double energyMj = 0.0;
};

/**
 * Stream @p windows windows, one every @p window_period_ms, through
 * @p pipeline's stages.
 */
PipelineSimResult simulatePipeline(const hw::Pipeline &pipeline,
                                   std::size_t windows,
                                   double window_period_ms);

} // namespace scalo::sim
