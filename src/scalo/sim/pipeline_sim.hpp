/**
 * @file
 * Discrete-event simulation of a GALS pipeline (Figure 2b): windows
 * arrive every window period and flow through the PE stages, each a
 * server with its Table 1 latency. Because every PE runs in its own
 * clock domain, stages overlap; a pipeline is sustainable exactly
 * when no stage's service time exceeds the arrival period, in which
 * case the end-to-end latency is the sum of stage latencies. The
 * simulator also integrates energy from the per-stage power model.
 *
 * This is a thin scenario over the node-level runtime: one
 * `sim::NodeModel` streaming windows through one flow, optionally
 * recorded into a `sim::Trace`.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "scalo/hw/fabric.hpp"
#include "scalo/sim/runtime/trace.hpp"

namespace scalo::sim {

/** Result of streaming windows through a pipeline. */
struct PipelineSimResult
{
    std::size_t windowsIn = 0;
    std::size_t windowsOut = 0;
    /** Mean end-to-end latency of completed windows. */
    units::Millis meanLatency{0.0};
    /** Latency of the last completed window - grows without
     *  bound when a stage is oversubscribed. */
    units::Millis lastLatency{0.0};
    /** Per-stage busy fraction. */
    std::vector<double> stageUtilization;
    /** Whether every stage kept up with the arrival period. */
    bool sustainable = false;
    /** Energy consumed over the run, power model x busy time. */
    units::Millijoules energy{0.0};
};

/**
 * Stream @p windows windows, one every @p period, through
 * @p pipeline's stages. Stage events are recorded into @p trace when
 * one is supplied.
 */
PipelineSimResult simulatePipeline(const hw::Pipeline &pipeline,
                                   std::size_t windows,
                                   units::Millis period,
                                   Trace *trace = nullptr);

} // namespace scalo::sim
