#include "scalo/sim/pipeline_sim.hpp"

#include "scalo/sim/runtime/node_model.hpp"
#include "scalo/util/contracts.hpp"
#include "scalo/util/logging.hpp"

namespace scalo::sim {

PipelineSimResult
simulatePipeline(const hw::Pipeline &pipeline, std::size_t windows,
                 units::Millis period, Trace *trace)
{
    SCALO_ASSERT(period.count() > 0.0, "period must be positive");
    SCALO_ASSERT(!pipeline.stages().empty(), "empty pipeline");

    Simulator simulator;
    NodeModel node(simulator, /*node=*/0, trace);
    const std::size_t flow = node.addPipeline(pipeline, period);

    node.streamWindows(flow, windows);
    simulator.run();

    const FlowProgress &progress = node.progress(flow);
    PipelineSimResult result;
    result.windowsIn = progress.submitted;
    result.windowsOut = progress.completed;
    result.meanLatency = progress.meanLatency();
    result.lastLatency =
        units::Micros{static_cast<double>(progress.lastLatencyUs)};
    result.sustainable = node.analyticallySustainable(flow);
    result.energy = node.stageEnergy(flow);

    const double total_us =
        static_cast<double>(windows) * period.in<units::Micros>();
    const std::vector<double> busy = node.stageBusyUs(flow);
    result.stageUtilization.resize(busy.size());
    for (std::size_t s = 0; s < busy.size(); ++s)
        result.stageUtilization[s] =
            total_us > 0.0 ? busy[s] / total_us : 0.0;
    return result;
}

} // namespace scalo::sim
