#include "scalo/sim/pipeline_sim.hpp"

#include <algorithm>
#include <cmath>

#include "scalo/sim/event_queue.hpp"
#include "scalo/util/contracts.hpp"
#include "scalo/util/logging.hpp"

namespace scalo::sim {

PipelineSimResult
simulatePipeline(const hw::Pipeline &pipeline, std::size_t windows,
                 units::Millis period)
{
    SCALO_ASSERT(period.count() > 0.0, "period must be positive");
    const auto &stages = pipeline.stages();
    SCALO_ASSERT(!stages.empty(), "empty pipeline");

    // Per-stage service times; data-dependent PEs contribute 0.
    std::vector<units::Millis> service(stages.size(),
                                       units::Millis{0.0});
    for (std::size_t s = 0; s < stages.size(); ++s) {
        const auto &spec = hw::peSpec(stages[s].kind);
        if (spec.latency)
            service[s] = *spec.latency;
    }

    Simulator simulator;
    // free_at[s]: when stage s can accept the next window (us ticks).
    std::vector<std::uint64_t> free_at(stages.size(), 0);
    std::vector<double> busy_us(stages.size(), 0.0);

    PipelineSimResult result;
    result.windowsIn = windows;
    double latency_sum_ms = 0.0;

    const auto period_us =
        static_cast<std::uint64_t>(period.in<units::Micros>());

    for (std::size_t w = 0; w < windows; ++w) {
        const std::uint64_t arrival = w * period_us;
        simulator.at(units::Micros{static_cast<double>(arrival)},
                     [] {});

        // Walk the window through the stages: it starts at a stage
        // when both it has arrived there and the stage is free.
        std::uint64_t t = arrival;
        for (std::size_t s = 0; s < stages.size(); ++s) {
            const std::uint64_t start = std::max(t, free_at[s]);
            const auto service_us = static_cast<std::uint64_t>(
                service[s].in<units::Micros>());
            free_at[s] = start + service_us;
            busy_us[s] += static_cast<double>(service_us);
            t = start + service_us;
        }
        ++result.windowsOut;
        result.lastLatency =
            units::Micros{static_cast<double>(t - arrival)};
        latency_sum_ms += result.lastLatency.count();
    }
    simulator.run();

    const double total_us = static_cast<double>(windows) *
                            static_cast<double>(period_us);
    result.meanLatency =
        windows ? units::Millis{latency_sum_ms /
                                static_cast<double>(windows)}
                : units::Millis{0.0};
    result.stageUtilization.resize(stages.size());
    bool sustainable = true;
    for (std::size_t s = 0; s < stages.size(); ++s) {
        result.stageUtilization[s] =
            total_us > 0.0 ? busy_us[s] / total_us : 0.0;
        if (service[s].count() > period.count() + 1e-12)
            sustainable = false;
    }
    result.sustainable = sustainable;

    // Energy: each stage's power integrated over its busy time.
    for (std::size_t s = 0; s < stages.size(); ++s) {
        const auto &spec = hw::peSpec(stages[s].kind);
        const units::Microwatts power =
            spec.power(static_cast<double>(stages[s].electrodes));
        result.energy += power * units::Micros{busy_us[s]};
    }
    SCALO_ENSURES(result.energy.count() >= 0.0);
    return result;
}

} // namespace scalo::sim
