#include "scalo/sim/pipeline_sim.hpp"

#include <algorithm>

#include "scalo/sim/event_queue.hpp"
#include "scalo/util/logging.hpp"

namespace scalo::sim {

PipelineSimResult
simulatePipeline(const hw::Pipeline &pipeline, std::size_t windows,
                 double window_period_ms)
{
    SCALO_ASSERT(window_period_ms > 0.0, "period must be positive");
    const auto &stages = pipeline.stages();
    SCALO_ASSERT(!stages.empty(), "empty pipeline");

    // Per-stage service times (ms); data-dependent PEs contribute 0.
    std::vector<double> service(stages.size(), 0.0);
    for (std::size_t s = 0; s < stages.size(); ++s) {
        const auto &spec = hw::peSpec(stages[s].kind);
        if (spec.latencyMs)
            service[s] = *spec.latencyMs;
    }

    Simulator simulator;
    // free_at[s]: when stage s can accept the next window (us).
    std::vector<std::uint64_t> free_at(stages.size(), 0);
    std::vector<double> busy_us(stages.size(), 0.0);

    PipelineSimResult result;
    result.windowsIn = windows;
    double latency_sum = 0.0;

    const auto period_us =
        static_cast<std::uint64_t>(window_period_ms * 1'000.0);

    for (std::size_t w = 0; w < windows; ++w) {
        const std::uint64_t arrival = w * period_us;
        simulator.at(arrival, [] {});

        // Walk the window through the stages: it starts at a stage
        // when both it has arrived there and the stage is free.
        std::uint64_t t = arrival;
        for (std::size_t s = 0; s < stages.size(); ++s) {
            const std::uint64_t start = std::max(t, free_at[s]);
            const auto service_us = static_cast<std::uint64_t>(
                service[s] * 1'000.0);
            free_at[s] = start + service_us;
            busy_us[s] += static_cast<double>(service_us);
            t = start + service_us;
        }
        ++result.windowsOut;
        result.lastLatencyMs =
            static_cast<double>(t - arrival) / 1'000.0;
        latency_sum += result.lastLatencyMs;
    }
    simulator.run();

    const double total_us =
        static_cast<double>(windows) *
        static_cast<double>(period_us);
    result.meanLatencyMs =
        windows ? latency_sum / static_cast<double>(windows) : 0.0;
    result.stageUtilization.resize(stages.size());
    bool sustainable = true;
    for (std::size_t s = 0; s < stages.size(); ++s) {
        result.stageUtilization[s] =
            total_us > 0.0 ? busy_us[s] / total_us : 0.0;
        if (service[s] > window_period_ms + 1e-12)
            sustainable = false;
    }
    result.sustainable = sustainable;

    // Energy: each stage's power while busy (mW x ms = uJ -> mJ).
    for (std::size_t s = 0; s < stages.size(); ++s) {
        const auto &spec = hw::peSpec(stages[s].kind);
        const double power_mw =
            spec.powerUw(stages[s].electrodes) / 1'000.0;
        result.energyMj += power_mw * busy_us[s] / 1'000.0 * 1e-3;
    }
    return result;
}

} // namespace scalo::sim
