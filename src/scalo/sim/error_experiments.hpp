/**
 * @file
 * Error-injection experiments (Sections 6.6 and 6.7):
 *
 *  - Figure 12: fraction of hash/signal packets corrupted at a given
 *    network BER, and how often corrupted signal payloads actually
 *    flip a DTW similarity decision (almost never - the measures are
 *    naturally resilient).
 *
 *  - Figure 15a: maximum seizure-propagation delay as a function of
 *    the hash function's encoding error rate. A seizure is captured
 *    by several electrodes and lasts several windows, so correlation
 *    only slips to the next 4 ms window when every electrode's hash
 *    fails at once.
 *
 *  - Figure 15b: the same delay under network bit errors. A corrupted
 *    hash packet loses a whole node's hashes, but the TDMA round has
 *    slack, so the retransmission lands one slot (~0.25 ms) later.
 */

#pragma once

#include <cstdint>

#include "scalo/net/radio.hpp"
#include "scalo/sim/runtime/trace.hpp"

namespace scalo::sim {

/** Figure 12 measurement for one BER point. */
struct NetworkErrorPoint
{
    double ber = 0.0;
    /** Fraction of hash packets arriving with any error. */
    double hashPacketErrorFraction = 0.0;
    /** Fraction of signal packets arriving with any error. */
    double signalPacketErrorFraction = 0.0;
    /**
     * Fraction of corrupted signal packets whose DTW similarity
     * outcome flipped versus the clean signal.
     */
    double dtwDecisionFailureFraction = 0.0;
};

/**
 * Run the Figure 12 sweep point at @p ber over @p packets packets.
 * Packet transmissions ride the event engine at the window cadence;
 * @p trace records the packet/decision events when supplied.
 */
NetworkErrorPoint measureNetworkErrors(double ber,
                                       std::size_t packets = 2'000,
                                       std::uint64_t seed = 12,
                                       Trace *trace = nullptr);

/** Delay distribution over repetitions (Figure 15). */
struct DelayDistribution
{
    units::Millis mean{0.0};
    units::Millis max{0.0};
    units::Millis min{0.0};
};

/** Configuration shared by the two Figure 15 experiments. */
struct PropagationErrorConfig
{
    std::size_t electrodesPerNode = 16;
    /** Window cadence: a missed correlation retries next window. */
    units::Millis window{4.0};
    /** TDMA slot pitch: a lost packet retransmits next slot. */
    units::Millis slot{0.25};
    /** CCHECK + confirmation processing tail. */
    units::Millis check{0.0};
    std::size_t repetitions = 1'000;
    std::uint64_t seed = 0xde1a7;
};

/**
 * Figure 15a: propagation delay when each electrode's hash encoding
 * independently fails with probability @p hash_error_rate. All
 * repetitions chain on one event engine; @p trace records a
 * window-drop per all-electrode miss and a window-done per capture.
 */
DelayDistribution
simulateHashEncodingErrors(double hash_error_rate,
                           const PropagationErrorConfig &config = {},
                           Trace *trace = nullptr);

/**
 * Figure 15b: propagation delay at network bit-error rate @p ber
 * (all of a node's hashes travel in one packet; a checksum error
 * drops it and the node retransmits in its next TDMA slot).
 * @p trace records the tx/corrupt/retransmit packet events.
 */
DelayDistribution
simulateNetworkBerDelay(double ber,
                        const PropagationErrorConfig &config = {},
                        Trace *trace = nullptr);

} // namespace scalo::sim
