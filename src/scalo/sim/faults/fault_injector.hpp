/**
 * @file
 * The runtime interpreter of a `FaultPlan`: `SystemSim` consults the
 * injector each event round to learn the channel condition (dropout /
 * BER spike), the thermal throttle factor of a node, and whether an
 * NVM append fails. Crash/reboot instants are read off the plan and
 * turned into simulator events by `SystemSim` itself (the injector
 * has no event queue).
 *
 * All randomness (NVM Bernoulli draws) comes from one seeded Rng, so
 * a fixed (plan, seed) pair reproduces the same fault sequence.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "scalo/sim/faults/fault_plan.hpp"
#include "scalo/util/rng.hpp"

namespace scalo::sim {

/** Stateful, seeded view of a FaultPlan for one run. */
class FaultInjector
{
  public:
    FaultInjector(FaultPlan plan, std::uint64_t seed);

    const FaultPlan &plan() const { return faultPlan; }

    /** Whether the shared medium is in a dropout window at @p t. */
    bool inDropout(units::Micros t) const;

    /**
     * BER override active at @p t, or a negative value when the
     * baseline BER applies. Overlapping spikes: the latest-starting
     * one wins (deterministic).
     */
    double berOverrideAt(units::Micros t) const;

    /**
     * Whether @p cluster's backbone link is severed at @p t. Intra-
     * cluster behaviour is untouched; the runtime drops the cluster's
     * relay forwards (both directions) while this holds.
     */
    bool inPartition(std::size_t cluster, units::Micros t) const;

    /**
     * BER override active on the *backbone* channel at @p t, or a
     * negative value when the baseline BER applies. Plan-wide
     * BerSpikeFaults also cover the backbone (legacy semantics);
     * a backbone-specific spike wins ties so operators can target
     * the inter-cluster hop alone.
     */
    double backboneBerOverrideAt(units::Micros t) const;

    /**
     * Service-time multiplier of @p node at @p t (1.0 when no
     * throttle interval covers t; overlaps multiply).
     */
    double throttleAt(std::uint32_t node, units::Micros t) const;

    /**
     * Bernoulli draw: does this NVM append on @p node fail? Consumes
     * RNG state only when the node has a configured failure
     * probability, so fault-free nodes do not perturb the stream.
     */
    bool nvmWriteFails(std::uint32_t node);

    /**
     * Split the NVM draw stream into one independent seeded stream
     * (and failure counter) per node. The hierarchical runtime calls
     * this when clusters execute concurrently: with a single shared
     * stream the draw order would depend on the cluster interleaving.
     * Single-cluster (flat) runs keep the legacy shared stream, so
     * their draw sequences are unchanged.
     */
    void partitionNvmStreams(std::size_t node_count);

    /** Number of NVM failures drawn so far (for result accounting). */
    std::uint64_t nvmFailuresDrawn() const;

    /**
     * Raw RNG draws consumed so far, shared stream first and then one
     * entry per partitioned per-node stream. The empty-plan byte-
     * parity contract requires every entry to be zero — the parallel
     * determinism regression test pins this down as fault kinds grow.
     */
    std::vector<std::uint64_t> rngDrawsPerStream() const;

  private:
    FaultPlan faultPlan;
    Rng rng;
    std::uint64_t seed = 0;
    std::uint64_t nvmFailures = 0;
    /** Per-node streams/counters; empty until partitioned. */
    std::vector<Rng> nodeRngs;
    std::vector<std::uint64_t> nodeFailures;
};

} // namespace scalo::sim
