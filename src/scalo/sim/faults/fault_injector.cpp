#include "scalo/sim/faults/fault_injector.hpp"

namespace scalo::sim {

namespace {

bool
covers(units::Millis from, units::Millis to, units::Micros t)
{
    const units::Millis at{t};
    return at >= from && at < to;
}

} // namespace

FaultInjector::FaultInjector(FaultPlan plan, std::uint64_t seed)
    : faultPlan(std::move(plan)),
      rng(seed ^ 0xfa17'fa17'fa17'fa17ULL), seed(seed)
{
}

void
FaultInjector::partitionNvmStreams(std::size_t node_count)
{
    nodeRngs.clear();
    nodeRngs.reserve(node_count);
    for (std::size_t n = 0; n < node_count; ++n)
        nodeRngs.emplace_back(
            mix64(seed ^ 0xfa17'fa17'fa17'fa17ULL, n + 1));
    nodeFailures.assign(node_count, 0);
}

std::uint64_t
FaultInjector::nvmFailuresDrawn() const
{
    std::uint64_t total = nvmFailures;
    for (const std::uint64_t f : nodeFailures)
        total += f;
    return total;
}

std::vector<std::uint64_t>
FaultInjector::rngDrawsPerStream() const
{
    std::vector<std::uint64_t> draws;
    draws.reserve(1 + nodeRngs.size());
    draws.push_back(rng.draws());
    for (const Rng &stream : nodeRngs)
        draws.push_back(stream.draws());
    return draws;
}

bool
FaultInjector::inDropout(units::Micros t) const
{
    for (const RadioDropoutFault &dropout : faultPlan.dropouts)
        if (covers(dropout.from, dropout.to, t))
            return true;
    return false;
}

double
FaultInjector::berOverrideAt(units::Micros t) const
{
    double override_ber = -1.0;
    double latest_start = -1.0;
    for (const BerSpikeFault &spike : faultPlan.berSpikes) {
        if (covers(spike.from, spike.to, t) &&
            spike.from.count() > latest_start) {
            latest_start = spike.from.count();
            override_ber = spike.ber;
        }
    }
    return override_ber;
}

bool
FaultInjector::inPartition(std::size_t cluster, units::Micros t) const
{
    for (const ClusterPartitionFault &partition : faultPlan.partitions)
        if (partition.cluster == cluster &&
            covers(partition.from, partition.to, t))
            return true;
    return false;
}

double
FaultInjector::backboneBerOverrideAt(units::Micros t) const
{
    // Plan-wide spikes cover the backbone too (legacy semantics);
    // a backbone-specific spike starting no earlier wins the tie
    // (>= below vs the strict > of the plan-wide pass).
    double override_ber = -1.0;
    double latest_start = -1.0;
    for (const BerSpikeFault &spike : faultPlan.berSpikes) {
        if (covers(spike.from, spike.to, t) &&
            spike.from.count() > latest_start) {
            latest_start = spike.from.count();
            override_ber = spike.ber;
        }
    }
    for (const BackboneBerSpikeFault &spike :
         faultPlan.backboneBerSpikes) {
        if (covers(spike.from, spike.to, t) &&
            spike.from.count() >= latest_start) {
            latest_start = spike.from.count();
            override_ber = spike.ber;
        }
    }
    return override_ber;
}

double
FaultInjector::throttleAt(std::uint32_t node, units::Micros t) const
{
    double factor = 1.0;
    for (const ThermalThrottleFault &throttle : faultPlan.throttles)
        if (throttle.node == node &&
            covers(throttle.from, throttle.to, t))
            factor *= throttle.slowdown;
    return factor;
}

bool
FaultInjector::nvmWriteFails(std::uint32_t node)
{
    for (const NvmFailureFault &failure : faultPlan.nvmFailures) {
        if (failure.node != node || failure.probability <= 0.0)
            continue;
        Rng &stream =
            nodeRngs.empty() ? rng : nodeRngs[node];
        if (stream.chance(failure.probability)) {
            if (nodeRngs.empty())
                ++nvmFailures;
            else
                ++nodeFailures[node];
            return true;
        }
        return false;
    }
    return false;
}

} // namespace scalo::sim
