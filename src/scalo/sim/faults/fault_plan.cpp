#include "scalo/sim/faults/fault_plan.hpp"

#include "scalo/util/contracts.hpp"

namespace scalo::sim {

void
FaultPlan::validate(std::size_t nodes, std::size_t clusters) const
{
    for (const NodeCrashFault &crash : crashes) {
        SCALO_EXPECTS(crash.node < nodes);
        SCALO_EXPECTS(crash.at.count() >= 0.0);
        if (crash.reboots())
            SCALO_EXPECTS(crash.rebootAt > crash.at);
    }
    for (const RadioDropoutFault &dropout : dropouts) {
        SCALO_EXPECTS(dropout.from.count() >= 0.0);
        SCALO_EXPECTS(dropout.to > dropout.from);
    }
    for (const BerSpikeFault &spike : berSpikes) {
        SCALO_EXPECTS(spike.from.count() >= 0.0);
        SCALO_EXPECTS(spike.to > spike.from);
        SCALO_EXPECTS(spike.ber >= 0.0 && spike.ber <= 1.0);
    }
    for (const NvmFailureFault &failure : nvmFailures) {
        SCALO_EXPECTS(failure.node < nodes);
        SCALO_EXPECTS(failure.probability >= 0.0 &&
                      failure.probability <= 1.0);
    }
    for (const ThermalThrottleFault &throttle : throttles) {
        SCALO_EXPECTS(throttle.node < nodes);
        SCALO_EXPECTS(throttle.from.count() >= 0.0);
        SCALO_EXPECTS(throttle.to > throttle.from);
        SCALO_EXPECTS(throttle.slowdown >= 1.0);
    }
    for (const RelayCrashFault &crash : relayCrashes) {
        if (clusters > 0)
            SCALO_EXPECTS(crash.cluster < clusters);
        SCALO_EXPECTS(crash.at.count() >= 0.0);
        if (crash.reboots())
            SCALO_EXPECTS(crash.rebootAt > crash.at);
    }
    for (const ClusterPartitionFault &partition : partitions) {
        if (clusters > 0)
            SCALO_EXPECTS(partition.cluster < clusters);
        SCALO_EXPECTS(partition.from.count() >= 0.0);
        SCALO_EXPECTS(partition.to > partition.from);
    }
    for (const BackboneBerSpikeFault &spike : backboneBerSpikes) {
        SCALO_EXPECTS(spike.from.count() >= 0.0);
        SCALO_EXPECTS(spike.to > spike.from);
        SCALO_EXPECTS(spike.ber >= 0.0 && spike.ber <= 1.0);
    }
}

} // namespace scalo::sim
