/**
 * @file
 * Declarative fault plans for the simulation runtime: a `FaultPlan`
 * lists the failures one run injects — node crashes (with optional
 * reboot), radio dropout windows, BER spikes, NVM write-failure
 * probability, and thermal-throttle intervals — on the same
 * deterministic clock as `sim::Simulator`. The plan is pure data:
 * `sim::FaultInjector` interprets it at run time, and `sim::SystemSim`
 * consults the injector each event round, so the same plan + seed
 * reproduces the same failure timeline byte for byte.
 *
 * An empty plan is the contract for the happy path: with no faults
 * the runtime's behaviour (and its trace) is identical to the
 * pre-fault-framework execution.
 */

#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "scalo/units/units.hpp"

namespace scalo::sim {

/** One node crashes at @ref at; optionally reboots later. */
struct NodeCrashFault
{
    std::uint32_t node = 0;
    /** Crash instant on the simulation clock. */
    units::Millis at{0.0};
    /** Reboot instant; negative means the node stays down. */
    units::Millis rebootAt{-1.0};

    bool reboots() const { return rebootAt.count() >= 0.0; }
};

/** The shared medium is gone for [from, to): every packet is lost. */
struct RadioDropoutFault
{
    units::Millis from{0.0};
    units::Millis to{0.0};
};

/** The channel BER is raised to @ref ber over [from, to). */
struct BerSpikeFault
{
    units::Millis from{0.0};
    units::Millis to{0.0};
    double ber = 0.0;
};

/** Each NVM append on @ref node fails with @ref probability. */
struct NvmFailureFault
{
    std::uint32_t node = 0;
    double probability = 0.0;
};

/**
 * Thermal throttling on @ref node over [from, to): every PE stage's
 * service time is multiplied by @ref slowdown (the clock is dropped
 * to shed heat, Section 5's safety mechanism).
 */
struct ThermalThrottleFault
{
    std::uint32_t node = 0;
    units::Millis from{0.0};
    units::Millis to{0.0};
    double slowdown = 2.0;
};

/**
 * The current relay of @ref cluster crashes at @ref at (whoever holds
 * the duty then — the fault targets the *role*, not a node id, so it
 * composes with earlier crashes that already migrated the duty);
 * optionally reboots later. In a flat (single-cluster) deployment this
 * degenerates to crashing the first alive node.
 */
struct RelayCrashFault
{
    std::uint32_t cluster = 0;
    /** Crash instant on the simulation clock. */
    units::Millis at{0.0};
    /** Reboot instant; negative means the relay stays down. */
    units::Millis rebootAt{-1.0};

    bool reboots() const { return rebootAt.count() >= 0.0; }
};

/**
 * Cluster @ref cluster's backbone link is severed for [from, to):
 * intra-cluster TDMA keeps running, but every relay forward to or
 * from the cluster is lost until the window closes. The backbone
 * failure detector notices at backbone-round granularity and the
 * query layer degrades to cluster-granular partial coverage.
 */
struct ClusterPartitionFault
{
    std::uint32_t cluster = 0;
    units::Millis from{0.0};
    units::Millis to{0.0};
};

/**
 * The *backbone* channel BER is raised to @ref ber over [from, to)
 * while intra-cluster channels keep their baseline (inter-implant
 * hops cross more tissue/air than intra-cluster ones, so their error
 * windows are independent).
 */
struct BackboneBerSpikeFault
{
    units::Millis from{0.0};
    units::Millis to{0.0};
    double ber = 0.0;
};

/** Everything one run injects. Empty by default (the happy path). */
struct FaultPlan
{
    std::vector<NodeCrashFault> crashes;
    std::vector<RadioDropoutFault> dropouts;
    std::vector<BerSpikeFault> berSpikes;
    std::vector<NvmFailureFault> nvmFailures;
    std::vector<ThermalThrottleFault> throttles;
    std::vector<RelayCrashFault> relayCrashes;
    std::vector<ClusterPartitionFault> partitions;
    std::vector<BackboneBerSpikeFault> backboneBerSpikes;

    bool
    empty() const
    {
        return crashes.empty() && dropouts.empty() &&
               berSpikes.empty() && nvmFailures.empty() &&
               throttles.empty() && relayCrashes.empty() &&
               partitions.empty() && backboneBerSpikes.empty();
    }

    /** Total fault entries across all categories. */
    std::size_t
    size() const
    {
        return crashes.size() + dropouts.size() + berSpikes.size() +
               nvmFailures.size() + throttles.size() +
               relayCrashes.size() + partitions.size() +
               backboneBerSpikes.size();
    }

    /**
     * Contract-check the plan against a system of @p nodes nodes:
     * node indices in range, intervals well-formed, probabilities in
     * [0, 1], slowdowns >= 1. When @p clusters is non-zero the
     * cluster-level faults' cluster indices are checked against it
     * too (callers that know their ClusterPlan pass its count).
     * Violations trip SCALO_EXPECTS.
     */
    void validate(std::size_t nodes, std::size_t clusters = 0) const;
};

} // namespace scalo::sim
