#include "scalo/core/system.hpp"

#include <sstream>

#include "scalo/util/logging.hpp"

namespace scalo::core {

ScaloSystem::ScaloSystem(const ScaloConfig &config) : cfg(config)
{
    SCALO_ASSERT(cfg.nodes >= 1, "need at least one node");
    if (cfg.powerCapMw > constants::kPowerCapMw)
        SCALO_FATAL("per-implant power above the 15 mW safety cap");
}

bool
ScaloSystem::thermallySafe() const
{
    return thermal.safe(cfg.nodes, cfg.spacingMm, cfg.powerCapMw);
}

std::size_t
ScaloSystem::maxPlaceableImplants() const
{
    return hw::ThermalModel::maxImplants(cfg.spacingMm);
}

sched::Schedule
ScaloSystem::deploy(const std::vector<sched::FlowSpec> &flows,
                    const std::vector<double> &priorities) const
{
    sched::SystemConfig sys;
    sys.nodes = cfg.nodes;
    sys.powerCapMw = cfg.powerCapMw;
    sys.radio = &net::radioSpec(cfg.radio);
    sys.maxElectrodesPerNode = constants::kElectrodesPerNode;
    const sched::Scheduler scheduler(sys);
    return scheduler.schedule(flows, priorities);
}

double
ScaloSystem::maxThroughputMbps(const sched::FlowSpec &flow) const
{
    sched::SystemConfig sys;
    sys.nodes = cfg.nodes;
    sys.powerCapMw = cfg.powerCapMw;
    sys.radio = &net::radioSpec(cfg.radio);
    const sched::Scheduler scheduler(sys);
    return scheduler.maxAggregateThroughputMbps(flow);
}

query::CompiledPipeline
ScaloSystem::program(const std::string &source) const
{
    query::CompiledPipeline pipeline = query::compileSource(source);
    // Fabric validation: every stage's PEs must exist on a node.
    hw::Pipeline hw_pipeline("program", {});
    for (hw::PeKind kind : pipeline.peChain())
        hw_pipeline.addStage({kind, constants::kElectrodesPerNode, 1});
    const std::string error = nodeFabric.validate({hw_pipeline});
    if (!error.empty())
        SCALO_FATAL("program does not fit the fabric: ", error);
    return pipeline;
}

app::QueryCost
ScaloSystem::interactiveQuery(app::QueryKind kind, double data_mb,
                              double matched_fraction) const
{
    app::QueryConfig query_config;
    query_config.nodes = cfg.nodes;
    query_config.dataMb = data_mb;
    query_config.matchedFraction = matched_fraction;
    return app::estimateQuery(kind, query_config);
}

const net::RadioSpec &
ScaloSystem::radio() const
{
    return net::radioSpec(cfg.radio);
}

std::string
ScaloSystem::describe() const
{
    std::ostringstream oss;
    oss << "SCALO: " << cfg.nodes << " implants @ " << cfg.powerCapMw
        << " mW, radio " << radio().name << " ("
        << radio().dataRateMbps << " Mbps), spacing " << cfg.spacingMm
        << " mm, thermal "
        << (thermallySafe() ? "safe" : "UNSAFE");
    return oss.str();
}

} // namespace scalo::core
