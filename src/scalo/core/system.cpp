#include "scalo/core/system.hpp"

#include <sstream>

#include "scalo/util/logging.hpp"

namespace scalo::core {

ScaloSystem::ScaloSystem(const ScaloConfig &config) : cfg(config)
{
    SCALO_ASSERT(cfg.nodes >= 1, "need at least one node");
    SCALO_ASSERT(cfg.clusters >= 1 && cfg.clusters <= cfg.nodes,
                 "cluster count must be in [1, nodes]");
    if (cfg.powerCap > constants::kPowerCap)
        SCALO_FATAL("per-implant power above the 15 mW safety cap");
}

sched::SystemConfig
ScaloSystem::schedulerConfig() const
{
    sched::SystemConfig sys;
    sys.nodes = cfg.nodes;
    sys.powerCap = cfg.powerCap;
    sys.radio = &net::radioSpec(cfg.radio);
    sys.maxElectrodesPerNode = constants::kElectrodesPerNode;
    if (cfg.clusters > 1)
        sys.clusters =
            net::ClusterPlan::balanced(cfg.nodes, cfg.clusters);
    return sys;
}

bool
ScaloSystem::thermallySafe() const
{
    return thermal.safe(cfg.nodes, cfg.spacing, cfg.powerCap);
}

std::size_t
ScaloSystem::maxPlaceableImplants() const
{
    return hw::ThermalModel::maxImplants(cfg.spacing);
}

sched::Schedule
ScaloSystem::deploy(const std::vector<sched::FlowSpec> &flows,
                    const std::vector<double> &priorities) const
{
    const sched::Scheduler scheduler(schedulerConfig());
    return scheduler.schedule(flows, priorities);
}

units::MegabitsPerSecond
ScaloSystem::maxThroughput(const sched::FlowSpec &flow) const
{
    sched::SystemConfig sys = schedulerConfig();
    sys.maxElectrodesPerNode = 0.0;
    const sched::Scheduler scheduler(sys);
    return scheduler.maxAggregateThroughput(flow);
}

sim::SystemSimResult
ScaloSystem::simulate(const std::vector<sched::FlowSpec> &flows,
                      const sched::Schedule &schedule,
                      const SimulateOptions &options) const
{
    SCALO_ASSERT(schedule.feasible,
                 "cannot simulate an infeasible schedule");
    sim::SystemSimConfig sim_config;
    sim_config.system = schedulerConfig();
    sim_config.flows = flows;
    sim_config.schedule = schedule;
    sim_config.duration = options.duration;
    sim_config.seed = cfg.seed;
    sim_config.recordTrace = !options.tracePath.empty();
    // With the default options (empty plan, equal priorities,
    // default retry) this configuration is exactly the pre-fault
    // happy path, byte for byte.
    sim_config.faults = options.faults;
    sim_config.retry = options.retry;
    sim_config.priorities = options.priorities;
    sim_config.parallel = options.parallel;
    sim_config.threads = options.threads;
    sim::SystemSim system_sim(std::move(sim_config));
    sim::SystemSimResult result = system_sim.run();
    if (!options.tracePath.empty() &&
        !system_sim.trace().writeChromeJson(options.tracePath))
        SCALO_FATAL("cannot write trace to ", options.tracePath);
    return result;
}

app::QueryEngine
ScaloSystem::makeQueryEngine(std::size_t window_samples) const
{
    app::QueryEngine engine(cfg.nodes, window_samples, cfg.seed);
    // Hierarchical deployments serve with cluster-granular coverage:
    // the query path shares the fabric's failure domains, so a
    // backbone partition degrades queries per cluster, not per node.
    if (cfg.clusters > 1)
        engine.setClusterPlan(
            net::ClusterPlan::balanced(cfg.nodes, cfg.clusters));
    return engine;
}

query::CompiledPipeline
ScaloSystem::program(const std::string &source) const
{
    query::CompiledPipeline pipeline = query::compileSource(source);
    // Fabric validation: every stage's PEs must exist on a node.
    hw::Pipeline hw_pipeline("program", {});
    for (hw::PeKind kind : pipeline.peChain())
        hw_pipeline.addStage({kind, constants::kElectrodesPerNode, 1});
    const std::string error = nodeFabric.validate({hw_pipeline});
    if (!error.empty())
        SCALO_FATAL("program does not fit the fabric: ", error);
    return pipeline;
}

app::QueryCost
ScaloSystem::interactiveQuery(app::QueryKind kind,
                              units::Megabytes data,
                              double matched_fraction) const
{
    app::QueryConfig query_config;
    query_config.nodes = cfg.nodes;
    query_config.data = data;
    query_config.matchedFraction = matched_fraction;
    return app::estimateQuery(kind, query_config);
}

const net::RadioSpec &
ScaloSystem::radio() const
{
    return net::radioSpec(cfg.radio);
}

std::string
ScaloSystem::describe() const
{
    std::ostringstream oss;
    oss << "SCALO: " << cfg.nodes << " implants @ "
        << cfg.powerCap.count() << " mW, radio " << radio().name
        << " (" << radio().dataRate.count() << " Mbps), spacing "
        << cfg.spacing.count() << " mm, thermal "
        << (thermallySafe() ? "safe" : "UNSAFE");
    if (cfg.clusters > 1)
        oss << ", " << cfg.clusters << " clusters";
    return oss.str();
}

} // namespace scalo::core
