/**
 * @file
 * The top-level public API: a ScaloSystem is a configured distributed
 * BCI (node count, power limit, radio, placement) onto which
 * applications are deployed via the ILP scheduler and against which
 * interactive queries run. This is the facade the examples and most
 * downstream users program against; the underlying modules remain
 * available for finer control.
 */

#pragma once

#include <array>
#include <string>
#include <vector>

#include "scalo/app/movement.hpp"
#include "scalo/app/query.hpp"
#include "scalo/app/query_engine.hpp"
#include "scalo/app/seizure.hpp"
#include "scalo/app/spikesort.hpp"
#include "scalo/hw/thermal.hpp"
#include "scalo/net/retry.hpp"
#include "scalo/query/language.hpp"
#include "scalo/sched/scheduler.hpp"
#include "scalo/sim/faults/fault_plan.hpp"
#include "scalo/sim/runtime/system_sim.hpp"

namespace scalo::core {

/** System-level configuration of a SCALO deployment. */
struct ScaloConfig
{
    std::size_t nodes = 4;
    units::Milliwatts powerCap = constants::kPowerCap;
    net::RadioDesign radio = net::RadioDesign::LowPower;
    /** Inter-implant spacing on the cortical surface. */
    units::Millimetres spacing = constants::kImplantSpacing;
    std::uint64_t seed = 0x5ca10;
    /**
     * Hierarchical fabric width: the nodes are partitioned into this
     * many balanced TDMA clusters bridged by a relay backbone. 1 (the
     * default) is the flat single-medium fabric, bit-identical to the
     * pre-hierarchy system.
     */
    std::size_t clusters = 1;
};

/**
 * Options for ScaloSystem::simulate. Fault injection is an option,
 * not a separate entry point: populate @ref faults (and, for
 * rescheduling fidelity, @ref priorities) to execute the schedule
 * under failures. The defaults — an empty plan, equal priorities,
 * default retry — reproduce the happy-path execution bit for bit.
 */
struct SimulateOptions
{
    /** Streaming duration the deployment is executed for. */
    units::Millis duration{400.0};
    /** When non-empty, export a Chrome trace-event JSON here. */
    std::string tracePath;
    /**
     * Failures to inject; the runtime detects them over the TDMA
     * heartbeats and degrades onto the survivors. Empty = none.
     */
    sim::FaultPlan faults;
    /**
     * Flow weights for degradation rescheduling (the weights the
     * schedule was deployed with). Empty = equal weights.
     */
    std::vector<double> priorities;
    /** Transmission retry policy under faults. */
    net::RetryPolicy retry;
    /**
     * Advance cluster event queues on worker threads (multi-cluster
     * systems only). The serial engine produces the identical result
     * and trace; parallelism only changes wall-clock time.
     */
    bool parallel = false;
    /** Worker count for parallel runs; 0 picks a default width. */
    std::size_t threads = 0;
};

/** A configured SCALO BCI. */
class ScaloSystem
{
  public:
    explicit ScaloSystem(const ScaloConfig &config);

    const ScaloConfig &config() const { return cfg; }

    /**
     * Validate the deployment's thermal safety: node count, spacing,
     * and per-implant power against the 1 C limit (Section 5).
     */
    bool thermallySafe() const;

    /** Maximum implants placeable at the configured spacing. */
    std::size_t maxPlaceableImplants() const;

    /**
     * Deploy application flows with priorities: runs the ILP
     * scheduler and returns the electrode allocation + power/network
     * schedule summary.
     */
    sched::Schedule deploy(const std::vector<sched::FlowSpec> &flows,
                           const std::vector<double> &priorities)
        const;

    /** Max aggregate throughput of one flow on this system. */
    units::MegabitsPerSecond
    maxThroughput(const sched::FlowSpec &flow) const;

    /**
     * Cross-validate a deployment by executing @p schedule (produced
     * by deploy() for the same @p flows) through the node-level
     * discrete-event runtime. The result pairs measured per-node
     * power, response time, and sustainability with the scheduler's
     * analytic predictions. Fault injection rides on the options:
     * when options.faults is non-empty the runtime injects the plan,
     * detects failures over the TDMA heartbeats, retries under
     * options.retry, and reschedules dead nodes' work onto the
     * survivors weighted by options.priorities; an empty plan is the
     * happy path, bit for bit.
     */
    sim::SystemSimResult
    simulate(const std::vector<sched::FlowSpec> &flows,
             const sched::Schedule &schedule,
             const SimulateOptions &options = {}) const;

    /**
     * An interactive QueryEngine sized for this system: one store
     * shard per implant, hashing seeded from the system seed so
     * ingest-side signatures line up across engines. Hierarchical
     * systems (clusters > 1) hand the engine their cluster plan, so
     * executions report cluster-granular Coverage and whole clusters
     * can be marked unreachable during backbone partitions. The
     * serving runtime (serve::QueryServer) wraps one of these.
     */
    app::QueryEngine makeQueryEngine(std::size_t window_samples)
        const;

    /**
     * Compile a TrillDSP-style program and validate it against the
     * node fabric. @return the compiled pipeline
     */
    query::CompiledPipeline program(const std::string &source) const;

    /** Estimate an interactive query's cost on this system. */
    app::QueryCost interactiveQuery(app::QueryKind kind,
                                    units::Megabytes data,
                                    double matched_fraction) const;

    /** The per-node fabric (PE inventory). */
    const hw::NodeFabric &fabric() const { return nodeFabric; }

    /** The intra-SCALO radio in use. */
    const net::RadioSpec &radio() const;

    /** One-line human-readable summary. */
    std::string describe() const;

  private:
    /** The scheduler-facing view of this system (cluster plan etc). */
    sched::SystemConfig schedulerConfig() const;

    ScaloConfig cfg;
    hw::NodeFabric nodeFabric;
    hw::ThermalModel thermal;
};

} // namespace scalo::core
