/**
 * @file
 * The top-level public API: a ScaloSystem is a configured distributed
 * BCI (node count, power limit, radio, placement) onto which
 * applications are deployed via the ILP scheduler and against which
 * interactive queries run. This is the facade the examples and most
 * downstream users program against; the underlying modules remain
 * available for finer control.
 */

#pragma once

#include <array>
#include <string>
#include <vector>

#include "scalo/app/movement.hpp"
#include "scalo/app/query.hpp"
#include "scalo/app/seizure.hpp"
#include "scalo/app/spikesort.hpp"
#include "scalo/hw/thermal.hpp"
#include "scalo/query/language.hpp"
#include "scalo/sched/scheduler.hpp"
#include "scalo/sim/runtime/system_sim.hpp"

namespace scalo::core {

/** System-level configuration of a SCALO deployment. */
struct ScaloConfig
{
    std::size_t nodes = 4;
    units::Milliwatts powerCap = constants::kPowerCap;
    net::RadioDesign radio = net::RadioDesign::LowPower;
    /** Inter-implant spacing on the cortical surface. */
    units::Millimetres spacing = constants::kImplantSpacing;
    std::uint64_t seed = 0x5ca10;
};

/** Options for ScaloSystem::simulate. */
struct SimulateOptions
{
    /** Streaming duration the deployment is executed for. */
    units::Millis duration{400.0};
    /** When non-empty, export a Chrome trace-event JSON here. */
    std::string tracePath;
};

/** A configured SCALO BCI. */
class ScaloSystem
{
  public:
    explicit ScaloSystem(const ScaloConfig &config);

    const ScaloConfig &config() const { return cfg; }

    /**
     * Validate the deployment's thermal safety: node count, spacing,
     * and per-implant power against the 1 C limit (Section 5).
     */
    bool thermallySafe() const;

    /** Maximum implants placeable at the configured spacing. */
    std::size_t maxPlaceableImplants() const;

    /**
     * Deploy application flows with priorities: runs the ILP
     * scheduler and returns the electrode allocation + power/network
     * schedule summary.
     */
    sched::Schedule deploy(const std::vector<sched::FlowSpec> &flows,
                           const std::vector<double> &priorities)
        const;

    /** Max aggregate throughput of one flow on this system. */
    units::MegabitsPerSecond
    maxThroughput(const sched::FlowSpec &flow) const;

    /**
     * Cross-validate a deployment by executing @p schedule (produced
     * by deploy() for the same @p flows) through the node-level
     * discrete-event runtime. The result pairs measured per-node
     * power, response time, and sustainability with the scheduler's
     * analytic predictions.
     */
    sim::SystemSimResult
    simulate(const std::vector<sched::FlowSpec> &flows,
             const sched::Schedule &schedule,
             const SimulateOptions &options = {}) const;

    /**
     * simulate() with fault injection: execute @p schedule while the
     * runtime injects @p faults, detects failures over the TDMA
     * heartbeats, retries transmissions under @p retry, and
     * reschedules dead nodes' work onto the survivors using
     * @p priorities (the weights @p schedule was deployed with).
     * With an empty plan this is exactly simulate().
     */
    sim::SystemSimResult
    simulateWithFaults(const std::vector<sched::FlowSpec> &flows,
                       const std::vector<double> &priorities,
                       const sched::Schedule &schedule,
                       const sim::FaultPlan &faults,
                       const SimulateOptions &options = {},
                       const net::RetryPolicy &retry = {}) const;

    /**
     * Compile a TrillDSP-style program and validate it against the
     * node fabric. @return the compiled pipeline
     */
    query::CompiledPipeline program(const std::string &source) const;

    /** Estimate an interactive query's cost on this system. */
    app::QueryCost interactiveQuery(app::QueryKind kind,
                                    units::Megabytes data,
                                    double matched_fraction) const;

    /** The per-node fabric (PE inventory). */
    const hw::NodeFabric &fabric() const { return nodeFabric; }

    /** The intra-SCALO radio in use. */
    const net::RadioSpec &radio() const;

    /** One-line human-readable summary. */
    std::string describe() const;

  private:
    ScaloConfig cfg;
    hw::NodeFabric nodeFabric;
    hw::ThermalModel thermal;
};

} // namespace scalo::core
