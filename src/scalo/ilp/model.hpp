/**
 * @file
 * Linear/integer-programming model builder. SCALO's scheduler
 * formulates task mapping as an ILP (Section 3.5); the paper's
 * artifact solves it with GLPK, which this repository replaces with
 * its own exact solver (see solver.hpp).
 */

#pragma once

#include <limits>
#include <string>
#include <vector>

namespace scalo::ilp {

/** Positive infinity for unbounded variable limits. */
inline constexpr double kInf = std::numeric_limits<double>::infinity();

/** One term of a linear expression: coefficient * variable. */
struct Term
{
    int variable;
    double coefficient;
};

/** A linear expression as a list of terms (duplicates are summed). */
using Expr = std::vector<Term>;

/** Constraint sense. */
enum class Relation
{
    LessEq,
    GreaterEq,
    Equal,
};

/** One linear constraint: expr (rel) rhs. */
struct Constraint
{
    Expr expr;
    Relation relation;
    double rhs;
    std::string name;
};

/** A declared decision variable. */
struct Variable
{
    std::string name;
    double lower = 0.0;
    double upper = kInf;
    bool integer = false;
};

/** An LP/ILP in natural (bounded-variable) form. */
class Model
{
  public:
    /** Declare a variable; @return its index. */
    int addVariable(std::string name, double lower = 0.0,
                    double upper = kInf, bool integer = false);

    /** Add a constraint. */
    void addConstraint(Expr expr, Relation relation, double rhs,
                       std::string name = {});

    /** Set the objective; @p maximize selects the sense. */
    void setObjective(Expr expr, bool maximize = true);

    const std::vector<Variable> &variables() const { return vars; }
    const std::vector<Constraint> &constraints() const { return cons; }
    const Expr &objective() const { return objectiveExpr; }
    bool maximizing() const { return maximize; }

    /** Evaluate an expression at a point. */
    static double evaluate(const Expr &expr,
                           const std::vector<double> &point);

    /** Whether @p point satisfies every constraint and bound. */
    bool feasible(const std::vector<double> &point,
                  double tolerance = 1e-6) const;

  private:
    std::vector<Variable> vars;
    std::vector<Constraint> cons;
    Expr objectiveExpr;
    bool maximize = true;
};

} // namespace scalo::ilp
