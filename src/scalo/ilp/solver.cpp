#include "scalo/ilp/solver.hpp"

#include <algorithm>
#include <cmath>

#include "scalo/util/logging.hpp"

namespace scalo::ilp {

namespace {

constexpr double kEps = 1e-9;

/**
 * Internal standard-form problem:
 *   maximize c.x  s.t.  A x = b,  x >= 0,  b >= 0,
 * with a record of how original variables map onto standard ones.
 */
struct StandardForm
{
    std::vector<std::vector<double>> a;
    std::vector<double> b;
    std::vector<double> c;
    double objectiveShift = 0.0;
    bool flipObjective = false;
    /**
     * For each original variable: (positive part index, negative part
     * index or -1, lower-bound shift).
     */
    struct VarMap
    {
        int positive;
        int negative;
        double shift;
    };
    std::vector<VarMap> varMap;
    int columns = 0;
    /** Per row: a column usable as the initial basis (+1 coefficient,
     *  identity in that row), or -1 when an artificial is needed. */
    std::vector<int> basicHint;
};

/**
 * Convert a bounded-variable model (with per-node bound overrides for
 * branch and bound) into standard form.
 */
StandardForm
standardize(const Model &model, const std::vector<double> &lowers,
            const std::vector<double> &uppers)
{
    StandardForm sf;
    const auto &vars = model.variables();

    // Map variables: shift finite lower bounds to zero; split free
    // variables into positive/negative parts.
    for (std::size_t i = 0; i < vars.size(); ++i) {
        StandardForm::VarMap vm{};
        if (std::isfinite(lowers[i])) {
            vm.positive = sf.columns++;
            vm.negative = -1;
            vm.shift = lowers[i];
        } else {
            vm.positive = sf.columns++;
            vm.negative = sf.columns++;
            vm.shift = 0.0;
        }
        sf.varMap.push_back(vm);
    }

    // Gather rows: model constraints plus finite upper bounds.
    struct Row
    {
        Expr expr;
        Relation rel;
        double rhs;
    };
    std::vector<Row> rows;
    for (const Constraint &con : model.constraints())
        rows.push_back({con.expr, con.relation, con.rhs});
    for (std::size_t i = 0; i < vars.size(); ++i) {
        if (std::isfinite(uppers[i])) {
            rows.push_back({Expr{{static_cast<int>(i), 1.0}},
                            Relation::LessEq, uppers[i]});
        }
    }

    // Build dense rows over the standard variables, substituting
    // x = shift + x_pos - x_neg, then append slack columns.
    const int slack_count = static_cast<int>(std::count_if(
        rows.begin(), rows.end(), [](const Row &row) {
            return row.rel != Relation::Equal;
        }));
    const int total_cols = sf.columns + slack_count;

    sf.a.assign(rows.size(), std::vector<double>(total_cols, 0.0));
    sf.b.assign(rows.size(), 0.0);

    int next_slack = sf.columns;
    sf.basicHint.assign(rows.size(), -1);
    for (std::size_t r = 0; r < rows.size(); ++r) {
        double rhs = rows[r].rhs;
        for (const Term &term : rows[r].expr) {
            const auto &vm = sf.varMap[term.variable];
            sf.a[r][vm.positive] += term.coefficient;
            if (vm.negative >= 0)
                sf.a[r][vm.negative] -= term.coefficient;
            rhs -= term.coefficient * vm.shift;
        }
        int slack_col = -1;
        double slack_sign = 0.0;
        if (rows[r].rel == Relation::LessEq) {
            slack_col = next_slack++;
            slack_sign = 1.0;
        } else if (rows[r].rel == Relation::GreaterEq) {
            slack_col = next_slack++;
            slack_sign = -1.0;
        }
        if (slack_col >= 0)
            sf.a[r][slack_col] = slack_sign;
        sf.b[r] = rhs;
        if (sf.b[r] < 0.0) {
            for (double &coef : sf.a[r])
                coef = -coef;
            sf.b[r] = -sf.b[r];
            slack_sign = -slack_sign;
        }
        // A +1 slack with a non-negative rhs is an identity column:
        // it can start in the basis, so no artificial is needed.
        if (slack_col >= 0 && slack_sign > 0.0)
            sf.basicHint[r] = slack_col;
    }
    sf.columns = total_cols;

    // Objective in standard variables (always maximize internally).
    sf.c.assign(total_cols, 0.0);
    sf.flipObjective = !model.maximizing();
    const double sense = sf.flipObjective ? -1.0 : 1.0;
    for (const Term &term : model.objective()) {
        const auto &vm = sf.varMap[term.variable];
        sf.c[vm.positive] += sense * term.coefficient;
        if (vm.negative >= 0)
            sf.c[vm.negative] -= sense * term.coefficient;
        sf.objectiveShift += sense * term.coefficient * vm.shift;
    }
    return sf;
}

/** Dense simplex tableau with Bland's rule. */
class Tableau
{
  public:
    Tableau(const std::vector<std::vector<double>> &a,
            const std::vector<double> &b, int columns,
            const std::vector<int> &basic_hints)
        : rows(a.size()), cols(columns)
    {
        // Layout: [A | artificials | b]. Rows whose hint column is an
        // identity column start with it in the basis; only the
        // remaining rows (equalities and negated inequalities) need
        // artificial columns for phase 1.
        artificials = 0;
        for (std::size_t r = 0; r < rows; ++r)
            if (basic_hints[r] < 0)
                ++artificials;

        table.assign(rows, std::vector<double>(
                               cols + artificials + 1, 0.0));
        basis.assign(rows, 0);
        int next_artificial = cols;
        for (std::size_t r = 0; r < rows; ++r) {
            for (int c = 0; c < cols; ++c)
                table[r][c] = a[r][c];
            table[r].back() = b[r];
            if (basic_hints[r] >= 0) {
                basis[r] = basic_hints[r];
            } else {
                table[r][next_artificial] = 1.0;
                basis[r] = next_artificial++;
            }
        }
    }

    /** Phase 1: drive artificials to zero. @return feasible? */
    bool
    phaseOne()
    {
        if (artificials == 0)
            return true;
        // Minimize the sum of artificials == maximize -(sum).
        std::vector<double> objective(totalCols(), 0.0);
        for (int c = cols; c < totalCols(); ++c)
            objective[static_cast<std::size_t>(c)] = -1.0;
        const double value = optimize(objective,
                                      /*restrict_cols=*/-1);
        if (value < -1e-7 * (1.0 + static_cast<double>(rows)))
            return false;
        pivotOutArtificials();
        return true;
    }

    /**
     * Phase 2 on the original columns. @return true, or false when
     * unbounded.
     */
    bool
    phaseTwo(const std::vector<double> &c, double &objective_value)
    {
        std::vector<double> objective(totalCols(), 0.0);
        for (int j = 0; j < cols; ++j)
            objective[static_cast<std::size_t>(j)] = c[j];
        unboundedFlag = false;
        objective_value = optimize(objective, cols);
        return !unboundedFlag;
    }

    /** Extract the current basic solution over the first n columns. */
    std::vector<double>
    solution(int n) const
    {
        std::vector<double> x(n, 0.0);
        for (std::size_t r = 0; r < rows; ++r)
            if (basis[r] < n)
                x[basis[r]] = table[r].back();
        return x;
    }

  private:
    /**
     * Primal simplex with the given objective; columns >= restrict_cols
     * are barred from entering (used to lock artificials out in phase
     * 2; pass -1 for no restriction). @return objective value
     */
    double
    optimize(const std::vector<double> &c, int restrict_cols)
    {
        const int limit =
            restrict_cols < 0 ? totalCols() : restrict_cols;
        // Reduced costs require the objective expressed over the
        // current basis: price out basic columns first.
        std::vector<double> z = c;
        double value = 0.0;
        for (std::size_t r = 0; r < rows; ++r) {
            const double coef = z[basis[r]];
            if (coef == 0.0)
                continue;
            value += coef * table[r].back();
            for (int j = 0; j < totalCols(); ++j)
                z[static_cast<std::size_t>(j)] -= coef * table[r][j];
        }

        for (int iter = 0; iter < 100'000; ++iter) {
            // Bland: smallest-index entering column.
            int enter = -1;
            for (int j = 0; j < limit; ++j) {
                if (z[j] > kEps) {
                    enter = j;
                    break;
                }
            }
            if (enter < 0)
                return value;

            // Ratio test with Bland tie-break on basis index.
            int leave = -1;
            double best_ratio = 0.0;
            for (std::size_t r = 0; r < rows; ++r) {
                if (table[r][enter] > kEps) {
                    const double ratio =
                        table[r].back() / table[r][enter];
                    if (leave < 0 || ratio < best_ratio - kEps ||
                        (ratio < best_ratio + kEps &&
                         basis[r] < basis[static_cast<std::size_t>(
                             leave)])) {
                        leave = static_cast<int>(r);
                        best_ratio = ratio;
                    }
                }
            }
            if (leave < 0) {
                unboundedFlag = true;
                return value;
            }
            pivot(static_cast<std::size_t>(leave), enter);
            // Update reduced costs and value incrementally.
            const double coef = z[enter];
            value += coef * table[static_cast<std::size_t>(leave)]
                                .back();
            for (int j = 0; j < totalCols(); ++j)
                z[static_cast<std::size_t>(j)] -=
                    coef * table[static_cast<std::size_t>(leave)][j];
        }
        SCALO_PANIC("simplex iteration limit reached");
    }

    void
    pivot(std::size_t row, int col)
    {
        const double p = table[row][col];
        SCALO_ASSERT(std::abs(p) > kEps, "pivot on ~zero");
        for (double &v : table[row])
            v /= p;
        for (std::size_t r = 0; r < rows; ++r) {
            if (r == row)
                continue;
            const double factor = table[r][col];
            if (factor == 0.0)
                continue;
            for (std::size_t j = 0; j < table[r].size(); ++j)
                table[r][j] -= factor * table[row][j];
        }
        basis[row] = col;
    }

    /** After phase 1, swap any remaining artificials out of the basis. */
    void
    pivotOutArtificials()
    {
        for (std::size_t r = 0; r < rows; ++r) {
            if (basis[r] < cols)
                continue;
            int col = -1;
            for (int j = 0; j < cols; ++j) {
                if (std::abs(table[r][j]) > kEps) {
                    col = j;
                    break;
                }
            }
            if (col >= 0) {
                pivot(r, col);
            }
            // A fully-zero row is redundant; its artificial stays
            // basic at value zero, which is harmless.
        }
    }

    int totalCols() const { return cols + artificials; }

    std::size_t rows;
    int cols;
    int artificials = 0;
    std::vector<std::vector<double>> table;
    std::vector<int> basis;
    bool unboundedFlag = false;
};

/** Solve the LP with explicit bound vectors (branch-and-bound hook). */
Solution
solveWithBounds(const Model &model, const std::vector<double> &lowers,
                const std::vector<double> &uppers)
{
    for (std::size_t i = 0; i < lowers.size(); ++i) {
        if (lowers[i] > uppers[i] + kEps)
            return {Status::Infeasible, 0.0, {}};
    }

    const StandardForm sf = standardize(model, lowers, uppers);
    Tableau tableau(sf.a, sf.b, sf.columns, sf.basicHint);
    if (!tableau.phaseOne())
        return {Status::Infeasible, 0.0, {}};

    double value = 0.0;
    if (!tableau.phaseTwo(sf.c, value))
        return {Status::Unbounded, 0.0, {}};

    const auto x = tableau.solution(sf.columns);
    Solution solution;
    solution.status = Status::Optimal;
    solution.values.resize(model.variables().size());
    for (std::size_t i = 0; i < solution.values.size(); ++i) {
        const auto &vm = sf.varMap[i];
        double v = vm.shift + x[static_cast<std::size_t>(vm.positive)];
        if (vm.negative >= 0)
            v -= x[static_cast<std::size_t>(vm.negative)];
        solution.values[i] = v;
    }
    const double raw = value + sf.objectiveShift;
    solution.objective = sf.flipObjective ? -raw : raw;
    return solution;
}

} // namespace

Solution
solveLp(const Model &model)
{
    std::vector<double> lowers, uppers;
    for (const Variable &var : model.variables()) {
        lowers.push_back(var.lower);
        uppers.push_back(var.upper);
    }
    return solveWithBounds(model, lowers, uppers);
}

Solution
solveIlp(const Model &model, int max_nodes)
{
    std::vector<double> lowers, uppers;
    for (const Variable &var : model.variables()) {
        lowers.push_back(var.lower);
        uppers.push_back(var.upper);
    }

    Solution incumbent;
    incumbent.status = Status::Infeasible;
    bool have_incumbent = false;
    const double sense = model.maximizing() ? 1.0 : -1.0;
    int nodes = 0;
    bool root_unbounded = false;

    // Depth-first branch and bound with best-bound pruning.
    struct Frame
    {
        std::vector<double> lowers;
        std::vector<double> uppers;
    };
    std::vector<Frame> stack{{lowers, uppers}};

    while (!stack.empty()) {
        SCALO_ASSERT(++nodes <= max_nodes,
                     "branch-and-bound node budget exceeded");
        Frame frame = std::move(stack.back());
        stack.pop_back();

        const Solution relaxed =
            solveWithBounds(model, frame.lowers, frame.uppers);
        if (relaxed.status == Status::Unbounded) {
            root_unbounded = true;
            continue;
        }
        if (relaxed.status != Status::Optimal)
            continue;
        if (have_incumbent &&
            sense * relaxed.objective <=
                sense * incumbent.objective + 1e-9) {
            continue; // bound: cannot beat the incumbent
        }

        // Find the most fractional integer variable.
        int branch_var = -1;
        double worst_frac = 1e-6;
        for (std::size_t i = 0; i < model.variables().size(); ++i) {
            if (!model.variables()[i].integer)
                continue;
            const double v = relaxed.values[i];
            const double frac = std::abs(v - std::round(v));
            if (frac > worst_frac) {
                worst_frac = frac;
                branch_var = static_cast<int>(i);
            }
        }

        if (branch_var < 0) {
            // Integral: candidate incumbent.
            incumbent = relaxed;
            // Snap near-integers exactly.
            for (std::size_t i = 0; i < model.variables().size();
                 ++i) {
                if (model.variables()[i].integer)
                    incumbent.values[i] =
                        std::round(incumbent.values[i]);
            }
            have_incumbent = true;
            continue;
        }

        const double v =
            relaxed.values[static_cast<std::size_t>(branch_var)];
        // Down branch.
        Frame down = frame;
        down.uppers[static_cast<std::size_t>(branch_var)] =
            std::floor(v);
        // Up branch, explored first (DFS stack order).
        Frame up = std::move(frame);
        up.lowers[static_cast<std::size_t>(branch_var)] =
            std::ceil(v);
        stack.push_back(std::move(down));
        stack.push_back(std::move(up));
    }

    if (!have_incumbent && root_unbounded)
        return {Status::Unbounded, 0.0, {}};
    return incumbent;
}

} // namespace scalo::ilp
