/**
 * @file
 * Exact LP/ILP solver: dense two-phase primal simplex with Bland's
 * anti-cycling rule, plus depth-first branch-and-bound for integer
 * variables. The scheduler's instances are small (tens of variables),
 * so a dense exact method is both sufficient and dependable.
 */

#pragma once

#include <vector>

#include "scalo/ilp/model.hpp"

namespace scalo::ilp {

/** Solver outcome. */
enum class Status
{
    Optimal,
    Infeasible,
    Unbounded,
};

/** A solution point with its objective value. */
struct Solution
{
    Status status = Status::Infeasible;
    double objective = 0.0;
    std::vector<double> values;

    bool ok() const { return status == Status::Optimal; }
};

/** Solve the continuous relaxation (integrality ignored). */
Solution solveLp(const Model &model);

/**
 * Solve with integrality enforced via branch and bound.
 *
 * @param model     the ILP
 * @param max_nodes branch-and-bound node budget (panics if exceeded,
 *                  which would indicate a malformed scheduler model)
 */
Solution solveIlp(const Model &model, int max_nodes = 200'000);

} // namespace scalo::ilp
