#include "scalo/ilp/model.hpp"

#include <cmath>

#include "scalo/util/logging.hpp"

namespace scalo::ilp {

int
Model::addVariable(std::string name, double lower, double upper,
                   bool integer)
{
    SCALO_ASSERT(lower <= upper, "variable '", name, "' has lower ",
                 lower, " > upper ", upper);
    vars.push_back({std::move(name), lower, upper, integer});
    return static_cast<int>(vars.size()) - 1;
}

void
Model::addConstraint(Expr expr, Relation relation, double rhs,
                     std::string name)
{
    for (const Term &term : expr) {
        SCALO_ASSERT(term.variable >= 0 &&
                         term.variable <
                             static_cast<int>(vars.size()),
                     "constraint references unknown variable ",
                     term.variable);
    }
    cons.push_back({std::move(expr), relation, rhs, std::move(name)});
}

void
Model::setObjective(Expr expr, bool maximize_objective)
{
    for (const Term &term : expr) {
        SCALO_ASSERT(term.variable >= 0 &&
                         term.variable <
                             static_cast<int>(vars.size()),
                     "objective references unknown variable ",
                     term.variable);
    }
    objectiveExpr = std::move(expr);
    maximize = maximize_objective;
}

double
Model::evaluate(const Expr &expr, const std::vector<double> &point)
{
    double acc = 0.0;
    for (const Term &term : expr)
        acc += term.coefficient *
               point[static_cast<std::size_t>(term.variable)];
    return acc;
}

bool
Model::feasible(const std::vector<double> &point,
                double tolerance) const
{
    if (point.size() != vars.size())
        return false;
    for (std::size_t i = 0; i < vars.size(); ++i) {
        if (point[i] < vars[i].lower - tolerance ||
            point[i] > vars[i].upper + tolerance) {
            return false;
        }
        if (vars[i].integer &&
            std::abs(point[i] - std::round(point[i])) > tolerance) {
            return false;
        }
    }
    for (const Constraint &c : cons) {
        const double lhs = evaluate(c.expr, point);
        switch (c.relation) {
          case Relation::LessEq:
            if (lhs > c.rhs + tolerance)
                return false;
            break;
          case Relation::GreaterEq:
            if (lhs < c.rhs - tolerance)
                return false;
            break;
          case Relation::Equal:
            if (std::abs(lhs - c.rhs) > tolerance)
                return false;
            break;
        }
    }
    return true;
}

} // namespace scalo::ilp
