# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/app_storage_test[1]_include.cmake")
include("/root/repo/build/tests/app_test[1]_include.cmake")
include("/root/repo/build/tests/charging_test[1]_include.cmake")
include("/root/repo/build/tests/codegen_test[1]_include.cmake")
include("/root/repo/build/tests/compress2_test[1]_include.cmake")
include("/root/repo/build/tests/compress_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/data_test[1]_include.cmake")
include("/root/repo/build/tests/hw_test[1]_include.cmake")
include("/root/repo/build/tests/ilp_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/linalg_test[1]_include.cmake")
include("/root/repo/build/tests/lsh_test[1]_include.cmake")
include("/root/repo/build/tests/ml_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/query_concurrency_test[1]_include.cmake")
include("/root/repo/build/tests/query_test[1]_include.cmake")
include("/root/repo/build/tests/sched_test[1]_include.cmake")
include("/root/repo/build/tests/signal_test[1]_include.cmake")
include("/root/repo/build/tests/sim2_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/stimulation_test[1]_include.cmake")
include("/root/repo/build/tests/util_test[1]_include.cmake")
