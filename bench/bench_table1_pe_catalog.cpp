/**
 * @file
 * Table 1 + Table 4: the PE catalog - latency, leakage, dynamic power
 * per electrode, and area of every accelerator in a SCALO node, with
 * derived node-level totals.
 */

#include "bench_util.hpp"
#include "scalo/hw/fabric.hpp"
#include "scalo/hw/pe.hpp"
#include "scalo/util/table.hpp"

int
main()
{
    using namespace scalo;
    bench::banner("Table 1: Latency and Power of the PEs",
                  "31 PEs, 28 nm FD-SOI, worst variation corner");

    TextTable table({"PE", "function", "fmax (MHz)", "leak (uW)",
                     "SRAM (uW)", "dyn/elec (uW)", "latency (ms)",
                     "area (KGE)"});
    for (const auto &pe : hw::peCatalog()) {
        std::string latency = "-";
        if (pe.latencyMs) {
            latency = TextTable::num(*pe.latencyMs, 3);
            if (pe.latencyMaxMs)
                latency += "-" + TextTable::num(*pe.latencyMaxMs, 1);
        }
        table.addRow({std::string(pe.name), std::string(pe.function),
                      TextTable::num(pe.maxFreqMhz, 3),
                      TextTable::num(pe.leakageUw, 2),
                      TextTable::num(pe.sramLeakageUw, 2),
                      TextTable::num(pe.dynPerElectrodeUw, 3), latency,
                      TextTable::num(pe.areaKge, 0)});
    }
    table.print();

    const hw::NodeFabric fabric;
    std::printf("\nnode fabric: %.2f mW idle leakage, %.0f KGE total "
                "area (10x BMUL in the LIN ALG cluster)\n",
                fabric.idlePowerUw() / 1'000.0, fabric.areaKge());
    std::printf("MC: %.0f MHz RISC-V, %.0f KB SRAM\n",
                hw::mcSpec().freqMhz, hw::mcSpec().sramKb);
    return 0;
}
