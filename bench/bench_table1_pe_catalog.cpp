/**
 * @file
 * Table 1 + Table 4: the PE catalog - latency, leakage, dynamic power
 * per electrode, and area of every accelerator in a SCALO node, with
 * derived node-level totals.
 */

#include "bench_util.hpp"
#include "scalo/hw/fabric.hpp"
#include "scalo/hw/pe.hpp"
#include "scalo/util/table.hpp"

int
main()
{
    using namespace scalo;
    bench::banner("Table 1: Latency and Power of the PEs",
                  "31 PEs, 28 nm FD-SOI, worst variation corner");

    TextTable table({"PE", "function", "fmax (MHz)", "leak (uW)",
                     "SRAM (uW)", "dyn/elec (uW)", "latency (ms)",
                     "area (KGE)"});
    for (const auto &pe : hw::peCatalog()) {
        std::string latency = "-";
        if (pe.latency) {
            latency = TextTable::num(pe.latency->count(), 3);
            if (pe.latencyMax)
                latency +=
                    "-" + TextTable::num(pe.latencyMax->count(), 1);
        }
        table.addRow({std::string(pe.name), std::string(pe.function),
                      TextTable::num(pe.maxFreq.count(), 3),
                      TextTable::num(pe.leakage.count(), 2),
                      TextTable::num(pe.sramLeakage.count(), 2),
                      TextTable::num(pe.dynPerElectrode.count(), 3),
                      latency, TextTable::num(pe.areaKge, 0)});
    }
    table.print();

    const hw::NodeFabric fabric;
    std::printf("\nnode fabric: %.2f mW idle leakage, %.0f KGE total "
                "area (10x BMUL in the LIN ALG cluster)\n",
                fabric.idlePower().in<units::Milliwatts>(),
                fabric.areaKge());
    std::printf("MC: %.0f MHz RISC-V, %.0f KB SRAM\n",
                hw::mcSpec().freq.count(), hw::mcSpec().sram.count());
    return 0;
}
