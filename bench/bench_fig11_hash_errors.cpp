/**
 * @file
 * Figure 11: hash-vs-exact comparison errors as a function of the
 * signal pair's distance from the similarity threshold, for the four
 * measures (XCOR, EMD, DTW, Euclidean).
 *
 * Paper shape: total error (area under the curve) below ~8.5%; most
 * errors sit near the threshold where the exact decision is itself
 * low-confidence; errors taper with distance; the hashes are biased
 * toward false positives (left of threshold), which the exact
 * comparison later resolves.
 */

#include <array>

#include <algorithm>

#include "bench_util.hpp"
#include "scalo/util/stats.hpp"
#include "scalo/lsh/hasher.hpp"
#include "scalo/util/table.hpp"

namespace {

using namespace scalo;

struct MeasureResult
{
    std::array<double, 13> binErrorPct{};
    std::array<int, 13> binCount{};
    double totalErrorPct = 0.0;
    double falsePositivePct = 0.0;
    double falseNegativePct = 0.0;
};

/** Bin index for distance-from-threshold percent in [-65, +65). */
int
binOf(double pct)
{
    const int bin = static_cast<int>((pct + 65.0) / 10.0);
    return std::clamp(bin, 0, 12);
}

/**
 * The device's window comparison aggregates the signatures of the
 * K overlapping sketch phases of a window (Section 3.2's overlapping
 * hash stream): two windows compare "similar" when at least m of the
 * K phase signatures match. m < K/2 biases toward false positives.
 */
constexpr int kPhases = 7;
constexpr int kVotes = 4;

/**
 * Draw the perturbation level: cross-site window pairs on real iEEG
 * are bimodal - either seizure-correlated (small distance) or
 * independent background (large distance) - with a thin borderline
 * band.
 */
double
drawAlpha(Rng &rng)
{
    const double u = rng.uniform();
    if (u < 0.45)
        return rng.uniform(0.0, 0.25); // correlated
    if (u < 0.90)
        return rng.uniform(0.72, 0.90); // background
    return rng.uniform(0.25, 0.72);     // borderline
}

MeasureResult
runMeasure(signal::Measure measure)
{
    const std::size_t n = constants::kWindowSamples;
    Rng rng(0x11f1 + static_cast<int>(measure));

    std::vector<lsh::WindowHasher> phases;
    for (int k = 0; k < kPhases; ++k)
        phases.emplace_back(measure, n, 97 + 13 * k);
    auto ensemble_match = [&](const std::vector<double> &a,
                              const std::vector<double> &b) {
        int votes = 0;
        for (const auto &hasher : phases)
            votes += hasher.hash(a).matches(hasher.hash(b));
        return votes >= kVotes;
    };

    // Calibration (Section 6.5: "we configure our hash generation
    // functions for this threshold"): the similarity threshold and
    // the hash scheme's decision boundary must coincide, so place the
    // threshold where the vote's match probability crosses 50%.
    std::vector<std::pair<double, bool>> samples;
    for (int i = 0; i < 1'500; ++i) {
        const auto a = bench::baseWindow(n, rng);
        const auto b = bench::perturb(a, rng.uniform(0.0, 0.9), rng);
        samples.emplace_back(signal::dissimilarity(measure, a, b),
                             ensemble_match(a, b));
    }
    std::sort(samples.begin(), samples.end());
    double threshold = samples.back().first * 0.5;
    {
        // Sliding 201-sample window over the sorted distances; the
        // boundary is where the local match rate crosses 1/2.
        const std::size_t half = 100;
        for (std::size_t i = half; i + half < samples.size(); ++i) {
            int matches = 0;
            for (std::size_t j = i - half; j <= i + half; ++j)
                matches += samples[j].second;
            if (matches <= static_cast<int>(half)) {
                threshold = samples[i].first;
                break;
            }
        }
    }

    MeasureResult result;
    int errors = 0, fps = 0, fns = 0, total = 0;
    std::array<int, 13> bin_errors{};

    for (int i = 0; i < 5'000; ++i) {
        const auto a = bench::baseWindow(n, rng);
        const double alpha = drawAlpha(rng);
        const auto b = bench::perturb(a, alpha, rng);
        const double distance =
            signal::dissimilarity(measure, a, b);
        const double pct =
            (distance - threshold) / threshold * 100.0;
        const bool in_range = pct >= -65.0 && pct < 65.0;

        const bool exact_similar = distance <= threshold;
        const bool hash_similar = ensemble_match(a, b);
        ++total; // totals cover every comparison, plotted or not
        if (in_range)
            ++result.binCount[static_cast<std::size_t>(binOf(pct))];
        if (exact_similar != hash_similar) {
            ++errors;
            if (in_range)
                ++bin_errors[static_cast<std::size_t>(binOf(pct))];
            if (hash_similar)
                ++fps; // hash says similar, exact says not
            else
                ++fns;
        }
    }

    for (std::size_t b = 0; b < 13; ++b) {
        // Errors as a percentage of all compared pairs, so the area
        // under the curve is the total error rate (as in the paper).
        result.binErrorPct[b] =
            100.0 * bin_errors[b] / std::max(1, total);
    }
    result.totalErrorPct = 100.0 * errors / std::max(1, total);
    result.falsePositivePct = 100.0 * fps / std::max(1, total);
    result.falseNegativePct = 100.0 * fns / std::max(1, total);
    return result;
}

} // namespace

int
main()
{
    bench::banner(
        "Figure 11: Hash comparison errors vs distance from "
        "threshold",
        "total errors < 8.5% of comparisons, peaked near the "
        "threshold, biased to false positives");

    const std::vector<signal::Measure> measures{
        signal::Measure::Xcor, signal::Measure::Emd,
        signal::Measure::Dtw, signal::Measure::Euclidean};

    std::vector<std::string> headers{"distance bin"};
    std::vector<MeasureResult> results;
    for (auto m : measures) {
        headers.emplace_back(signal::measureName(m));
        results.push_back(runMeasure(m));
    }

    TextTable table(std::move(headers));
    for (std::size_t b = 0; b < 13; ++b) {
        const double lo = -65.0 + 10.0 * static_cast<double>(b);
        std::vector<std::string> row{
            TextTable::num(lo, 0) + "% .. " +
            TextTable::num(lo + 10.0, 0) + "%"};
        for (const auto &result : results)
            row.push_back(TextTable::num(result.binErrorPct[b], 2));
        table.addRow(std::move(row));
    }
    table.print();

    std::printf("\ntotals (%% of compared pairs):\n");
    for (std::size_t m = 0; m < measures.size(); ++m) {
        std::printf("  %-9s total %.2f%% (FP %.2f%%, FN %.2f%%)\n",
                    signal::measureName(measures[m]),
                    results[m].totalErrorPct,
                    results[m].falsePositivePct,
                    results[m].falseNegativePct);
    }
    return 0;
}
