/**
 * @file
 * Ablation: implant placement and thermal coupling (Sections 2.3 and
 * 5). Sweeps the inter-implant spacing to show where coupling stops
 * being negligible and how many implants the cortical surface admits.
 */

#include "bench_util.hpp"
#include "scalo/hw/thermal.hpp"
#include "scalo/util/table.hpp"

int
main()
{
    using namespace scalo;
    using namespace scalo::hw;
    using namespace scalo::units::literals;

    bench::banner(
        "Ablation: implant spacing vs thermal coupling",
        "~5% residual heat at 10 mm, ~2% at 20 mm; 60 implants at "
        "the default 20 mm spacing");

    const ThermalModel model;
    TextTable table({"spacing (mm)", "falloff at spacing",
                     "6-neighbour rise (C, 15 mW)", "max implants",
                     "11 implants safe?"});
    for (double mm : {5.0, 10.0, 15.0, 20.0, 25.0, 30.0}) {
        const units::Millimetres spacing{mm};
        table.addRow(
            {TextTable::num(mm, 0),
             TextTable::num(model.falloffFraction(spacing), 3),
             TextTable::num(model
                                    .worstCaseRise(
                                        spacing, 15.0_mW)
                                    .count() -
                                1.0,
                            3),
             std::to_string(ThermalModel::maxImplants(spacing)),
             model.safe(11, spacing, 15.0_mW) ? "yes" : "NO"});
    }
    table.print();

    std::printf("\nde-rated power keeps tighter spacings usable:\n");
    for (double mw : {15.0, 9.0, 6.0}) {
        units::Millimetres spacing{5.0};
        while (spacing < 40.0_mm &&
               !model.safe(11, spacing, units::Milliwatts{mw}))
            spacing = spacing + 1.0_mm;
        std::printf("  %4.0f mW per implant -> minimum safe spacing "
                    "~%.0f mm\n",
                    mw, spacing.count());
    }
    return 0;
}
