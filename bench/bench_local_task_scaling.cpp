/**
 * @file
 * Section 6.2 (text): power scaling of the fully-local tasks on one
 * node.
 *
 * Paper: seizure detection 79 Mbps at 15 mW falling *quadratically*
 * to 46 Mbps at 6 mW (the XCOR feature works across electrode pairs);
 * spike sorting 118 Mbps at 15 mW falling *linearly* to 38.4 Mbps at
 * 6 mW (per-spike NVM template fetches dominate).
 */

#include <array>

#include "bench_util.hpp"
#include "scalo/sched/scheduler.hpp"
#include "scalo/util/table.hpp"

int
main()
{
    using namespace scalo;
    using namespace scalo::sched;

    bench::banner(
        "Section 6.2: Local task throughput vs power (one node)",
        "seizure detection 79->46 Mbps (quadratic), spike sorting "
        "118->38.4 Mbps (linear) from 15->6 mW");

    TextTable table({"power (mW)", "seizure detect (Mbps)",
                     "paper", "spike sorting (Mbps)", "paper"});
    const std::vector<std::array<double, 3>> anchors{
        {15.0, 79.0, 118.0},
        {12.0, -1.0, -1.0},
        {9.0, -1.0, -1.0},
        {6.0, 46.0, 38.4},
    };
    const FlowSpec detect = seizureDetectionFlow();
    const FlowSpec spikes = spikeSortingFlow();
    for (const auto &[power, paper_detect, paper_spike] : anchors) {
        SystemConfig config;
        config.nodes = 1;
        config.powerCap = units::Milliwatts{power};
        const Scheduler scheduler(config);
        auto ref = [](double v) {
            return v < 0 ? std::string("-") : TextTable::num(v, 1);
        };
        table.addRow(
            {TextTable::num(power, 0),
             TextTable::num(
                 scheduler.maxAggregateThroughput(detect).count(), 1),
             ref(paper_detect),
             TextTable::num(
                 scheduler.maxAggregateThroughput(spikes).count(), 1),
             ref(paper_spike)});
    }
    table.print();

    // The shape claim: quadratic vs linear fall-off.
    auto at = [&](const FlowSpec &flow, double power) {
        SystemConfig config;
        config.nodes = 1;
        config.powerCap = units::Milliwatts{power};
        return Scheduler(config).maxAggregateThroughput(flow).count();
    };
    const double detect_ratio = at(detect, 6.0) / at(detect, 15.0);
    const double spike_ratio = at(spikes, 6.0) / at(spikes, 15.0);
    std::printf("\n6/15 mW throughput ratio: seizure %.2f (> power "
                "ratio 0.40 => sub-linear/quadratic power), spike "
                "%.2f (~linear)\n",
                detect_ratio, spike_ratio);
    return 0;
}
