/**
 * @file
 * Figure 13 / Section 7: design-space exploration over the Table 3
 * radios - Hash All-All and DTW One-All throughput on each design,
 * normalised to the default (Low Power).
 *
 * Paper shape: High Perf ~2x throughput for both applications but 4x
 * the radio power (~half the 15 mW budget); Low BER matches the
 * default's performance at 2x the power (not worth it at BER 1e-5);
 * Low Data Rate halves performance.
 */

#include "bench_util.hpp"
#include "scalo/sched/scheduler.hpp"
#include "scalo/util/table.hpp"

int
main()
{
    using namespace scalo;
    using namespace scalo::sched;

    bench::banner(
        "Figure 13: Application throughput by radio design "
        "(normalised to Low Power)",
        "High Perf ~2x at 4x power; Low BER ~1x at 2x power; Low "
        "Data Rate ~0.5x");

    // Evaluate at a communication-bound operating point (the paper's
    // applications are "communication sensitive" in this experiment).
    const std::size_t nodes = 16;
    auto throughput = [&](net::RadioDesign design,
                          const FlowSpec &flow) {
        SystemConfig config;
        config.nodes = nodes;
        config.radio = &net::radioSpec(design);
        return Scheduler(config).maxAggregateThroughput(flow).count();
    };

    const FlowSpec hash_flow =
        hashSimilarityFlow(net::Pattern::AllToAll);
    const FlowSpec dtw_flow = dtwSimilarityFlow(net::Pattern::OneToAll);

    const double hash_base =
        throughput(net::RadioDesign::LowPower, hash_flow);
    const double dtw_base =
        throughput(net::RadioDesign::LowPower, dtw_flow);

    TextTable table({"radio", "power (mW)", "Hash All-All (norm)",
                     "DTW One-All (norm)"});
    for (auto design :
         {net::RadioDesign::HighPerf, net::RadioDesign::LowDataRate,
          net::RadioDesign::LowBer, net::RadioDesign::LowPower}) {
        const auto &spec = net::radioSpec(design);
        table.addRow(
            {std::string(spec.name), TextTable::num(spec.power.count(), 2),
             TextTable::num(throughput(design, hash_flow) / hash_base,
                            2),
             TextTable::num(throughput(design, dtw_flow) / dtw_base,
                            2)});
    }
    table.print();

    std::printf("\nnote: normalised to the Low Power default at %zu "
                "nodes; absolute base = %.1f / %.1f Mbps\n",
                nodes, hash_base, dtw_base);
    return 0;
}
