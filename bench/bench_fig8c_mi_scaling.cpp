/**
 * @file
 * Figure 8c: maximum aggregate throughput of the movement-intent
 * applications across node counts and power limits.
 *
 * Paper shape: MI SVM highest (4 B partials per node) and linear in
 * nodes; MI NN the same trend below it (1024 B partials); MI KF
 * linear only to 4 nodes, then pinned at 384 electrodes (~188 Mbps)
 * by the aggregator's NVM bandwidth; KF power knee at 8.5 mW.
 */

#include "bench_util.hpp"
#include "scalo/sched/scheduler.hpp"
#include "scalo/util/table.hpp"

int
main()
{
    using namespace scalo;
    using namespace scalo::sched;

    bench::banner(
        "Figure 8c: Movement-intent throughput scaling (Mbps)",
        "MI SVM > MI NN, both linear in nodes; MI KF flat at ~188 "
        "Mbps beyond 4 nodes (NVM-bound), knee at 8.5 mW");

    const std::vector<std::size_t> node_counts{1, 2, 4, 8, 16, 32,
                                               64};
    const std::vector<double> power_limits{6.0, 9.0, 12.0, 15.0};

    for (double power : power_limits) {
        std::printf("--- per-node power %.0f mW ---\n", power);
        TextTable table({"nodes", "MI SVM", "MI NN", "MI KF"});
        for (std::size_t nodes : node_counts) {
            SystemConfig config;
            config.nodes = nodes;
            config.powerCap = units::Milliwatts{power};
            const Scheduler scheduler(config);
            table.addRow(
                {std::to_string(nodes),
                 TextTable::num(scheduler
                                    .maxAggregateThroughput(
                                        miSvmFlow())
                                    .count(),
                                1),
                 TextTable::num(scheduler
                                    .maxAggregateThroughput(
                                        miNnFlow())
                                    .count(),
                                1),
                 TextTable::num(scheduler
                                    .maxAggregateThroughput(
                                        miKfFlow())
                                    .count(),
                                1)});
        }
        table.print();
        std::printf("\n");
    }
    return 0;
}
