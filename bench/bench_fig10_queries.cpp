/**
 * @file
 * Figure 10: interactive query throughput at 11 nodes across data
 * sizes (7-60 MB ~ the last 110-1000 ms) and matched fractions.
 *
 * Paper anchors: Q1/Q2 ~9 QPS at 7 MB / 5% matched; Q3 takes ~1.21 s
 * at 7 MB (~0.8 QPS); ~1 QPS for Q1/Q2 over 60 MB at 5%; Q2 with
 * exact DTW drops to 8 QPS but needs 15 mW instead of 3.57 mW.
 */

#include "bench_util.hpp"
#include "scalo/app/query.hpp"
#include "scalo/util/table.hpp"

int
main()
{
    using namespace scalo;
    using namespace scalo::app;

    bench::banner(
        "Figure 10: Interactive query throughput (11 nodes)",
        "9 QPS @ 7 MB / 5%; Q3 ~0.8 QPS @ 7 MB; ~1 QPS @ 60 MB / 5%");

    TextTable table({"data (MB)", "time range (ms)", "matched",
                     "Q1 QPS", "Q2 QPS", "Q3 QPS"});
    for (double mb : {7.0, 24.0, 42.0, 60.0}) {
        const double range = timeRangeMsFor(mb, 11);
        for (double matched : {0.05, 0.5, 1.0}) {
            QueryConfig config;
            config.dataMb = mb;
            config.matchedFraction = matched;
            const auto q1 =
                estimateQuery(QueryKind::Q1SeizureWindows, config);
            const auto q2 =
                estimateQuery(QueryKind::Q2TemplateMatch, config);
            std::string q3 = "-";
            if (matched == 1.0) {
                q3 = TextTable::num(
                    estimateQuery(QueryKind::Q3TimeRange, config)
                        .queriesPerSecond,
                    2);
            }
            table.addRow({TextTable::num(mb, 0),
                          TextTable::num(range, 0),
                          TextTable::num(matched * 100.0, 0) + "%",
                          TextTable::num(q1.queriesPerSecond, 2),
                          TextTable::num(q2.queriesPerSecond, 2),
                          q3});
        }
    }
    table.print();

    QueryConfig exact;
    exact.exactMatch = true;
    const auto dtw = estimateQuery(QueryKind::Q2TemplateMatch, exact);
    const auto hash =
        estimateQuery(QueryKind::Q2TemplateMatch, QueryConfig{});
    std::printf("\nQ2 hash: %.1f QPS @ %.2f mW | Q2 exact DTW: %.1f "
                "QPS @ %.1f mW (paper: 9 vs 8 QPS, 3.57 vs 15 mW)\n",
                hash.queriesPerSecond, hash.powerMw,
                dtw.queriesPerSecond, dtw.powerMw);
    return 0;
}
