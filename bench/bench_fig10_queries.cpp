/**
 * @file
 * Figure 10: interactive query throughput at 11 nodes across data
 * sizes (7-60 MB ~ the last 110-1000 ms) and matched fractions.
 *
 * Paper anchors: Q1/Q2 ~9 QPS at 7 MB / 5% matched; Q3 takes ~1.21 s
 * at 7 MB (~0.8 QPS); ~1 QPS for Q1/Q2 over 60 MB at 5%; Q2 with
 * exact DTW drops to 8 QPS but needs 15 mW instead of 3.57 mW.
 */

#include <numbers>

#include "bench_util.hpp"
#include "scalo/app/query.hpp"
#include "scalo/app/query_engine.hpp"
#include "scalo/util/table.hpp"

int
main()
{
    using namespace scalo;
    using namespace scalo::app;
    using namespace scalo::units::literals;

    bench::banner(
        "Figure 10: Interactive query throughput (11 nodes)",
        "9 QPS @ 7 MB / 5%; Q3 ~0.8 QPS @ 7 MB; ~1 QPS @ 60 MB / 5%");

    TextTable table({"data (MB)", "time range (ms)", "matched",
                     "Q1 QPS", "Q2 QPS", "Q3 QPS"});
    for (double mb : {7.0, 24.0, 42.0, 60.0}) {
        const units::Millis range =
            timeRangeFor(units::Megabytes{mb}, 11);
        for (double matched : {0.05, 0.5, 1.0}) {
            QueryConfig config;
            config.data = units::Megabytes{mb};
            config.matchedFraction = matched;
            const auto q1 =
                estimateQuery(QueryKind::Q1SeizureWindows, config);
            const auto q2 =
                estimateQuery(QueryKind::Q2TemplateMatch, config);
            std::string q3 = "-";
            if (matched == 1.0) {
                q3 = TextTable::num(
                    estimateQuery(QueryKind::Q3TimeRange, config)
                        .queriesPerSecond.count(),
                    2);
            }
            table.addRow(
                {TextTable::num(mb, 0),
                 TextTable::num(range.count(), 0),
                 TextTable::num(matched * 100.0, 0) + "%",
                 TextTable::num(q1.queriesPerSecond.count(), 2),
                 TextTable::num(q2.queriesPerSecond.count(), 2),
                 q3});
        }
    }
    table.print();

    QueryConfig exact;
    exact.exactMatch = true;
    const auto dtw = estimateQuery(QueryKind::Q2TemplateMatch, exact);
    const auto hash =
        estimateQuery(QueryKind::Q2TemplateMatch, QueryConfig{});
    std::printf("\nQ2 hash: %.1f QPS @ %.2f mW | Q2 exact DTW: %.1f "
                "QPS @ %.1f mW (paper: 9 vs 8 QPS, 3.57 vs 15 mW)\n",
                hash.queriesPerSecond.count(), hash.power.count(),
                dtw.queriesPerSecond.count(), dtw.power.count());

    // ------------------------------------------------------------
    // The executable runtime: Q2 over real stored windows, linear
    // sequential scan vs bucket index + thread pool. Match sets are
    // identical by construction (candidates are confirmed against
    // full signatures); only windows touched and wall-clock change.
    constexpr std::size_t kNodes = 8;
    constexpr std::size_t kSamples = 120;
    constexpr std::uint64_t kPerNode = 4'000;

    app::QueryEngine engine(kNodes, kSamples, 7);
    Rng rng(23);
    // A 6 Hz seizure-shaped template, as in the Q2 clinical story.
    std::vector<double> probe_shape(kSamples);
    for (std::size_t i = 0; i < kSamples; ++i)
        probe_shape[i] = std::sin(2.0 * std::numbers::pi * 6.0 *
                                  static_cast<double>(i) /
                                  static_cast<double>(kSamples));
    for (NodeId node = 0; node < kNodes; ++node) {
        for (std::uint64_t w = 0; w < kPerNode; ++w) {
            // ~5% of windows are noisy copies of the template; the
            // rest is background noise that rarely collides.
            std::vector<double> window(kSamples);
            if (w % 20 == 0) {
                for (std::size_t i = 0; i < kSamples; ++i)
                    window[i] = probe_shape[i] +
                                rng.gaussian(0.0, 0.05);
            } else {
                for (double &v : window)
                    v = rng.gaussian();
            }
            engine.ingest(node, w * 4'000,
                          static_cast<ElectrodeId>(node), window,
                          false);
        }
    }

    auto scan_query = app::Query::q2(0, kPerNode * 4'000, probe_shape);
    scan_query.useIndex = false;
    const auto indexed_query =
        app::Query::q2(0, kPerNode * 4'000, probe_shape);

    const auto timed = [&](const app::Query &query) {
        app::QueryExecution result;
        const double best_ms = bench::bestOfN(
            5, [&] { result = engine.execute(query); });
        result.wall = units::Millis{best_ms};
        return result;
    };

    // At least 4 workers even on narrow hosts: shards overlap their
    // allocation/sort work and the pool cost shows up honestly.
    const std::size_t workers =
        std::max<std::size_t>(4, util::ThreadPool::defaultThreads());
    engine.setParallelism(1);
    const auto scan = timed(scan_query);
    engine.setParallelism(workers);
    const auto indexed = timed(indexed_query);

    bool identical = scan.matches.size() == indexed.matches.size();
    for (std::size_t i = 0; identical && i < scan.matches.size(); ++i)
        identical = scan.matches[i] == indexed.matches[i];

    std::printf(
        "\nExecuted Q2, %zu nodes x %llu windows: sequential scan "
        "%.2f ms (touched %zu, modeled %.0f ms) | bucket index + %zu "
        "threads %.2f ms (touched %zu, modeled %.0f ms) | wall "
        "speedup %.1fx | match sets %s (%zu windows)\n",
        kNodes, static_cast<unsigned long long>(kPerNode),
        scan.wall.count(), scan.scanned, scan.latency.count(),
        workers, indexed.wall.count(), indexed.scanned,
        indexed.latency.count(), scan.wall / indexed.wall,
        identical ? "identical" : "DIVERGED", scan.matches.size());
    return 0;
}
