/**
 * @file
 * Figure 8b: maximum aggregate throughput of hash vs exact (DTW)
 * signal similarity, under one-to-all and all-to-all communication,
 * across node counts and per-node power limits.
 *
 * Paper shape: Hash All-All peaks ~547 Mbps near 6 nodes then
 * declines (TDMA serialisation); Hash One-All scales linearly to
 * ~6,851 Mbps at 64 nodes / 15 mW and ~1,444 at 6 mW; DTW flows are
 * communication-limited at ~16 electrode windows and insensitive to
 * power; hash flows scale linearly with power.
 */

#include "bench_util.hpp"
#include "scalo/sched/scheduler.hpp"
#include "scalo/util/table.hpp"

int
main()
{
    using namespace scalo;
    using namespace scalo::sched;

    bench::banner(
        "Figure 8b: Signal-similarity throughput scaling (Mbps)",
        "Hash All-All peaks ~547 @ 6 nodes; Hash One-All linear to "
        "~6,851 @ 64 nodes; DTW pinned at ~16 electrode windows");

    const std::vector<std::size_t> node_counts{1, 2, 4, 8, 16, 32,
                                               64};
    const std::vector<double> power_limits{6.0, 9.0, 12.0, 15.0};

    for (double power : power_limits) {
        std::printf("--- per-node power %.0f mW ---\n", power);
        TextTable table({"nodes", "Hash All-All", "Hash One-All",
                         "DTW All-All", "DTW One-All"});
        for (std::size_t nodes : node_counts) {
            SystemConfig config;
            config.nodes = nodes;
            config.powerCap = units::Milliwatts{power};
            const Scheduler scheduler(config);
            table.addRow(
                {std::to_string(nodes),
                 TextTable::num(scheduler
                                    .maxAggregateThroughput(
                                        hashSimilarityFlow(
                                            net::Pattern::AllToAll))
                                    .count(),
                                1),
                 TextTable::num(scheduler
                                    .maxAggregateThroughput(
                                        hashSimilarityFlow(
                                            net::Pattern::OneToAll))
                                    .count(),
                                1),
                 TextTable::num(scheduler
                                    .maxAggregateThroughput(
                                        dtwSimilarityFlow(
                                            net::Pattern::AllToAll))
                                    .count(),
                                2),
                 TextTable::num(scheduler
                                    .maxAggregateThroughput(
                                        dtwSimilarityFlow(
                                            net::Pattern::OneToAll))
                                    .count(),
                                2)});
        }
        table.print();
        std::printf("\n");
    }
    return 0;
}
