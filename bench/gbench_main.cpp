/**
 * @file
 * Shared main for the google-benchmark binaries (bench_micro_kernels,
 * bench_chaos, bench_serve). Beyond BENCHMARK_MAIN(), it records the
 * build configuration that actually matters for the numbers in the
 * JSON context:
 *
 *  - scalo_build_type: the CMake config the *kernels* were compiled
 *    under (the stock "library_build_type" field describes the
 *    google-benchmark library's own build, which is misleading when
 *    the system libbenchmark was built debug);
 *  - scalo_simd: "wide" or "scalar" (util/simd.hpp mode) — baselines
 *    recorded in one mode are not comparable to runs in the other;
 *  - scalo_simd_width: lanes per double pack;
 *  - scalo_march: the -march= the tree was configured with ("" =
 *    compiler default).
 *
 * ci/compare_bench.py reads these keys to refuse non-Release numbers
 * and to downgrade enforcement on cross-mode comparisons.
 */

#include <cstddef>
#include <string>

#include <benchmark/benchmark.h>

#include "scalo/util/simd.hpp"

#ifndef SCALO_BENCH_CONFIG
#define SCALO_BENCH_CONFIG ""
#endif
#ifndef SCALO_BENCH_MARCH
#define SCALO_BENCH_MARCH ""
#endif

int
main(int argc, char **argv)
{
    benchmark::AddCustomContext("scalo_build_type", SCALO_BENCH_CONFIG);
    benchmark::AddCustomContext("scalo_simd", scalo::simd::kModeName);
    benchmark::AddCustomContext("scalo_simd_width",
                                std::to_string(scalo::simd::kLanes));
    benchmark::AddCustomContext("scalo_march", SCALO_BENCH_MARCH);
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
