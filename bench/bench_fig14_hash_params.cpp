/**
 * @file
 * Figure 14 / Section 7: LSH parameter flexibility - which (sketch
 * window size, n-gram size) pairs usefully approximate each measure.
 * Cells within 90% of the best configuration's agreement are marked
 * usable; the overlap between measures is what lets one PE family
 * serve XCOR, DTW and Euclidean.
 *
 * Paper shape: each measure has a contiguous usable region; the
 * regions overlap at moderate window sizes, with XCOR usable at the
 * largest windows.
 */

#include "bench_util.hpp"
#include "scalo/lsh/ssh.hpp"
#include "scalo/signal/distance.hpp"
#include "scalo/util/stats.hpp"

namespace {

using namespace scalo;

/**
 * Balanced agreement between hash-match and exact-threshold over a
 * pair sample: 0.5 = chance, 1.0 = perfect.
 */
double
agreement(signal::Measure measure, unsigned window, unsigned ngram)
{
    const std::size_t n = constants::kWindowSamples;
    lsh::SshParams params;
    params.windowSize = window;
    params.stride = std::max(1u, window / 6);
    params.ngramSize = ngram;
    params.seed = 0x14f;
    const lsh::SshHasher hasher(params);

    Rng rng(0x900d + static_cast<int>(measure) * 131 + window * 7 +
            ngram);

    // Calibrate a threshold for the measure.
    std::vector<double> calib;
    for (int i = 0; i < 120; ++i) {
        const auto a = bench::baseWindow(n, rng);
        const auto b = bench::perturb(a, 0.35, rng);
        calib.push_back(signal::dissimilarity(measure, a, b));
    }
    const double threshold = percentile(calib, 50.0);

    int tp = 0, tn = 0, pos = 0, neg = 0;
    for (int i = 0; i < 400; ++i) {
        const auto a = bench::baseWindow(n, rng);
        const auto b = bench::perturb(a, rng.uniform(0.0, 0.9), rng);
        const bool exact_similar =
            signal::dissimilarity(measure, a, b) <= threshold;
        const bool hash_similar =
            hasher.signature(a).matches(hasher.signature(b));
        if (exact_similar) {
            ++pos;
            tp += hash_similar;
        } else {
            ++neg;
            tn += !hash_similar;
        }
    }
    const double tpr = pos ? static_cast<double>(tp) / pos : 0.0;
    const double tnr = neg ? static_cast<double>(tn) / neg : 0.0;
    return 0.5 * (tpr + tnr);
}

} // namespace

int
main()
{
    bench::banner(
        "Figure 14: Usable LSH (window, n-gram) regions per measure",
        "'#' best, '+' within 90% of best, '.' unusable; regions "
        "overlap so one PE family serves all three measures");

    const std::vector<unsigned> windows{8, 16, 24, 32, 48, 60};
    const std::vector<unsigned> ngrams{1, 2, 3, 4, 5, 6};

    for (auto measure :
         {signal::Measure::Xcor, signal::Measure::Dtw,
          signal::Measure::Euclidean}) {
        std::printf("--- %s ---\n", signal::measureName(measure));
        std::vector<std::vector<double>> grid(
            windows.size(), std::vector<double>(ngrams.size()));
        double best = 0.0;
        for (std::size_t w = 0; w < windows.size(); ++w) {
            for (std::size_t g = 0; g < ngrams.size(); ++g) {
                grid[w][g] =
                    agreement(measure, windows[w], ngrams[g]);
                best = std::max(best, grid[w][g]);
            }
        }
        std::printf("window \\ ngram ");
        for (unsigned g : ngrams)
            std::printf("%3u ", g);
        std::printf("\n");
        for (std::size_t w = 0; w < windows.size(); ++w) {
            std::printf("%13u  ", windows[w]);
            for (std::size_t g = 0; g < ngrams.size(); ++g) {
                char mark = '.';
                if (grid[w][g] >= best - 1e-12)
                    mark = '#';
                else if (grid[w][g] >= 0.9 * best)
                    mark = '+';
                std::printf("  %c ", mark);
            }
            std::printf("\n");
        }
        std::printf("best agreement: %.3f\n\n", best);
    }

    // Hashing throughput at the default parameters: the figure's
    // usable regions are only practical because a signature is cheap.
    const std::size_t n = constants::kWindowSamples;
    const lsh::SshHasher hasher(lsh::SshParams{});
    Rng rng(0x7157);
    std::vector<std::vector<double>> windows_in;
    for (int i = 0; i < 256; ++i)
        windows_in.push_back(bench::baseWindow(n, rng));
    const double ms = bench::medianOfN(7, [&] {
        for (const auto &w : windows_in)
            (void)hasher.signature(w);
    });
    std::printf("SSH signature throughput: %.0f windows/s "
                "(median of 7 x %zu windows)\n",
                static_cast<double>(windows_in.size()) * 1e3 / ms,
                windows_in.size());
    return 0;
}
