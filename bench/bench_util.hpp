/**
 * @file
 * Shared helpers for the benchmark harness: signal-pair generation at
 * controlled similarity (for the LSH experiments), banner output, and
 * the steady-clock Timer / repeated-measurement reducers used by the
 * figure benches that report wall-clock numbers.
 */

#pragma once

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <numbers>
#include <string>
#include <vector>

#include "scalo/signal/distance.hpp"
#include "scalo/signal/window.hpp"
#include "scalo/util/rng.hpp"

namespace scalo::bench {

/** Steady-clock stopwatch: starts on construction. */
class Timer
{
  public:
    Timer() : start(std::chrono::steady_clock::now()) {}

    /** Milliseconds since construction (or the last reset()). */
    double
    elapsedMs() const
    {
        return std::chrono::duration<double, std::milli>(
                   std::chrono::steady_clock::now() - start)
            .count();
    }

    void reset() { start = std::chrono::steady_clock::now(); }

  private:
    std::chrono::steady_clock::time_point start;
};

/**
 * Run @p fn @p reps times and return the median wall-clock
 * milliseconds — robust to scheduler noise in both directions, which
 * best-of misses (it systematically reports the luckiest run).
 */
template <typename Fn>
double
medianOfN(int reps, Fn &&fn)
{
    std::vector<double> samples;
    samples.reserve(static_cast<std::size_t>(reps));
    for (int rep = 0; rep < reps; ++rep) {
        Timer timer;
        fn();
        samples.push_back(timer.elapsedMs());
    }
    std::sort(samples.begin(), samples.end());
    const std::size_t mid = samples.size() / 2;
    if (samples.size() % 2 == 1)
        return samples[mid];
    return 0.5 * (samples[mid - 1] + samples[mid]);
}

/** Run @p fn @p reps times and return the fastest milliseconds. */
template <typename Fn>
double
bestOfN(int reps, Fn &&fn)
{
    double best = 1e300;
    for (int rep = 0; rep < reps; ++rep) {
        Timer timer;
        fn();
        best = std::min(best, timer.elapsedMs());
    }
    return best;
}

/** Print the figure/table banner with the paper's reference claims. */
inline void
banner(const std::string &title, const std::string &paper_claim)
{
    std::printf("==============================================\n");
    std::printf("%s\n", title.c_str());
    std::printf("paper: %s\n", paper_claim.c_str());
    std::printf("==============================================\n\n");
}

/** A neural-like base window: mixed sinusoids + pink-ish noise. */
inline std::vector<double>
baseWindow(std::size_t n, Rng &rng)
{
    std::vector<double> out(n);
    const double f1 = rng.uniform(2.0, 10.0);
    const double f2 = rng.uniform(10.0, 30.0);
    const double p1 = rng.uniform(0.0, 2.0 * std::numbers::pi);
    const double p2 = rng.uniform(0.0, 2.0 * std::numbers::pi);
    double lp = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        const double x = static_cast<double>(i) /
                         static_cast<double>(n);
        lp = 0.9 * lp + 0.3 * rng.gaussian();
        out[i] = std::sin(2.0 * std::numbers::pi * f1 * x + p1) +
                 0.5 * std::sin(2.0 * std::numbers::pi * f2 * x + p2) + lp;
    }
    signal::removeMean(out);
    const double scale = signal::rms(out);
    if (scale > 1e-9)
        for (double &v : out)
            v /= scale;
    return out;
}

/** Perturb a window: alpha=0 keeps it, alpha=1 replaces it. */
inline std::vector<double>
perturb(const std::vector<double> &base, double alpha, Rng &rng)
{
    auto other = baseWindow(base.size(), rng);
    std::vector<double> out(base.size());
    for (std::size_t i = 0; i < base.size(); ++i)
        out[i] = (1.0 - alpha) * base[i] + alpha * other[i];
    signal::removeMean(out);
    const double scale = signal::rms(out);
    if (scale > 1e-9)
        for (double &v : out)
            v /= scale;
    return out;
}

} // namespace scalo::bench
