/**
 * @file
 * Shared helpers for the benchmark harness: signal-pair generation at
 * controlled similarity (for the LSH experiments) and banner output.
 */

#pragma once

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "scalo/signal/distance.hpp"
#include "scalo/signal/window.hpp"
#include "scalo/util/rng.hpp"

namespace scalo::bench {

/** Print the figure/table banner with the paper's reference claims. */
inline void
banner(const std::string &title, const std::string &paper_claim)
{
    std::printf("==============================================\n");
    std::printf("%s\n", title.c_str());
    std::printf("paper: %s\n", paper_claim.c_str());
    std::printf("==============================================\n\n");
}

/** A neural-like base window: mixed sinusoids + pink-ish noise. */
inline std::vector<double>
baseWindow(std::size_t n, Rng &rng)
{
    std::vector<double> out(n);
    const double f1 = rng.uniform(2.0, 10.0);
    const double f2 = rng.uniform(10.0, 30.0);
    const double p1 = rng.uniform(0.0, 2.0 * M_PI);
    const double p2 = rng.uniform(0.0, 2.0 * M_PI);
    double lp = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        const double x = static_cast<double>(i) /
                         static_cast<double>(n);
        lp = 0.9 * lp + 0.3 * rng.gaussian();
        out[i] = std::sin(2.0 * M_PI * f1 * x + p1) +
                 0.5 * std::sin(2.0 * M_PI * f2 * x + p2) + lp;
    }
    signal::removeMean(out);
    const double scale = signal::rms(out);
    if (scale > 1e-9)
        for (double &v : out)
            v /= scale;
    return out;
}

/** Perturb a window: alpha=0 keeps it, alpha=1 replaces it. */
inline std::vector<double>
perturb(const std::vector<double> &base, double alpha, Rng &rng)
{
    auto other = baseWindow(base.size(), rng);
    std::vector<double> out(base.size());
    for (std::size_t i = 0; i < base.size(); ++i)
        out[i] = (1.0 - alpha) * base[i] + alpha * other[i];
    signal::removeMean(out);
    const double scale = signal::rms(out);
    if (scale > 1e-9)
        for (double &v : out)
            v /= scale;
    return out;
}

} // namespace scalo::bench
