/**
 * @file
 * Section 6.3: spike sorting rate and accuracy. Three synthetic
 * datasets stand in for SpikeForest (tetrode, 10 units), Kilosort
 * (neuropixel, 30 units) and MEArec (simulated, 20 units); see
 * DESIGN.md for the substitution.
 *
 * Paper anchors: 12,250 sorted spikes/s per node; hash-based accuracy
 * within 5% of exact template matching, whose accuracies were 82%,
 * 91% and 73% on the three datasets.
 */

#include "bench_util.hpp"
#include "scalo/app/spikesort.hpp"
#include "scalo/data/spike_synth.hpp"
#include "scalo/sched/workloads.hpp"
#include "scalo/util/table.hpp"

int
main()
{
    using namespace scalo;

    bench::banner(
        "Section 6.3: Spike sorting rate and accuracy",
        "12,250 spikes/s/node; hash accuracy within 5% of exact "
        "(82/91/73% on SpikeForest/MEArec/Kilosort)");

    struct DatasetSpec
    {
        const char *name;
        int neurons;
        double noise;
        double rateHz;
        std::uint64_t seed;
    };
    // Firing rates follow the source datasets' spike densities so the
    // overlap statistics stay realistic as populations grow.
    const std::vector<DatasetSpec> specs{
        {"spikeforest-like (10 units, tetrode)", 10, 0.08, 8.0, 101},
        {"mearec-like (20 units, simulated)", 20, 0.03, 5.0, 202},
        {"kilosort-like (30 units, neuropixel)", 30, 0.10, 3.0, 303},
    };

    TextTable table({"dataset", "spikes", "exact acc", "hash acc",
                     "delta", "detection"});
    for (const auto &spec : specs) {
        data::SpikeConfig config;
        config.neurons = spec.neurons;
        config.noiseStd = spec.noise;
        config.firingRateHz = spec.rateHz;
        config.durationSec = 5.0;
        config.seed = spec.seed;
        if (spec.neurons == 20) {
            // The MEArec stand-in is simulator-clean: little jitter
            // or drift, like the source dataset.
            config.amplitudeJitter = 0.02;
            config.drift = 0.03;
        }
        const auto dataset = data::generateSpikes(config);

        const app::SpikeSorter exact(dataset.templates, false);
        const app::SpikeSorter hashed(dataset.templates, true);
        const auto exact_report = exact.evaluate(dataset);
        const auto hash_report = hashed.evaluate(dataset);

        table.addRow(
            {spec.name, std::to_string(dataset.events.size()),
             TextTable::num(100.0 * exact_report.accuracy, 1) + "%",
             TextTable::num(100.0 * hash_report.accuracy, 1) + "%",
             TextTable::num(100.0 * (exact_report.accuracy -
                                     hash_report.accuracy),
                            1) +
                 "%",
             TextTable::num(100.0 * hash_report.detectionRate, 1) +
                 "%"});
    }
    table.print();

    // The sorting-rate model: at 15 mW one node sustains the full
    // 96-electrode array at ~128 spikes/s/electrode.
    const auto flow = sched::spikeSortingFlow();
    const double electrodes = std::min(
        96.0, flow.electrodesAtPower(constants::kPowerCap));
    std::printf("\nsorting rate at 15 mW: %.0f spikes/s per node "
                "(paper: 12,250); response %.1f ms\n",
                electrodes * (12'250.0 / 96.0), flow.responseTime.count());
    return 0;
}
