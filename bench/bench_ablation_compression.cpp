/**
 * @file
 * Ablation: compression strategy (Section 3.2's networking support).
 * HCOMP's dictionary+RLE+Elias-gamma pipeline against the LZ baseline
 * on intra-SCALO hash traffic (the paper: within ~10% of LZ's ratio
 * at 7x less power), and the LIC -> TOK -> MA/RC external-offload
 * codec on raw signal streams.
 */

#include <cmath>

#include "bench_util.hpp"
#include "scalo/compress/hcomp.hpp"
#include "scalo/compress/lic.hpp"
#include "scalo/compress/lz.hpp"
#include "scalo/compress/range_coder.hpp"
#include "scalo/hw/pe.hpp"
#include "scalo/util/table.hpp"

int
main()
{
    using namespace scalo;
    using namespace scalo::compress;

    bench::banner(
        "Ablation: compression strategies",
        "HCOMP within ~10% of LZ's ratio on hash traffic at a "
        "fraction of the power");

    // Hash traffic: temporally-sticky per-electrode hashes.
    Rng rng(21);
    std::vector<HashValue> hashes;
    HashValue current = 7;
    for (int i = 0; i < 9'600; ++i) {
        if (rng.chance(0.12))
            current = static_cast<HashValue>(rng.below(48));
        hashes.push_back(current);
    }
    const std::vector<std::uint8_t> raw_hashes(hashes.begin(),
                                               hashes.end());

    const auto hcomp_block = compressHashes(hashes);
    const auto lz_hashes = lzCompress(raw_hashes);

    const auto &hcomp_pe = hw::peSpec(hw::PeKind::HCOMP);
    const auto &hfreq_pe = hw::peSpec(hw::PeKind::HFREQ);
    const auto &lz_pe = hw::peSpec(hw::PeKind::LZ);
    const units::Microwatts hcomp_power =
        hcomp_pe.power(96) + hfreq_pe.power(96);
    const units::Microwatts lz_power = lz_pe.power(96);

    std::printf("hash traffic (9,600 hashes):\n");
    TextTable hash_table({"codec", "bytes", "ratio", "PE power (uW, "
                                                     "96 elec)"});
    hash_table.addRow({"none", std::to_string(raw_hashes.size()),
                       "1.00", "0"});
    hash_table.addRow(
        {"HCOMP (HFREQ+dict+RLE+Elias-g)",
         std::to_string(hcomp_block.payload.size()),
         TextTable::num(hcomp_block.compressionRatio(), 2),
         TextTable::num(hcomp_power.count(), 0)});
    hash_table.addRow(
        {"LZ", std::to_string(lz_hashes.size()),
         TextTable::num(static_cast<double>(raw_hashes.size()) /
                            static_cast<double>(lz_hashes.size()),
                        2),
         TextTable::num(lz_power.count(), 0)});
    hash_table.print();
    std::printf("HCOMP/LZ compression ratio: %.2fx; LZ/HCOMP power: "
                "%.1fx (paper: HCOMP within ~10%% of LZ at ~7x less "
                "power)\n\n",
                hcomp_block.compressionRatio() /
                    (static_cast<double>(raw_hashes.size()) /
                     static_cast<double>(lz_hashes.size())),
                lz_power / hcomp_power);

    // Signal streams for external offload.
    std::vector<Sample> samples;
    double phase = 0.0;
    Rng srng(22);
    for (int i = 0; i < 30'000; ++i) {
        phase += 0.011;
        samples.push_back(static_cast<Sample>(
            2'000.0 * std::sin(phase) + srng.gaussian(0.0, 25.0)));
    }
    std::vector<std::uint8_t> raw_signal(samples.size() * 2);
    for (std::size_t i = 0; i < samples.size(); ++i) {
        raw_signal[2 * i] =
            static_cast<std::uint8_t>(samples[i] & 0xff);
        raw_signal[2 * i + 1] =
            static_cast<std::uint8_t>((samples[i] >> 8) & 0xff);
    }

    const auto lic_bytes = licCompress(samples);
    const auto stream_bytes = neuralStreamCompress(samples);
    const auto lz_signal = lzCompress(raw_signal);

    std::printf("signal streams (1 s of one electrode):\n");
    TextTable signal_table({"codec", "bytes", "ratio"});
    signal_table.addRow({"none", std::to_string(raw_signal.size()),
                         "1.00"});
    signal_table.addRow(
        {"LIC (2nd-order + Elias-g)",
         std::to_string(lic_bytes.size()),
         TextTable::num(static_cast<double>(raw_signal.size()) /
                            static_cast<double>(lic_bytes.size()),
                        2)});
    signal_table.addRow(
        {"LIC+TOK+MA/RC (full offload codec)",
         std::to_string(stream_bytes.size()),
         TextTable::num(static_cast<double>(raw_signal.size()) /
                            static_cast<double>(stream_bytes.size()),
                        2)});
    signal_table.addRow(
        {"LZ", std::to_string(lz_signal.size()),
         TextTable::num(static_cast<double>(raw_signal.size()) /
                            static_cast<double>(lz_signal.size()),
                        2)});
    signal_table.print();
    return 0;
}
