/**
 * @file
 * The headline latency claim: the full seizure-propagation response
 * path (local detection -> hash broadcast -> CCHECK -> signal
 * broadcast -> DTW confirm -> stimulation) inside the 10 ms clinical
 * budget (Section 2.2), with the Table 1 PE latencies, the TDMA slot
 * structure, and checksum-loss retransmissions, over 1,000 episodes.
 */

#include "bench_util.hpp"
#include "scalo/sim/propagation_timing.hpp"
#include "scalo/util/table.hpp"

int
main()
{
    using namespace scalo;

    bench::banner(
        "End-to-end seizure-propagation response latency",
        "detection to stimulation within 10 ms at 11 implants "
        "(Section 2.2)");

    TextTable table({"nodes", "mean (ms)", "max (ms)",
                     "within 10 ms"});
    for (std::size_t nodes : {2, 4, 8, 11, 16}) {
        sim::PropagationTimingConfig config;
        config.nodes = nodes;
        const auto result = sim::simulatePropagationTiming(config);
        table.addRow(
            {std::to_string(nodes),
             TextTable::num(result.meanTotal.count(), 2),
             TextTable::num(result.maxTotal.count(), 2),
             TextTable::num(100.0 * result.withinDeadlineFraction,
                            1) +
                 "%"});
    }
    table.print();

    sim::PropagationTimingConfig config;
    sim::Trace trace;
    const auto stages = sim::simulatePropagationTiming(config, &trace);
    std::printf("\nstage decomposition at 11 nodes (means, ms):\n");
    std::printf("  TDMA slot wait     %.2f\n", stages.slotWait.count());
    std::printf("  hash broadcast     %.2f\n",
                stages.hashBroadcast.count());
    std::printf("  collision check    %.2f\n",
                stages.collisionCheck.count());
    std::printf("  match responses    %.2f\n", stages.response.count());
    std::printf("  signal broadcast   %.2f\n",
                stages.signalBroadcast.count());
    std::printf("  exact DTW compare  %.2f\n",
                stages.exactCompare.count());
    std::printf("  stimulation issue  %.2f\n", stages.stimulate.count());
    std::printf("  --------------------------\n");
    std::printf("  total (mean/max)   %.2f / %.2f\n",
                stages.meanTotal.count(), stages.maxTotal.count());
    std::printf("\ntrace counters (1000 episodes at 11 nodes):\n"
                "  %s\n",
                trace.totals().summary().c_str());
    return 0;
}
