/**
 * @file
 * Google-benchmark coverage of the fault-handling paths: the cost of
 * an ILP re-solve and of the greedy repair when a node dies, the
 * heartbeat detector's bookkeeping, one backoff draw, and the
 * end-to-end wall time of a fault-injected simulation run versus the
 * fault-free baseline of the same deployment. Dumped to
 * BENCH_chaos.json by ci/check.sh's chaos gate and diffed (report
 * only) with ci/compare_bench.py.
 */

#include <benchmark/benchmark.h>

#include <vector>

#include "scalo/net/failure_detector.hpp"
#include "scalo/net/retry.hpp"
#include "scalo/sched/scheduler.hpp"
#include "scalo/sched/workloads.hpp"
#include "scalo/sim/runtime/system_sim.hpp"
#include "scalo/util/rng.hpp"

namespace {

using namespace scalo;
using namespace scalo::units::literals;

sched::SystemConfig
fourNodeSystem()
{
    sched::SystemConfig system;
    system.nodes = 4;
    system.maxElectrodesPerNode = constants::kElectrodesPerNode;
    return system;
}

std::vector<sched::FlowSpec>
deploymentFlows()
{
    return {sched::seizureDetectionFlow(),
            sched::hashSimilarityFlow(net::Pattern::AllToAll)};
}

const sched::Schedule &
deploymentSchedule()
{
    static const sched::Schedule schedule = [] {
        const sched::Scheduler scheduler(fourNodeSystem());
        return scheduler.schedule(deploymentFlows(), {1.0, 3.0});
    }();
    return schedule;
}

/** Time to remap a dead node's work via the full ILP re-solve. */
void
BM_RescheduleIlp(benchmark::State &state)
{
    const sched::Scheduler scheduler(fourNodeSystem());
    const auto flows = deploymentFlows();
    const std::vector<double> priorities{1.0, 3.0};
    const sched::Schedule &original = deploymentSchedule();
    for (auto _ : state)
        benchmark::DoNotOptimize(scheduler.reschedule(
            flows, priorities, original, {1}));
}
BENCHMARK(BM_RescheduleIlp);

/** Time of the solver-free fallback for the same failure. */
void
BM_GreedyRepair(benchmark::State &state)
{
    const sched::Scheduler scheduler(fourNodeSystem());
    const auto flows = deploymentFlows();
    const sched::Schedule &original = deploymentSchedule();
    for (auto _ : state)
        benchmark::DoNotOptimize(
            scheduler.greedyRepair(flows, original, {1}));
}
BENCHMARK(BM_GreedyRepair);

/** Heartbeat bookkeeping: one full miss/heard cycle across 4 nodes. */
void
BM_HeartbeatRound(benchmark::State &state)
{
    net::HeartbeatDetector detector(4, 3);
    for (auto _ : state) {
        for (std::size_t n = 0; n < 4; ++n)
            benchmark::DoNotOptimize(detector.recordMiss(n));
        for (std::size_t n = 0; n < 4; ++n)
            benchmark::DoNotOptimize(detector.recordHeard(n));
    }
}
BENCHMARK(BM_HeartbeatRound);

/** One jittered exponential-backoff draw. */
void
BM_BackoffDraw(benchmark::State &state)
{
    const net::RetryPolicy policy;
    Rng rng(7);
    std::size_t retry = 1;
    for (auto _ : state) {
        benchmark::DoNotOptimize(policy.backoff(retry, rng));
        retry = retry % (policy.maxAttempts - 1) + 1;
    }
}
BENCHMARK(BM_BackoffDraw);

sim::SystemSimConfig
simConfig()
{
    sim::SystemSimConfig config;
    config.system = fourNodeSystem();
    config.flows = deploymentFlows();
    config.priorities = {1.0, 3.0};
    config.schedule = deploymentSchedule();
    config.duration = 200.0_ms;
    return config;
}

/** Fault-free runtime baseline for the crash run below. */
void
BM_SimulateFaultFree(benchmark::State &state)
{
    for (auto _ : state) {
        sim::SystemSim sim(simConfig());
        benchmark::DoNotOptimize(sim.run());
    }
}
BENCHMARK(BM_SimulateFaultFree)->Unit(benchmark::kMillisecond);

/**
 * The same 200 ms run with a crash at 100 ms: detection, retries, and
 * the mid-run reschedule are all on this path, so the delta against
 * BM_SimulateFaultFree is the price of the fault machinery.
 */
void
BM_SimulateWithCrash(benchmark::State &state)
{
    for (auto _ : state) {
        sim::SystemSimConfig config = simConfig();
        config.faults.crashes.push_back({1, 100.0_ms});
        sim::SystemSim sim(config);
        benchmark::DoNotOptimize(sim.run());
    }
}
BENCHMARK(BM_SimulateWithCrash)->Unit(benchmark::kMillisecond);

} // namespace

// main() comes from gbench_main.cpp (build-context stamping).
