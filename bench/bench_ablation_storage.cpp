/**
 * @file
 * Ablation: the Section 3.3 NVM data-layout reorganisation. Writes
 * get 5x slower (1.75 ms/chunk, off the critical path) to make reads
 * 10x faster (0.035 ms/chunk, on the critical path) - quantified here
 * as interactive-query latency with the layout on and off.
 */

#include "bench_util.hpp"
#include "scalo/app/query.hpp"
#include "scalo/app/store.hpp"
#include "scalo/net/radio.hpp"
#include "scalo/util/table.hpp"

int
main()
{
    using namespace scalo;
    using namespace scalo::app;

    bench::banner(
        "Ablation: electrode-major NVM layout (Section 3.3)",
        "writes 1.75 ms vs 0.35 ms per chunk; reads 0.035 ms vs "
        "0.35 ms - reads are on the critical path");

    TextTable table({"layout", "chunk write (ms)", "chunk read (ms)",
                     "read 7MB/node scan (ms)",
                     "Q1-style latency (ms)"});
    for (bool reorganise : {true, false}) {
        SignalStore store(16, reorganise);
        // A 7 MB / 11-node query scans ~0.64 MB/node = ~2,650 windows.
        const std::size_t windows = 2'650;
        const double scan_ms = store.readCostMs(windows);
        // Latency model: dispatch + scan + match + 5%-matched radio.
        const double q1_ms =
            kQueryDispatchMs + scan_ms + windows / 960.0 * 0.5 +
            net::externalRadio().transferMs(0.05 * 7e6);
        table.addRow({reorganise ? "reorganised (SCALO)" : "raw",
                      TextTable::num(store.controller().chunkWriteMs(),
                                     3),
                      TextTable::num(store.controller().chunkReadMs(),
                                     3),
                      TextTable::num(scan_ms, 2),
                      TextTable::num(q1_ms, 1)});
    }
    table.print();

    std::printf("\nthe trade is sound because windows are written "
                "once but read many times,\nand writes stream through "
                "the SC's 24 KB buffer off the critical path.\n");
    return 0;
}
