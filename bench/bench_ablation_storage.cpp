/**
 * @file
 * Ablation: the Section 3.3 NVM data-layout reorganisation. Writes
 * get 5x slower (1.75 ms/chunk, off the critical path) to make reads
 * 10x faster (0.035 ms/chunk, on the critical path) - quantified here
 * as interactive-query latency with the layout on and off.
 */

#include "bench_util.hpp"
#include "scalo/app/query.hpp"
#include "scalo/app/store.hpp"
#include "scalo/net/radio.hpp"
#include "scalo/util/table.hpp"

int
main()
{
    using namespace scalo;
    using namespace scalo::app;
    using namespace scalo::units::literals;

    bench::banner(
        "Ablation: electrode-major NVM layout (Section 3.3)",
        "writes 1.75 ms vs 0.35 ms per chunk; reads 0.035 ms vs "
        "0.35 ms - reads are on the critical path");

    TextTable table({"layout", "chunk write (ms)", "chunk read (ms)",
                     "read 7MB/node scan (ms)",
                     "Q1-style latency (ms)"});
    for (bool reorganise : {true, false}) {
        SignalStore store(16, reorganise);
        // A 7 MB / 11-node query scans ~0.64 MB/node = ~2,650 windows.
        const std::size_t windows = 2'650;
        const units::Millis scan = store.readCost(windows);
        // Latency model: dispatch + scan + match + 5%-matched radio.
        const units::Millis q1 =
            kQueryDispatch + scan +
            units::Millis{windows / 960.0 * 0.5} +
            net::externalRadio().transferTime(
                units::Bytes{0.05 * 7e6});
        table.addRow(
            {reorganise ? "reorganised (SCALO)" : "raw",
             TextTable::num(store.controller().chunkWrite().count(),
                            3),
             TextTable::num(store.controller().chunkRead().count(),
                            3),
             TextTable::num(scan.count(), 2),
             TextTable::num(q1.count(), 1)});
    }
    table.print();

    std::printf("\nthe trade is sound because windows are written "
                "once but read many times,\nand writes stream through "
                "the SC's 24 KB buffer off the critical path.\n");
    return 0;
}
