/**
 * @file
 * Table 3: the intra-SCALO radio design points and the path-loss
 * model used to scale them to the 20 cm implant-to-implant link.
 */

#include "bench_util.hpp"
#include "scalo/net/radio.hpp"
#include "scalo/util/table.hpp"

int
main()
{
    using namespace scalo;
    bench::banner("Table 3: Alternative radio designs",
                  "Low Power is the default (BER 1e-5, 7 Mbps, "
                  "1.71 mW)");

    TextTable table({"name", "BER", "rate (Mbps)", "power (mW)",
                     "range (cm)", "carrier (GHz)",
                     "240B window (ms)", "energy/240B (uJ)"});
    for (const auto &radio : net::radioCatalog()) {
        char ber[16];
        std::snprintf(ber, sizeof(ber), "%.0e", radio.ber);
        table.addRow({std::string(radio.name), ber,
                      TextTable::num(radio.dataRate.count(), 1),
                      TextTable::num(radio.power.count(), 3),
                      TextTable::num(radio.range.count(), 0),
                      TextTable::num(radio.carrier.count(), 2),
                      TextTable::num(
                          radio.transferTime(units::Bytes{240.0})
                              .in<units::Millis>(),
                          3),
                      TextTable::num(
                          radio.transferEnergy(units::Bytes{240.0})
                                  .in<units::Microjoules>(),
                          2)});
    }
    table.print();

    const auto &ext = net::externalRadio();
    std::printf("\nexternal radio: %.0f Mbps at %.1f mW up to %.0f m\n",
                ext.dataRate.count(), ext.power.count(),
                ext.range.count() / 100.0);

    std::printf("\npath loss (exponent %.1f) through brain/skull/"
                "skin, Low Power design:\n",
                net::kPathLossExponent);
    for (double cm : {10.0, 20.0, 30.0, 40.0}) {
        std::printf("  %4.0f cm -> %6.2f mW transmit budget\n", cm,
                    net::powerAtDistance(net::defaultRadio(),
                                         units::Centimetres{cm})
                        .count());
    }
    return 0;
}
