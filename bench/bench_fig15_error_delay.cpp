/**
 * @file
 * Figure 15: maximum delay in detecting seizure propagation under (a)
 * hash encoding errors and (b) network bit errors, over 1000
 * repetitions each.
 *
 * Paper shape: (a) no noticeable delay until ~50% encoding error
 * rate (a seizure is captured by many electrodes), then a steep rise
 * over whole 4 ms windows; (b) network errors cost more per event
 * (a whole node's hashes) but are rare - worst delay ~0.5 ms even at
 * BER 1e-4.
 */

#include "bench_util.hpp"
#include "scalo/sim/error_experiments.hpp"
#include "scalo/util/table.hpp"

int
main()
{
    using namespace scalo;

    bench::banner(
        "Figure 15: Seizure-propagation delay under errors "
        "(1000 repetitions)",
        "(a) flat to ~50% encoding errors then steep; (b) <= 0.5 ms "
        "worst even at BER 1e-4");

    std::printf("(a) hash encoding errors\n");
    TextTable encoding({"error rate", "mean delay (ms)",
                        "max delay (ms)", "min delay (ms)"});
    for (double rate :
         {0.0, 0.2, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.95}) {
        const auto dist = sim::simulateHashEncodingErrors(rate);
        encoding.addRow({TextTable::num(rate, 2),
                         TextTable::num(dist.mean.count(), 3),
                         TextTable::num(dist.max.count(), 1),
                         TextTable::num(dist.min.count(), 1)});
    }
    encoding.print();

    std::printf("\n(b) network bit errors\n");
    TextTable network({"BER", "mean delay (ms)", "max delay (ms)",
                       "min delay (ms)"});
    std::vector<std::string> trace_lines;
    for (double ber : {1e-6, 1e-5, 1e-4}) {
        sim::Trace trace;
        const auto dist = sim::simulateNetworkBerDelay(ber, {}, &trace);
        char label[16];
        std::snprintf(label, sizeof(label), "%.0e", ber);
        network.addRow({label, TextTable::num(dist.mean.count(), 4),
                        TextTable::num(dist.max.count(), 2),
                        TextTable::num(dist.min.count(), 2)});
        trace_lines.push_back(std::string(label) + ": " +
                              trace.totals().summary());
    }
    network.print();

    std::printf("\ntrace counters per BER (1000 repetitions):\n");
    for (const std::string &line : trace_lines)
        std::printf("  %s\n", line.c_str());

    std::printf("\nfor reference: the default radio's BER is 1e-5; "
                "SCALO's observed hash false-negative rate is ~12.5%%"
                " (Section 6.7)\n");
    return 0;
}
