/**
 * @file
 * Figure 9a: priority-weighted aggregate throughput of the seizure
 * propagation application (detection : hash compare : DTW compare)
 * across node counts, for the paper's three weight choices plus
 * equal weights.
 *
 * Paper shape: with equal priorities, throughput rises linearly to
 * ~506 Mbps at 11 nodes (the per-node optimum), then grows
 * sublinearly as communication costs bite; other weightings shift
 * the level and the knee.
 */

#include "bench_util.hpp"
#include "scalo/app/seizure.hpp"
#include "scalo/util/table.hpp"

int
main()
{
    using namespace scalo;

    bench::banner(
        "Figure 9a: Weighted seizure-propagation throughput (Mbps)",
        "equal weights: linear to ~506 Mbps at 11 nodes, sublinear "
        "beyond");

    const std::vector<std::array<double, 3>> weight_sets{
        {1.0, 1.0, 1.0},
        {11.0, 1.0, 1.0},
        {3.0, 1.0, 1.0},
        {1.0, 3.0, 1.0},
    };
    const std::vector<std::size_t> node_counts{1, 2, 4, 8, 11, 16,
                                               32, 48, 64};

    TextTable table({"nodes", "1:1:1", "11:1:1", "3:1:1", "1:3:1"});
    for (std::size_t nodes : node_counts) {
        std::vector<std::string> row{std::to_string(nodes)};
        for (const auto &weights : weight_sets) {
            row.push_back(TextTable::num(
                app::seizurePropagationWeighted(weights, nodes)
                    .weighted.count(),
                1));
        }
        table.addRow(std::move(row));
    }
    table.print();

    const auto at11 =
        app::seizurePropagationWeighted({1.0, 1.0, 1.0}, 11);
    std::printf("\nequal weights at 11 nodes: %.1f Mbps "
                "(paper: 506); per-task electrodes/node: detect %.1f,"
                " hash %.1f, dtw %.1f\n",
                at11.weighted.count(), at11.detectionElectrodes,
                at11.hashElectrodes, at11.dtwElectrodes);
    return 0;
}
