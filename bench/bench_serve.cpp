/**
 * @file
 * Google-benchmark coverage of the serving runtime: compiling a
 * query cold vs. hitting the plan cache, executing a mixed batch
 * through QueryEngine::executeBatch() vs. one query at a time (the
 * cross-query coalescing win), and the end-to-end submit/wait
 * round-trip through a running QueryServer. Dumped to
 * BENCH_serve.json by ci/check.sh's serve gate and diffed (report
 * only) with ci/compare_bench.py.
 */

#include <benchmark/benchmark.h>

#include <cmath>
#include <memory>
#include <numbers>
#include <vector>

#include "scalo/serve/plan_cache.hpp"
#include "scalo/serve/query_server.hpp"
#include "scalo/util/rng.hpp"

namespace {

using namespace scalo;

constexpr std::size_t kNodes = 8;
constexpr std::size_t kSamples = 96;

std::vector<double>
probeShape(std::size_t n, double phase)
{
    std::vector<double> out(n);
    for (std::size_t i = 0; i < n; ++i)
        out[i] = std::sin(2.0 * std::numbers::pi * 6.0 *
                              static_cast<double>(i) /
                              static_cast<double>(n) +
                          phase);
    return out;
}

/** A populated engine shared by every benchmark in this binary. */
app::QueryEngine &
sharedEngine()
{
    static auto engine = [] {
        auto e = std::make_unique<app::QueryEngine>(kNodes, kSamples,
                                                    7);
        Rng rng(11);
        for (NodeId node = 0; node < kNodes; ++node) {
            for (std::uint64_t w = 0; w < 200; ++w) {
                std::vector<double> window(kSamples);
                if (w % 6 == 0)
                    window = probeShape(kSamples, 0.3);
                else
                    for (double &v : window)
                        v = rng.gaussian();
                e->ingest(node, w * 4'000,
                          static_cast<ElectrodeId>(node % 4),
                          window, w % 9 == 0);
            }
        }
        return e;
    }();
    return *engine;
}

app::Query
mixedQuery(std::size_t i)
{
    const std::uint64_t t0 = (i % 5) * 60'000;
    const std::uint64_t t1 = t0 + 400'000;
    switch (i % 4) {
      case 0:
        return app::Query::q1(t0, t1);
      case 1:
        return app::Query::q2(t0, t1, probeShape(kSamples, 0.3));
      case 2:
        return app::Query::q2(t0, t1, probeShape(kSamples, 0.3),
                              6.0, signal::Measure::Euclidean);
      default:
        return app::Query::q3(t0, t1);
    }
}

void
BM_CompileCold(benchmark::State &state)
{
    app::QueryEngine &engine = sharedEngine();
    const auto query =
        app::Query::q2(0, 400'000, probeShape(kSamples, 0.3), 6.0,
                       signal::Measure::Euclidean);
    for (auto _ : state) {
        auto compiled = engine.compile(query);
        benchmark::DoNotOptimize(compiled);
    }
}
BENCHMARK(BM_CompileCold);

void
BM_PlanCacheHit(benchmark::State &state)
{
    app::QueryEngine &engine = sharedEngine();
    serve::PlanCache cache(16);
    const auto query =
        app::Query::q2(0, 400'000, probeShape(kSamples, 0.3), 6.0,
                       signal::Measure::Euclidean);
    cache.getOrCompile(engine, query); // warm
    for (auto _ : state) {
        auto plan = cache.getOrCompile(engine, query);
        benchmark::DoNotOptimize(plan);
    }
}
BENCHMARK(BM_PlanCacheHit);

void
BM_ExecuteSerial(benchmark::State &state)
{
    app::QueryEngine &engine = sharedEngine();
    const auto batch = static_cast<std::size_t>(state.range(0));
    std::vector<app::QueryEngine::CompiledQuery> compiled;
    for (std::size_t i = 0; i < batch; ++i)
        compiled.push_back(engine.compile(mixedQuery(i)));
    for (auto _ : state) {
        for (const auto &plan : compiled) {
            auto execution = engine.execute(plan);
            benchmark::DoNotOptimize(execution);
        }
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations() * batch));
}
BENCHMARK(BM_ExecuteSerial)->Arg(4)->Arg(16);

void
BM_ExecuteBatched(benchmark::State &state)
{
    app::QueryEngine &engine = sharedEngine();
    const auto batch = static_cast<std::size_t>(state.range(0));
    std::vector<app::QueryEngine::CompiledQuery> compiled;
    for (std::size_t i = 0; i < batch; ++i)
        compiled.push_back(engine.compile(mixedQuery(i)));
    std::vector<const app::QueryEngine::CompiledQuery *> plans;
    for (const auto &plan : compiled)
        plans.push_back(&plan);
    for (auto _ : state) {
        auto executions = engine.executeBatch(plans);
        benchmark::DoNotOptimize(executions);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations() * batch));
}
BENCHMARK(BM_ExecuteBatched)->Arg(4)->Arg(16);

void
BM_ServerSubmitWait(benchmark::State &state)
{
    app::QueryEngine &engine = sharedEngine();
    serve::ServeConfig config;
    config.dispatchers = 2;
    config.queueCapacity = 256;
    config.maxBatch = 16;
    serve::QueryServer server(engine, config);
    std::size_t i = 0;
    for (auto _ : state) {
        const auto submit =
            server.submit("bench", mixedQuery(i++));
        if (!submit.accepted())
            continue;
        auto response = server.wait(submit.id, 30'000.0);
        benchmark::DoNotOptimize(response);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ServerSubmitWait);

} // namespace

// main() comes from gbench_main.cpp (build-context stamping).
