/**
 * @file
 * Google-benchmark microbenchmarks of the hot kernels every SCALO
 * pipeline leans on: FFT, Butterworth, DTW, the SSH/EMD hashes,
 * HCOMP compression, the Kalman step, Gauss-Jordan inversion, and
 * the LP solver.
 */

#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "scalo/compress/hcomp.hpp"
#include "scalo/compress/range_coder.hpp"
#include "scalo/util/aes.hpp"
#include "scalo/ilp/solver.hpp"
#include "scalo/linalg/kernels.hpp"
#include "scalo/linalg/matrix.hpp"
#include "scalo/linalg/reference.hpp"
#include "scalo/lsh/emd_hash.hpp"
#include "scalo/lsh/ssh.hpp"
#include "scalo/ml/kalman.hpp"
#include "scalo/signal/butterworth.hpp"
#include "scalo/signal/distance.hpp"
#include "scalo/signal/fft.hpp"
#include "scalo/signal/fft_plan.hpp"
#include "scalo/signal/reference.hpp"

namespace {

using namespace scalo;

std::vector<double>
window120(std::uint64_t seed)
{
    Rng rng(seed);
    return bench::baseWindow(120, rng);
}

void
BM_Fft128(benchmark::State &state)
{
    std::vector<std::complex<double>> data(128);
    Rng rng(1);
    for (auto &x : data)
        x = {rng.gaussian(), 0.0};
    const auto plan = signal::FftPlan::forSize(128);
    std::vector<std::complex<double>> copy(128);
    for (auto _ : state) {
        copy = data;
        plan->forward(copy);
        benchmark::DoNotOptimize(copy);
    }
}
BENCHMARK(BM_Fft128);

void
BM_Rfft128(benchmark::State &state)
{
    Rng rng(1);
    std::vector<double> data(128);
    for (auto &x : data)
        x = rng.gaussian();
    const auto plan = signal::FftPlan::forSize(128);
    std::vector<std::complex<double>> spectrum(65);
    std::vector<std::complex<double>> scratch;
    for (auto _ : state) {
        plan->rfft(data.data(), spectrum.data(), scratch);
        benchmark::DoNotOptimize(spectrum);
    }
}
BENCHMARK(BM_Rfft128);

void
BM_BandPowerScratch(benchmark::State &state)
{
    Rng rng(1);
    const auto input = bench::baseWindow(96, rng);
    const std::vector<signal::Band> bands{
        {1.0, 4.0}, {4.0, 8.0}, {8.0, 13.0}, {13.0, 30.0}};
    signal::SpectrumScratch scratch;
    std::vector<double> powers;
    for (auto _ : state) {
        signal::bandPower(input, 250.0, bands, scratch, powers);
        benchmark::DoNotOptimize(powers);
    }
}
BENCHMARK(BM_BandPowerScratch);

void
BM_Butterworth(benchmark::State &state)
{
    signal::ButterworthBandpass filter(2, 100.0, 3'000.0, 30'000.0);
    const auto input = window120(2);
    for (auto _ : state) {
        filter.reset();
        benchmark::DoNotOptimize(filter.apply(input));
    }
}
BENCHMARK(BM_Butterworth);

void
BM_DtwBanded(benchmark::State &state)
{
    const auto a = window120(3);
    const auto b = window120(4);
    signal::DtwScratch scratch;
    for (auto _ : state)
        benchmark::DoNotOptimize(
            signal::dtwDistance(a, b, 12, scratch));
}
BENCHMARK(BM_DtwBanded);

void
BM_DtwBandedNaive(benchmark::State &state)
{
    const auto a = window120(3);
    const auto b = window120(4);
    for (auto _ : state)
        benchmark::DoNotOptimize(
            signal::reference::naiveDtw(a, b, 12));
}
BENCHMARK(BM_DtwBandedNaive);

void
BM_DtwEarlyAbandon(benchmark::State &state)
{
    // Dissimilar windows with a tight cutoff: the common case on the
    // candidate-verification path, where most candidates abandon in
    // the first few rows.
    const auto a = window120(3);
    const auto b = window120(4);
    signal::DtwScratch scratch;
    const double cutoff =
        0.25 * signal::dtwDistance(a, b, 12, scratch);
    for (auto _ : state)
        benchmark::DoNotOptimize(signal::dtwDistanceEarlyAbandon(
            a, b, 12, cutoff, scratch));
}
BENCHMARK(BM_DtwEarlyAbandon);

void
BM_EuclideanBatch64(benchmark::State &state)
{
    const auto query = window120(3);
    std::vector<std::vector<double>> windows;
    for (std::uint64_t i = 0; i < 64; ++i)
        windows.push_back(window120(100 + i));
    std::vector<const std::vector<double> *> candidates;
    for (const auto &w : windows)
        candidates.push_back(&w);
    std::vector<double> out;
    for (auto _ : state) {
        signal::euclideanDistanceMany(query, candidates, out);
        benchmark::DoNotOptimize(out);
    }
}
BENCHMARK(BM_EuclideanBatch64);

void
BM_EuclideanPerPair64(benchmark::State &state)
{
    const auto query = window120(3);
    std::vector<std::vector<double>> windows;
    for (std::uint64_t i = 0; i < 64; ++i)
        windows.push_back(window120(100 + i));
    std::vector<double> out(windows.size());
    for (auto _ : state) {
        for (std::size_t i = 0; i < windows.size(); ++i)
            out[i] = signal::reference::naiveEuclidean(query,
                                                       windows[i]);
        benchmark::DoNotOptimize(out);
    }
}
BENCHMARK(BM_EuclideanPerPair64);

void
BM_MatMul64(benchmark::State &state)
{
    Rng rng(12);
    linalg::Matrix a(64, 64), b(64, 64), out;
    for (std::size_t r = 0; r < 64; ++r)
        for (std::size_t c = 0; c < 64; ++c) {
            a.at(r, c) = rng.gaussian();
            b.at(r, c) = rng.gaussian();
        }
    for (auto _ : state) {
        linalg::mulInto(a, b, out);
        benchmark::DoNotOptimize(out);
    }
}
BENCHMARK(BM_MatMul64);

void
BM_MatMul64Naive(benchmark::State &state)
{
    Rng rng(12);
    linalg::Matrix a(64, 64), b(64, 64);
    for (std::size_t r = 0; r < 64; ++r)
        for (std::size_t c = 0; c < 64; ++c) {
            a.at(r, c) = rng.gaussian();
            b.at(r, c) = rng.gaussian();
        }
    for (auto _ : state)
        benchmark::DoNotOptimize(
            linalg::reference::naiveMul(a, b));
}
BENCHMARK(BM_MatMul64Naive);

void
BM_SshSignature(benchmark::State &state)
{
    const lsh::SshHasher hasher({});
    const auto input = window120(5);
    for (auto _ : state)
        benchmark::DoNotOptimize(hasher.signature(input));
}
BENCHMARK(BM_SshSignature);

void
BM_EmdHash(benchmark::State &state)
{
    const lsh::EmdHasher hasher({}, 120);
    const auto input = window120(6);
    for (auto _ : state)
        benchmark::DoNotOptimize(hasher.signature(input));
}
BENCHMARK(BM_EmdHash);

void
BM_HcompRoundTrip(benchmark::State &state)
{
    Rng rng(7);
    std::vector<HashValue> hashes;
    HashValue current = 3;
    for (int i = 0; i < 960; ++i) {
        if (rng.chance(0.1))
            current = static_cast<HashValue>(rng.below(32));
        hashes.push_back(current);
    }
    for (auto _ : state) {
        const auto block = compress::compressHashes(hashes);
        benchmark::DoNotOptimize(compress::decompressHashes(block));
    }
}
BENCHMARK(BM_HcompRoundTrip);

void
BM_KalmanStep96(benchmark::State &state)
{
    auto filter = ml::KalmanFilter::cursorDecoder(96, 0.05, 8);
    Rng rng(9);
    std::vector<double> obs(96);
    for (auto &v : obs)
        v = rng.gaussian();
    for (auto _ : state)
        benchmark::DoNotOptimize(filter.step(obs));
}
BENCHMARK(BM_KalmanStep96);

void
BM_Inverse16(benchmark::State &state)
{
    Rng rng(10);
    linalg::Matrix m(16, 16);
    for (std::size_t r = 0; r < 16; ++r) {
        for (std::size_t c = 0; c < 16; ++c)
            m.at(r, c) = rng.gaussian();
        m.at(r, r) += 8.0;
    }
    for (auto _ : state)
        benchmark::DoNotOptimize(linalg::inverse(m));
}
BENCHMARK(BM_Inverse16);

void
BM_Aes128CtrBlock(benchmark::State &state)
{
    const Aes128::Key key{1, 2, 3};
    const Aes128 aes(key);
    std::vector<std::uint8_t> window(240, 0x5a);
    for (auto _ : state)
        benchmark::DoNotOptimize(aes.ctrCrypt(window, {7}));
}
BENCHMARK(BM_Aes128CtrBlock);

void
BM_NeuralStreamCodec(benchmark::State &state)
{
    Rng rng(11);
    std::vector<Sample> samples(3'000);
    double phase = 0.0;
    for (auto &s : samples) {
        phase += 0.012;
        s = static_cast<Sample>(2'000.0 * std::sin(phase) +
                                rng.gaussian(0.0, 30.0));
    }
    for (auto _ : state) {
        const auto packed = compress::neuralStreamCompress(samples);
        benchmark::DoNotOptimize(
            compress::neuralStreamDecompress(packed,
                                             samples.size()));
    }
}
BENCHMARK(BM_NeuralStreamCodec);

void
BM_IlpSchedulerShaped(benchmark::State &state)
{
    for (auto _ : state) {
        ilp::Model model;
        ilp::Expr objective, network;
        for (int node = 0; node < 8; ++node) {
            const int e = model.addVariable(
                "e" + std::to_string(node), 0.0, 200.0);
            model.addConstraint({{e, 0.08}}, ilp::Relation::LessEq,
                                12.0);
            objective.push_back({e, 1.0});
            network.push_back({e, 0.01});
        }
        model.addConstraint(std::move(network),
                            ilp::Relation::LessEq, 4.0);
        model.setObjective(std::move(objective));
        benchmark::DoNotOptimize(ilp::solveLp(model));
    }
}
BENCHMARK(BM_IlpSchedulerShaped);

} // namespace

// main() comes from gbench_main.cpp (build-context stamping).
