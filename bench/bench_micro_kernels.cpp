/**
 * @file
 * Google-benchmark microbenchmarks of the hot kernels every SCALO
 * pipeline leans on: FFT, Butterworth, DTW, the SSH/EMD hashes,
 * HCOMP compression, the Kalman step, Gauss-Jordan inversion, and
 * the LP solver.
 */

#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "scalo/compress/hcomp.hpp"
#include "scalo/compress/range_coder.hpp"
#include "scalo/util/aes.hpp"
#include "scalo/ilp/solver.hpp"
#include "scalo/linalg/matrix.hpp"
#include "scalo/lsh/emd_hash.hpp"
#include "scalo/lsh/ssh.hpp"
#include "scalo/ml/kalman.hpp"
#include "scalo/signal/butterworth.hpp"
#include "scalo/signal/distance.hpp"
#include "scalo/signal/fft.hpp"

namespace {

using namespace scalo;

std::vector<double>
window120(std::uint64_t seed)
{
    Rng rng(seed);
    return bench::baseWindow(120, rng);
}

void
BM_Fft128(benchmark::State &state)
{
    std::vector<std::complex<double>> data(128);
    Rng rng(1);
    for (auto &x : data)
        x = {rng.gaussian(), 0.0};
    for (auto _ : state) {
        auto copy = data;
        signal::fft(copy);
        benchmark::DoNotOptimize(copy);
    }
}
BENCHMARK(BM_Fft128);

void
BM_Butterworth(benchmark::State &state)
{
    signal::ButterworthBandpass filter(2, 100.0, 3'000.0, 30'000.0);
    const auto input = window120(2);
    for (auto _ : state) {
        filter.reset();
        benchmark::DoNotOptimize(filter.apply(input));
    }
}
BENCHMARK(BM_Butterworth);

void
BM_DtwBanded(benchmark::State &state)
{
    const auto a = window120(3);
    const auto b = window120(4);
    for (auto _ : state)
        benchmark::DoNotOptimize(signal::dtwDistance(a, b, 12));
}
BENCHMARK(BM_DtwBanded);

void
BM_SshSignature(benchmark::State &state)
{
    const lsh::SshHasher hasher({});
    const auto input = window120(5);
    for (auto _ : state)
        benchmark::DoNotOptimize(hasher.signature(input));
}
BENCHMARK(BM_SshSignature);

void
BM_EmdHash(benchmark::State &state)
{
    const lsh::EmdHasher hasher({}, 120);
    const auto input = window120(6);
    for (auto _ : state)
        benchmark::DoNotOptimize(hasher.signature(input));
}
BENCHMARK(BM_EmdHash);

void
BM_HcompRoundTrip(benchmark::State &state)
{
    Rng rng(7);
    std::vector<HashValue> hashes;
    HashValue current = 3;
    for (int i = 0; i < 960; ++i) {
        if (rng.chance(0.1))
            current = static_cast<HashValue>(rng.below(32));
        hashes.push_back(current);
    }
    for (auto _ : state) {
        const auto block = compress::compressHashes(hashes);
        benchmark::DoNotOptimize(compress::decompressHashes(block));
    }
}
BENCHMARK(BM_HcompRoundTrip);

void
BM_KalmanStep96(benchmark::State &state)
{
    auto filter = ml::KalmanFilter::cursorDecoder(96, 0.05, 8);
    Rng rng(9);
    std::vector<double> obs(96);
    for (auto &v : obs)
        v = rng.gaussian();
    for (auto _ : state)
        benchmark::DoNotOptimize(filter.step(obs));
}
BENCHMARK(BM_KalmanStep96);

void
BM_Inverse16(benchmark::State &state)
{
    Rng rng(10);
    linalg::Matrix m(16, 16);
    for (std::size_t r = 0; r < 16; ++r) {
        for (std::size_t c = 0; c < 16; ++c)
            m.at(r, c) = rng.gaussian();
        m.at(r, r) += 8.0;
    }
    for (auto _ : state)
        benchmark::DoNotOptimize(linalg::inverse(m));
}
BENCHMARK(BM_Inverse16);

void
BM_Aes128CtrBlock(benchmark::State &state)
{
    const Aes128::Key key{1, 2, 3};
    const Aes128 aes(key);
    std::vector<std::uint8_t> window(240, 0x5a);
    for (auto _ : state)
        benchmark::DoNotOptimize(aes.ctrCrypt(window, {7}));
}
BENCHMARK(BM_Aes128CtrBlock);

void
BM_NeuralStreamCodec(benchmark::State &state)
{
    Rng rng(11);
    std::vector<Sample> samples(3'000);
    double phase = 0.0;
    for (auto &s : samples) {
        phase += 0.012;
        s = static_cast<Sample>(2'000.0 * std::sin(phase) +
                                rng.gaussian(0.0, 30.0));
    }
    for (auto _ : state) {
        const auto packed = compress::neuralStreamCompress(samples);
        benchmark::DoNotOptimize(
            compress::neuralStreamDecompress(packed,
                                             samples.size()));
    }
}
BENCHMARK(BM_NeuralStreamCodec);

void
BM_IlpSchedulerShaped(benchmark::State &state)
{
    for (auto _ : state) {
        ilp::Model model;
        ilp::Expr objective, network;
        for (int node = 0; node < 8; ++node) {
            const int e = model.addVariable(
                "e" + std::to_string(node), 0.0, 200.0);
            model.addConstraint({{e, 0.08}}, ilp::Relation::LessEq,
                                12.0);
            objective.push_back({e, 1.0});
            network.push_back({e, 0.01});
        }
        model.addConstraint(std::move(network),
                            ilp::Relation::LessEq, 4.0);
        model.setObjective(std::move(objective));
        benchmark::DoNotOptimize(ilp::solveLp(model));
    }
}
BENCHMARK(BM_IlpSchedulerShaped);

} // namespace

BENCHMARK_MAIN();
