/**
 * @file
 * Figure 12: packet error fractions vs network BER, and how rarely a
 * corrupted signal payload flips the DTW similarity outcome.
 *
 * Paper shape: signal packets (240 B) err far more often than hash
 * packets (~100 B compressed) at any BER; at the default radio's
 * BER (1e-5) under 1% of hash packets err and no DTW decision flips;
 * even at 1e-4, DTW failures stay rare because the measure is
 * naturally resilient.
 */

#include "bench_util.hpp"
#include "scalo/sim/error_experiments.hpp"
#include "scalo/util/table.hpp"

int
main()
{
    using namespace scalo;

    bench::banner(
        "Figure 12: Packet errors and DTW failures vs network BER",
        "signals err more than hashes; <1% hash errors and 0 DTW "
        "failures at the design BER of 1e-5");

    TextTable table({"BER", "hash packets err (%)",
                     "signal packets err (%)", "DTW failure (%)"});
    std::vector<std::string> trace_lines;
    for (double ber : {1e-4, 1e-5, 1e-6}) {
        sim::Trace trace;
        const auto point =
            sim::measureNetworkErrors(ber, 4'000, 5, &trace);
        char label[16];
        std::snprintf(label, sizeof(label), "%.0e", ber);
        table.addRow(
            {label,
             TextTable::num(100.0 * point.hashPacketErrorFraction, 2),
             TextTable::num(100.0 * point.signalPacketErrorFraction,
                            2),
             TextTable::num(100.0 * point.dtwDecisionFailureFraction,
                            2)});
        trace_lines.push_back(std::string(label) + ": " +
                              trace.totals().summary());
    }
    table.print();

    std::printf("\ntrace counters per sweep point:\n");
    for (const std::string &line : trace_lines)
        std::printf("  %s\n", line.c_str());

    std::printf("\nreceiver policy (Section 3.4): hash packets with "
                "checksum errors are dropped;\nsignal packets flow "
                "into the PEs because DTW absorbs a few bit flips.\n");
    return 0;
}
