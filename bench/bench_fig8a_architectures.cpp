/**
 * @file
 * Figure 8a: maximum aggregate throughput of SCALO and the four
 * alternative architectures (Table 2) for all six evaluation tasks at
 * 11 implanted sites.
 *
 * Paper shape: SCALO wins everywhere; Central ~10x below SCALO;
 * Central No-Hash 250x / 24.5x below Central for signal similarity /
 * spike sorting; HALO+NVM matches Central where HALO's PEs suffice
 * and is 10-385x below SCALO elsewhere; HALO+NVM spike sorting lands
 * 40% below Central No-Hash.
 */

#include "bench_util.hpp"
#include "scalo/sched/architectures.hpp"
#include "scalo/util/table.hpp"

int
main()
{
    using namespace scalo;
    using namespace scalo::sched;

    bench::banner(
        "Figure 8a: Max aggregate throughput by architecture (Mbps, "
        "11 sites, 15 mW)",
        "SCALO highest everywhere; 10x over Central; up to 385x over "
        "HALO+NVM");

    std::vector<std::string> headers{"architecture"};
    for (Task task : allTasks())
        headers.emplace_back(taskName(task));
    TextTable table(std::move(headers));

    for (Architecture arch : allArchitectures()) {
        std::vector<std::string> row{
            std::string(architectureName(arch))};
        for (Task task : allTasks()) {
            row.push_back(TextTable::num(
                maxAggregateThroughput(arch, task, 11).count(), 2));
        }
        table.addRow(std::move(row));
    }
    table.print();

    // Headline ratios the paper calls out.
    auto ratio = [](Task task, Architecture a, Architecture b) {
        return maxAggregateThroughput(a, task, 11) /
               maxAggregateThroughput(b, task, 11);
    };
    std::printf("\nheadline ratios (paper -> measured):\n");
    std::printf("  SCALO/Central, seizure detection (~11x): %.1fx\n",
                ratio(Task::SeizureDetection, Architecture::Scalo,
                      Architecture::Central));
    std::printf("  Central/Central No-Hash, similarity (250x): "
                "%.0fx\n",
                ratio(Task::SignalSimilarity, Architecture::Central,
                      Architecture::CentralNoHash));
    std::printf("  Central/Central No-Hash, spike sorting (24.5x): "
                "%.1fx\n",
                ratio(Task::SpikeSorting, Architecture::Central,
                      Architecture::CentralNoHash));
    std::printf("  SCALO/HALO+NVM, best case (up to 385x): %.0fx\n",
                [&] {
                    double best = 0.0;
                    for (Task task : allTasks()) {
                        best = std::max(
                            best,
                            ratio(task, Architecture::Scalo,
                                  Architecture::HaloNvm));
                    }
                    return best;
                }());
    return 0;
}
