/**
 * @file
 * The hierarchical-fabric scaling curve: nodes x {schedule time, sim
 * wall time, peak memory} for {flat, clustered} x {serial, parallel},
 * emitted as google-benchmark-format JSON so ci/compare_bench.py can
 * track BENCH_scaling.json report-only.
 *
 * This binary carries its own main (the grid is a cross product with
 * per-cell feasibility rules, not a timing loop): each cell runs
 * once — the workloads are deterministic and seconds long, so
 * repetition buys nothing — and cells the flat fabric cannot reach
 * (the monolithic ILP past 256 nodes) are omitted rather than timed
 * out. A parity cell per size asserts the parallel engine's trace is
 * byte-identical to the serial reference before any number is
 * reported.
 *
 *     ./bench/bench_scaling [out.json]
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "scalo/sched/scheduler.hpp"
#include "scalo/sched/workloads.hpp"
#include "scalo/sim/runtime/system_sim.hpp"

namespace {

using namespace scalo;
using namespace scalo::units::literals;

using Clock = std::chrono::steady_clock;

double
elapsedMs(Clock::time_point start)
{
    return std::chrono::duration<double, std::milli>(Clock::now() -
                                                     start)
        .count();
}

/** A VmHWM/VmRSS line of /proc/self/status, in KiB (0 if absent). */
long
statusKb(const char *key)
{
    std::ifstream status("/proc/self/status");
    std::string line;
    while (std::getline(status, line))
        if (line.rfind(key, 0) == 0)
            return std::strtol(line.c_str() + std::strlen(key),
                               nullptr, 10);
    return 0;
}

/**
 * Reset the process peak-RSS watermark so VmHWM reads as a per-cell
 * peak rather than a whole-run high-water mark. Best-effort: kernels
 * without a writable clear_refs leave VmHWM monotone, which only
 * overstates the peaks.
 */
void
resetPeakRss()
{
    std::ofstream("/proc/self/clear_refs") << "5";
}

/** One emitted benchmark entry (google-benchmark JSON shape). */
struct Entry
{
    std::string name;
    double realMs = 0.0;
    /** User counters appended verbatim to the entry. */
    std::vector<std::pair<std::string, double>> counters;
};

std::vector<sched::FlowSpec>
mixedFlows()
{
    return {sched::seizureDetectionFlow(),
            sched::hashSimilarityFlow(net::Pattern::AllToAll),
            sched::spikeSortingFlow()};
}

const std::vector<double> kPriorities{1.0, 3.0, 1.0};

sched::SystemConfig
systemFor(std::size_t nodes, std::size_t clusters)
{
    sched::SystemConfig system;
    system.nodes = nodes;
    system.maxElectrodesPerNode = constants::kElectrodesPerNode;
    if (clusters > 1)
        system.clusters =
            net::ClusterPlan::balanced(nodes, clusters);
    return system;
}

sim::SystemSimConfig
simConfigFor(const sched::SystemConfig &system,
             const sched::Schedule &schedule,
             units::Millis duration)
{
    sim::SystemSimConfig config;
    config.system = system;
    config.flows = mixedFlows();
    config.priorities = kPriorities;
    config.schedule = schedule;
    config.duration = duration;
    config.recordTrace = false; // counters only: bounded memory
    return config;
}

Entry
timeSim(const std::string &name, sim::SystemSimConfig config,
        bool parallel, std::size_t threads)
{
    config.parallel = parallel;
    config.threads = threads;
    resetPeakRss();
    const Clock::time_point start = Clock::now();
    sim::SystemSim simulator(std::move(config));
    const sim::SystemSimResult result = simulator.run();
    Entry entry;
    entry.realMs = elapsedMs(start);
    entry.name = name;
    entry.counters = {
        {"events", static_cast<double>(result.eventsExecuted)},
        {"clusters", static_cast<double>(result.clusters)},
        {"ran_parallel", result.ranParallel ? 1.0 : 0.0},
        {"peak_rss_kb", static_cast<double>(statusKb("VmHWM:"))},
    };
    return entry;
}

/** Serial-vs-parallel byte parity of the traced run at this size. */
bool
tracesMatch(const sched::SystemConfig &system,
            const sched::Schedule &schedule)
{
    const auto trace_of = [&](bool parallel) {
        sim::SystemSimConfig config =
            simConfigFor(system, schedule, 50.0_ms);
        config.recordTrace = true;
        config.parallel = parallel;
        config.threads = 4;
        sim::SystemSim simulator(std::move(config));
        simulator.run();
        return simulator.trace().toChromeJson();
    };
    const std::string serial = trace_of(false);
    return !serial.empty() && serial == trace_of(true);
}

std::string
jsonNumber(double value)
{
    char buffer[64];
    std::snprintf(buffer, sizeof buffer, "%.6g", value);
    return buffer;
}

void
writeJson(const std::string &path, const std::vector<Entry> &entries)
{
    std::ofstream out(path, std::ios::binary);
    const std::time_t now = std::time(nullptr);
    char stamp[64];
    std::strftime(stamp, sizeof stamp, "%FT%T%z",
                  std::localtime(&now));
    out << "{\n  \"context\": {\n"
        << "    \"date\": \"" << stamp << "\",\n"
        << "    \"executable\": \"bench_scaling\",\n"
        << "    \"num_cpus\": "
        << std::thread::hardware_concurrency() << ",\n"
#ifdef SCALO_BENCH_CONFIG
        << "    \"scalo_build_type\": \"" << SCALO_BENCH_CONFIG
        << "\",\n"
#endif
#ifdef SCALO_BENCH_MARCH
        << "    \"scalo_march\": \"" << SCALO_BENCH_MARCH << "\",\n"
#endif
        << "    \"scalo_bench\": \"scaling\"\n  },\n"
        << "  \"benchmarks\": [";
    bool first = true;
    for (const Entry &entry : entries) {
        out << (first ? "\n" : ",\n");
        first = false;
        out << "    {\n      \"name\": \"" << entry.name << "\",\n"
            << "      \"run_name\": \"" << entry.name << "\",\n"
            << "      \"run_type\": \"iteration\",\n"
            << "      \"iterations\": 1,\n"
            << "      \"real_time\": " << jsonNumber(entry.realMs)
            << ",\n      \"cpu_time\": " << jsonNumber(entry.realMs)
            << ",\n      \"time_unit\": \"ms\"";
        for (const auto &[key, value] : entry.counters)
            out << ",\n      \"" << key
                << "\": " << jsonNumber(value);
        out << "\n    }";
    }
    out << "\n  ]\n}\n";
}

} // namespace

int
main(int argc, char **argv)
{
    // Accept a bare output path, or the google-benchmark spelling
    // (--benchmark_out=PATH) so ci/check.sh's bench harness can
    // drive this binary like the gbench ones; other --benchmark_*
    // flags are ignored.
    std::string out_path = "BENCH_scaling.json";
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (std::strncmp(arg, "--benchmark_out=", 16) == 0)
            out_path = arg + 16;
        else if (std::strncmp(arg, "--benchmark_", 12) != 0)
            out_path = arg;
    }
    // 16-wide clusters past 64 nodes; small fabrics keep 4 so the
    // clustered engine is exercised (the scheduler still solves them
    // monolithically below its threshold).
    const std::size_t sizes[] = {16, 64, 128, 256, 512};
    /** The monolithic simplex past this size is the intractable
     *  baseline the decomposition exists to replace; omit it. */
    const std::size_t monolithic_limit = 256;
    const units::Millis sim_duration{100.0};

    std::vector<Entry> entries;
    for (const std::size_t nodes : sizes) {
        const std::size_t clusters =
            nodes <= 64 ? 4 : nodes / 16;
        const std::string suffix = "/nodes:" + std::to_string(nodes);
        std::fprintf(stderr, "[bench_scaling] %zu nodes...\n",
                     nodes);

        const sched::SystemConfig flat_system = systemFor(nodes, 1);
        const sched::SystemConfig clustered_system =
            systemFor(nodes, clusters);
        const sched::Scheduler flat_scheduler(flat_system);
        const sched::Scheduler clustered_scheduler(clustered_system);

        // Scheduling: the dense monolithic solve vs the decomposed
        // per-cluster formulation (forced entry points, so the
        // comparison is meaningful below the auto threshold too).
        sched::Schedule flat_schedule;
        if (nodes <= monolithic_limit) {
            resetPeakRss();
            const Clock::time_point start = Clock::now();
            flat_schedule = flat_scheduler.scheduleMonolithic(
                mixedFlows(), kPriorities);
            Entry entry;
            entry.name = "BM_ScheduleMonolithic" + suffix;
            entry.realMs = elapsedMs(start);
            entry.counters = {
                {"feasible", flat_schedule.feasible ? 1.0 : 0.0},
                {"peak_rss_kb",
                 static_cast<double>(statusKb("VmHWM:"))}};
            entries.push_back(entry);
        }
        resetPeakRss();
        const Clock::time_point decomposed_start = Clock::now();
        const sched::Schedule clustered_schedule =
            clustered_scheduler.scheduleDecomposed(mixedFlows(),
                                                   kPriorities);
        {
            Entry entry;
            entry.name = "BM_ScheduleDecomposed" + suffix;
            entry.realMs = elapsedMs(decomposed_start);
            entry.counters = {
                {"feasible",
                 clustered_schedule.feasible ? 1.0 : 0.0},
                {"clusters", static_cast<double>(clusters)},
                {"peak_rss_kb",
                 static_cast<double>(statusKb("VmHWM:"))}};
            entries.push_back(entry);
        }
        if (!clustered_schedule.feasible) {
            std::fprintf(stderr,
                         "[bench_scaling] %zu nodes: decomposed "
                         "schedule infeasible: %s\n",
                         nodes, clustered_schedule.reason.c_str());
            return 1;
        }

        // Simulation: the flat serialized medium (where its schedule
        // is still computable) and the clustered engine, serial and
        // parallel.
        if (flat_schedule.feasible)
            entries.push_back(timeSim(
                "BM_SimFlatSerial" + suffix,
                simConfigFor(flat_system, flat_schedule,
                             sim_duration),
                false, 0));
        entries.push_back(timeSim(
            "BM_SimClusteredSerial" + suffix,
            simConfigFor(clustered_system, clustered_schedule,
                         sim_duration),
            false, 0));
        entries.push_back(timeSim(
            "BM_SimClusteredParallel" + suffix,
            simConfigFor(clustered_system, clustered_schedule,
                         sim_duration),
            true, 4));

        // Parity: the parallel trace must be byte-identical to the
        // serial reference before the timings above mean anything.
        const Clock::time_point parity_start = Clock::now();
        const bool parity =
            tracesMatch(clustered_system, clustered_schedule);
        Entry entry;
        entry.name = "BM_TraceParity" + suffix;
        entry.realMs = elapsedMs(parity_start);
        entry.counters = {{"byte_identical", parity ? 1.0 : 0.0}};
        entries.push_back(entry);
        if (!parity) {
            std::fprintf(stderr,
                         "[bench_scaling] %zu nodes: serial and "
                         "parallel traces DIVERGE\n",
                         nodes);
            return 1;
        }
    }

    writeJson(out_path, entries);
    std::fprintf(stderr, "[bench_scaling] wrote %s\n",
                 out_path.c_str());
    return 0;
}
