/**
 * @file
 * Figure 9b: maximum movement intents decoded per second on SCALO vs
 * the conventional fixed 50 ms interval (20/s), across node counts.
 *
 * Paper shape: MI SVM and MI NN exceed 20/s (SCALO decodes faster
 * than the conventional window); MI KF stays at ~20/s but carries up
 * to 384 electrodes (4 x 96-electrode nodes).
 */

#include "bench_util.hpp"
#include "scalo/app/movement.hpp"
#include "scalo/util/table.hpp"

int
main()
{
    using namespace scalo;
    using namespace scalo::app;

    bench::banner(
        "Figure 9b: Max movement intents per second",
        "SVM/NN exceed the conventional 20/s; KF ~20/s but scales to "
        "384 electrodes");

    const std::vector<std::size_t> node_counts{1, 2, 4, 8, 16, 32,
                                               64};
    TextTable table({"nodes", "MI SVM", "MI NN", "MI KF",
                     "conventional"});
    for (std::size_t nodes : node_counts) {
        table.addRow(
            {std::to_string(nodes),
             TextTable::num(
                 intentsPerSecond(sched::miSvmFlow(), nodes).count(),
                 1),
             TextTable::num(
                 intentsPerSecond(sched::miNnFlow(), nodes).count(),
                 1),
             TextTable::num(
                 intentsPerSecond(sched::miKfFlow(), nodes).count(),
                 1),
             TextTable::num(kConventionalIntentsPerSecond, 1)});
    }
    table.print();

    std::printf("\nMI KF electrode ceiling: 384 electrodes total "
                "(Section 6.3: 20 intents/s over up to 4 x 96-"
                "electrode nodes -> ~188 Mbps)\n");
    return 0;
}
