/**
 * @file
 * Ablation: the three communication-reduction techniques of Section
 * 3.1 - hash filtering (1 B vs 240 B per electrode window),
 * hierarchical classifier decomposition (partial outputs vs raw
 * features), and Kalman centralisation (features to one node vs
 * distributing the filter's large intermediate matrices).
 */

#include "bench_util.hpp"
#include "scalo/net/tdma.hpp"
#include "scalo/util/table.hpp"

int
main()
{
    using namespace scalo;
    using namespace scalo::net;

    bench::banner(
        "Ablation: communication-reduction techniques (Section 3.1)",
        "hashes 100x smaller than signals; partial outputs 100x "
        "smaller than raw inputs; centralising the KF avoids "
        "shipping its big matrices");

    const std::size_t nodes = 11;
    const TdmaSchedule tdma(defaultRadio(), nodes);

    TextTable table({"what crosses the network", "bytes/node/round",
                     "exchange (ms)", "fits budget?"});

    struct Case
    {
        const char *name;
        Pattern pattern;
        std::size_t bytes;
        double budget_ms;
    };
    const std::vector<Case> cases{
        // Seizure correlation: hashes vs full windows (per 96 elec).
        {"correlation: 96 window hashes (SCALO)", Pattern::AllToAll,
         96, 1.7},
        {"correlation: 96 raw windows (no hash)", Pattern::AllToAll,
         96 * 240, 1.7},
        // Movement intent A/C: partials vs raw features vs samples.
        {"MI SVM: partial output (SCALO)", Pattern::AllToOne, 4,
         50.0},
        {"MI NN: partial pre-activations (SCALO)", Pattern::AllToOne,
         1'024, 50.0},
        {"MI: raw 50 ms sample windows (no decomp)",
         Pattern::AllToOne, 96 * 1'500 * 2, 50.0},
        // Movement intent B: features in vs covariance out.
        {"MI KF: SBP features to aggregator (SCALO)",
         Pattern::AllToOne, 96 * 4, 50.0},
        {"MI KF: distributed filter (P matrix each step)",
         Pattern::AllToAll, 96 * 96 * 4, 50.0},
    };

    for (const Case &c : cases) {
        const double ms =
            tdma.exchangeTime(c.pattern, c.bytes).count();
        table.addRow({c.name, std::to_string(c.bytes),
                      TextTable::num(ms, 2),
                      ms <= c.budget_ms ? "yes" : "NO"});
    }
    table.print();

    std::printf("\nreduction factors at 11 nodes: hashes %.0fx, "
                "SVM partials %.0fx, KF centralisation %.0fx\n",
                240.0, 96.0 * 1'500.0 * 2.0 / 4.0,
                96.0 * 96.0 / 96.0);
    return 0;
}
